"""Scenario: distributing entanglement over a quantum-network topology.

Distributed quantum computing and quantum networking need multipartite
entanglement whose connectivity mirrors the communication topology — modelled
here, as in the paper, by Waxman random graphs.  The example shows the two
ingredients that matter most on such irregular graphs:

* local complementation during partitioning, which reduces the number of
  inter-subgraph ("stem") edges that must be realised with expensive
  emitter-emitter CNOTs;
* loss-aware scheduling, which keeps early photons from waiting for the whole
  state to finish.

Run with::

    python examples/quantum_network_waxman.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import BaselineCompiler, EmitterCompiler, waxman_graph
from repro.core.partition import GraphPartitioner
from repro.evaluation.experiments import fast_config
from repro.evaluation.report import render_table


def stem_edge_study(seed: int = 21) -> None:
    print("Effect of local complementation on the partition cut (stem edges)")
    rows = []
    for size in (12, 18, 24, 30):
        graph = waxman_graph(size, seed=seed + size)
        no_lc = GraphPartitioner(fast_config().with_overrides(lc_budget=0)).partition(graph)
        with_lc = GraphPartitioner(fast_config().with_overrides(lc_budget=15)).partition(graph)
        rows.append(
            [
                size,
                graph.num_edges,
                no_lc.num_stem_edges,
                with_lc.num_stem_edges,
                len(with_lc.lc_operations),
            ]
        )
    print(
        render_table(
            ["nodes", "edges", "stem (l=0)", "stem (l=15)", "LC ops used"], rows
        )
    )
    print()


def end_to_end_study(seed: int = 33) -> None:
    print("End-to-end comparison on network topologies (loss rate 0.5% per tau_QD)")
    rows = []
    for size in (15, 20, 25):
        graph = waxman_graph(size, seed=seed + size)
        ours = EmitterCompiler(fast_config(emitter_limit_factor=1.5)).compile(graph)
        baseline = BaselineCompiler().compile(graph)
        improvement = baseline.metrics.photon_loss_probability / max(
            ours.photon_loss_probability, 1e-12
        )
        rows.append(
            [
                size,
                baseline.metrics.num_emitter_emitter_cnots,
                ours.num_emitter_emitter_cnots,
                round(baseline.metrics.duration, 1),
                round(ours.duration, 1),
                f"{baseline.metrics.photon_loss_probability:.3f}",
                f"{ours.photon_loss_probability:.3f}",
                f"x{improvement:.2f}",
            ]
        )
    print(
        render_table(
            [
                "nodes",
                "base CNOT",
                "ours CNOT",
                "base dur",
                "ours dur",
                "base loss",
                "ours loss",
                "loss gain",
            ],
            rows,
        )
    )


def main() -> None:
    stem_edge_study()
    end_to_end_study()


if __name__ == "__main__":
    main()
