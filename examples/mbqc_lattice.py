"""Scenario: 2-D cluster states for measurement-based quantum computing.

MBQC consumes large 2-D lattice cluster states.  This example compiles
lattices of growing size under the two emitter-resource settings of the paper
(``N_e^limit = 1.5 N_e^min`` and ``2 N_e^min``) and shows how additional
emitters translate into circuit-level parallelism, and how the same compiled
graph behaves on different hardware platforms (quantum dots, NV/SiV centres,
Rydberg atoms).

Run with::

    python examples/mbqc_lattice.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import (
    BaselineCompiler,
    EmitterCompiler,
    get_hardware_model,
    lattice_graph,
)
from repro.evaluation.experiments import fast_config
from repro.evaluation.report import render_table


def emitter_budget_study() -> None:
    print("Circuit duration vs emitter budget (quantum-dot hardware, time in tau_QD)")
    rows = []
    for shape in ((3, 4), (4, 5), (5, 6)):
        graph = lattice_graph(*shape)
        row = [f"{shape[0]}x{shape[1]}", graph.num_vertices]
        for factor in (1.5, 2.0):
            ours = EmitterCompiler(fast_config(emitter_limit_factor=factor)).compile(graph)
            row.extend([ours.emitter_limit, round(ours.duration, 2)])
        baseline = BaselineCompiler().compile(graph)
        row.append(round(baseline.metrics.duration, 2))
        rows.append(row)
    print(
        render_table(
            ["lattice", "photons", "Ne(1.5x)", "dur(1.5x)", "Ne(2x)", "dur(2x)", "baseline dur"],
            rows,
        )
    )
    print()


def hardware_retargeting_study() -> None:
    print("Retargeting the same 4x5 lattice to different hardware platforms")
    graph = lattice_graph(4, 5)
    rows = []
    for name in ("quantum_dot", "nv_center", "siv_center", "rydberg_atom"):
        hardware = get_hardware_model(name)
        ours = EmitterCompiler(fast_config(hardware=hardware)).compile(graph)
        rows.append(
            [
                name,
                ours.num_emitter_emitter_cnots,
                round(ours.duration, 2),
                f"{ours.duration * hardware.tau_seconds * 1e9:.1f} ns",
                f"{ours.photon_loss_probability:.4f}",
                f"{hardware.circuit_fidelity_estimate(ours.num_emitter_emitter_cnots):.3f}",
            ]
        )
    print(
        render_table(
            [
            "hardware",
            "ee-CNOTs",
            "duration (tau)",
            "duration (abs)",
            "state loss",
            "fidelity est.",
        ],
            rows,
        )
    )


def main() -> None:
    emitter_budget_study()
    hardware_retargeting_study()


if __name__ == "__main__":
    main()
