"""Quickstart: compile a small graph state and inspect the result.

Run with::

    python examples/quickstart.py

The script builds a 3x4 lattice (cluster) graph state, compiles it with the
divide-and-conquer framework and with the GraphiQ-like baseline, verifies both
circuits on the stabilizer simulator, and prints the hardware-aware metrics
the paper optimises (#emitter-emitter CNOTs, circuit duration, photon loss).

It then shows the two scaling features behind every sweep in this repo:

* the GF(2) **backend switch** — all exact kernels (cut rank, tableau
  simulation, canonical forms) run on a word-packed ``np.uint64`` fast path
  by default, with the dense implementation kept as a bit-exact oracle
  (``backend="dense"`` / ``CompilerConfig(gf2_backend=...)`` /
  ``REPRO_GF2_BACKEND``);
* the **batch pipeline** — sweeps are declarative job lists fanned across a
  process pool with content-hash result caching.  The same machinery powers
  the CLI::

      repro batch --families lattice tree --sizes 10 20 30 \\
          --workers 4 --cache-dir .repro-cache

  (run it twice: the second invocation reports 100% cache hits);

* the **compilation service** — a long-running HTTP server that micro-batches
  concurrent requests onto the same pipeline and serves repeats from a
  persistent disk cache::

      repro serve --port 8765 --cache-dir .repro-service-cache
      repro loadgen --url http://127.0.0.1:8765 --families lattice --sizes 10

CI runs this script on every push (the ``docs`` job), so the quickstart in
the README can never rot.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import (
    BaselineCompiler,
    BatchJob,
    BatchRunner,
    CompilerConfig,
    EmitterCompiler,
    GraphSpec,
    ServiceClient,
    compile_graph,
    cut_rank,
    lattice_graph,
    start_server,
    verify_circuit_generates,
)


def main() -> None:
    # The README's 60-second quickstart, line for line.
    ours_quick = compile_graph(lattice_graph(3, 4), verify=True)
    base_quick = BaselineCompiler(verify=True).compile(lattice_graph(3, 4))
    print(
        "emitter-emitter CNOTs:", ours_quick.num_emitter_emitter_cnots,
        "vs baseline", base_quick.metrics.num_emitter_emitter_cnots,
    )
    print("verified on the stabilizer simulator:", ours_quick.verified)
    print()

    graph = lattice_graph(3, 4)
    print(
        f"Target: 3x4 lattice graph state "
        f"({graph.num_vertices} photons, {graph.num_edges} edges)"
    )
    print()

    config = CompilerConfig(
        max_subgraph_size=7,
        lc_budget=15,
        emitter_limit_factor=1.5,
        verify=True,  # re-simulate on the stabilizer tableau
    )
    ours = EmitterCompiler(config).compile(graph)
    baseline = BaselineCompiler(verify=True).compile(graph)

    print("Framework (this paper)")
    print(f"  emitter-emitter CNOTs : {ours.num_emitter_emitter_cnots}")
    print(f"  circuit duration      : {ours.duration:.2f} tau_QD")
    print(f"  avg photon wait (Tloss): {ours.average_photon_loss_duration:.2f} tau_QD")
    print(f"  state loss probability: {ours.photon_loss_probability:.4f}")
    print(f"  emitters (min / limit): {ours.minimum_emitters} / {ours.emitter_limit}")
    print(f"  subgraphs / stem edges: {ours.partition.num_blocks} / {ours.num_stem_edges}")
    print(f"  verified              : {ours.verified}")
    print()
    print("Baseline (GraphiQ-like, natural order, minimal emitters, ASAP)")
    print(f"  emitter-emitter CNOTs : {baseline.metrics.num_emitter_emitter_cnots}")
    print(f"  circuit duration      : {baseline.metrics.duration:.2f} tau_QD")
    print(f"  state loss probability: {baseline.metrics.photon_loss_probability:.4f}")
    print(f"  verified              : {baseline.verified}")
    print()

    cnot_red = 100 * (
        baseline.metrics.num_emitter_emitter_cnots - ours.num_emitter_emitter_cnots
    ) / max(baseline.metrics.num_emitter_emitter_cnots, 1)
    dur_red = 100 * (baseline.metrics.duration - ours.duration) / baseline.metrics.duration
    print(f"Reduction: {cnot_red:.0f}% emitter-emitter CNOTs, {dur_red:.0f}% circuit duration")
    print()

    # Independent re-verification through the public helper (what the tests use).
    assert verify_circuit_generates(
        ours.circuit, graph, photon_of_vertex=ours.sequence.photon_of_vertex
    )
    print("First 20 gates of the framework circuit:")
    print(ours.circuit.pretty(max_gates=20))
    print()

    # Backend switch: the packed fast path is bit-exact with the dense oracle.
    subset = list(graph.vertices())[: graph.num_vertices // 2]
    packed_rank = cut_rank(graph, subset, backend="packed")
    dense_rank = cut_rank(graph, subset, backend="dense")
    assert packed_rank == dense_rank
    print(f"Cut rank across a half split: {packed_rank} (packed == dense oracle)")
    print()

    # Batch pipeline: a small sweep through the process-pool runner.  Pass
    # cache_dir= to persist results; a repeated run then only reports hits.
    jobs = [BatchJob(graph=GraphSpec("lattice", size)) for size in (9, 12, 16)]
    report = BatchRunner(max_workers=2).run(jobs)
    print("Batch sweep (lattice 9/12/16):")
    for outcome in report.outcomes:
        record = outcome.result
        print(
            f"  {outcome.job.label}: "
            f"{record['ours']['num_emitter_emitter_cnots']} ee-CNOTs vs "
            f"{record['baseline']['num_emitter_emitter_cnots']} baseline "
            f"({outcome.elapsed_seconds:.2f}s)"
        )
    print(f"  summary: {report.summary()}")
    print()

    # Compilation service: serve the same pipeline over HTTP.  The second
    # identical request is answered from the result cache.
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-quickstart-cache-") as cache_dir:
        server, _ = start_server(cache_dir=cache_dir)  # free port, in-process
        try:
            host, port = server.server_address[:2]
            client = ServiceClient(f"http://{host}:{port}")
            client.wait_until_ready()
            first = client.compile(family="lattice", size=9, kind="compile")
            second = client.compile(family="lattice", size=9, kind="compile")
            print("Service round-trip:")
            print(f"  first request:  ok={first['ok']} cache_hit={first['cache_hit']}")
            print(f"  second request: ok={second['ok']} cache_hit={second['cache_hit']}")
            assert second["cache_hit"], "repeat request should be served from cache"
            print(f"  health: {client.healthz()['microbatcher']}")
        finally:
            server.shutdown()
            server.server_close()


if __name__ == "__main__":
    main()
