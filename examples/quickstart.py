"""Quickstart: compile a small graph state and inspect the result.

Run with::

    python examples/quickstart.py

The script builds a 3x4 lattice (cluster) graph state, compiles it with the
divide-and-conquer framework and with the GraphiQ-like baseline, verifies both
circuits on the stabilizer simulator, and prints the hardware-aware metrics
the paper optimises (#emitter-emitter CNOTs, circuit duration, photon loss).
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import (
    BaselineCompiler,
    CompilerConfig,
    EmitterCompiler,
    lattice_graph,
    verify_circuit_generates,
)


def main() -> None:
    graph = lattice_graph(3, 4)
    print(f"Target: 3x4 lattice graph state ({graph.num_vertices} photons, {graph.num_edges} edges)")
    print()

    config = CompilerConfig(
        max_subgraph_size=7,
        lc_budget=15,
        emitter_limit_factor=1.5,
        verify=True,  # re-simulate on the stabilizer tableau
    )
    ours = EmitterCompiler(config).compile(graph)
    baseline = BaselineCompiler(verify=True).compile(graph)

    print("Framework (this paper)")
    print(f"  emitter-emitter CNOTs : {ours.num_emitter_emitter_cnots}")
    print(f"  circuit duration      : {ours.duration:.2f} tau_QD")
    print(f"  avg photon wait (Tloss): {ours.average_photon_loss_duration:.2f} tau_QD")
    print(f"  state loss probability: {ours.photon_loss_probability:.4f}")
    print(f"  emitters (min / limit): {ours.minimum_emitters} / {ours.emitter_limit}")
    print(f"  subgraphs / stem edges: {ours.partition.num_blocks} / {ours.num_stem_edges}")
    print(f"  verified              : {ours.verified}")
    print()
    print("Baseline (GraphiQ-like, natural order, minimal emitters, ASAP)")
    print(f"  emitter-emitter CNOTs : {baseline.metrics.num_emitter_emitter_cnots}")
    print(f"  circuit duration      : {baseline.metrics.duration:.2f} tau_QD")
    print(f"  state loss probability: {baseline.metrics.photon_loss_probability:.4f}")
    print(f"  verified              : {baseline.verified}")
    print()

    cnot_red = 100 * (
        baseline.metrics.num_emitter_emitter_cnots - ours.num_emitter_emitter_cnots
    ) / max(baseline.metrics.num_emitter_emitter_cnots, 1)
    dur_red = 100 * (baseline.metrics.duration - ours.duration) / baseline.metrics.duration
    print(f"Reduction: {cnot_red:.0f}% emitter-emitter CNOTs, {dur_red:.0f}% circuit duration")
    print()

    # Independent re-verification through the public helper (what the tests use).
    assert verify_circuit_generates(ours.circuit, graph, photon_of_vertex=ours.sequence.photon_of_vertex)
    print("First 20 gates of the framework circuit:")
    print(ours.circuit.pretty(max_gates=20))


if __name__ == "__main__":
    main()
