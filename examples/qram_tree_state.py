"""Scenario: tree graph states for QRAM routers.

Quantum random access memory (QRAM) uses binary-tree router structures, and
tree graph states are also the backbone of tree codes for loss-tolerant
quantum error correction.  This example compiles complete binary trees of
growing depth and reports how the framework's emitter reuse keeps the circuit
short (and the photons fresh) compared to the baseline.

Run with::

    python examples/qram_tree_state.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import BaselineCompiler, EmitterCompiler, minimum_emitters, tree_graph
from repro.evaluation.experiments import fast_config
from repro.evaluation.report import render_table


def main() -> None:
    print("QRAM router trees: complete binary trees of depth 2-4")
    print()
    rows = []
    for depth in (2, 3, 4):
        graph = tree_graph(depth=depth, branching=2)
        config = fast_config(emitter_limit_factor=1.5)
        ours = EmitterCompiler(config).compile(graph)
        baseline = BaselineCompiler(hardware=config.hardware).compile(graph)
        rows.append(
            [
                depth,
                graph.num_vertices,
                minimum_emitters(graph),
                baseline.metrics.num_emitter_emitter_cnots,
                ours.num_emitter_emitter_cnots,
                baseline.metrics.duration,
                ours.duration,
                baseline.metrics.photon_loss_probability,
                ours.photon_loss_probability,
            ]
        )
    print(
        render_table(
            [
                "depth",
                "photons",
                "Ne_min",
                "base CNOT",
                "ours CNOT",
                "base dur",
                "ours dur",
                "base loss",
                "ours loss",
            ],
            rows,
        )
    )
    print()

    # Show the emitter-usage curve of the largest tree (the paper's Fig. 5
    # style view): how many emitters are busy at each moment.
    graph = tree_graph(depth=4, branching=2)
    ours = EmitterCompiler(fast_config()).compile(graph)
    print(f"Emitter usage over time for the depth-4 tree ({graph.num_vertices} photons):")
    for time_point, count in ours.schedule.emitter_usage_curve():
        bar = "#" * count
        print(f"  t={time_point:7.2f}  {count:2d} {bar}")


if __name__ == "__main__":
    main()
