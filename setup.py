"""Setuptools shim for environments without PEP 517/660 build tooling (no `wheel`)."""
from setuptools import setup

setup()
