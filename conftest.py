"""Ensure the src/ layout is importable even without an editable install.

The test-suite and benchmarks are normally run after ``pip install -e .``;
in fully offline environments where the editable install cannot build a
wheel, adding ``src/`` to ``sys.path`` here keeps ``pytest`` self-contained.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
