"""Service throughput benchmark: loadgen against an in-process server.

Starts a cached compilation server on a free loopback port, drives it twice
with the closed-loop load generator and prints both reports.  The second run
repeats the exact same workload, so it must be served (almost) entirely from
the result cache — the benchmark asserts a >= 90% hit rate, which is the
acceptance demo of the service: hot traffic costs disk reads, not compiles.

Environment knobs (CI sets small values):

* ``REPRO_BENCH_SERVICE_REQUESTS`` — total requests per run (default 32);
* ``REPRO_BENCH_SERVICE_CONCURRENCY`` — worker threads (default 4).
"""

from __future__ import annotations

import os

from repro.service.loadgen import run_loadgen, workload_payloads
from repro.service.server import start_server

REQUESTS = int(os.environ.get("REPRO_BENCH_SERVICE_REQUESTS", "32"))
CONCURRENCY = int(os.environ.get("REPRO_BENCH_SERVICE_CONCURRENCY", "4"))


def test_service_throughput_and_cache_hit_rate(tmp_path, capsys):
    server, _ = start_server(cache_dir=str(tmp_path / "cache"))
    host, port = server.server_address[:2]
    url = f"http://{host}:{port}"
    payloads = workload_payloads(
        ["lattice", "tree", "ghz", "surface"], [9], seeds=[11]
    )
    try:
        cold = run_loadgen(url, payloads, requests=REQUESTS, concurrency=CONCURRENCY)
        hot = run_loadgen(url, payloads, requests=REQUESTS, concurrency=CONCURRENCY)
    finally:
        server.shutdown()
        server.server_close()

    with capsys.disabled():
        print()
        print(f"== service loadgen (cold cache, {REQUESTS} requests) ==")
        print(cold.to_text())
        print(f"== service loadgen (hot cache, {REQUESTS} requests) ==")
        print(hot.to_text())

    assert cold.ok and hot.ok
    assert hot.cache_hit_rate >= 0.9
    assert hot.latency_ms(50) <= cold.latency_ms(95) or hot.throughput_rps >= cold.throughput_rps
