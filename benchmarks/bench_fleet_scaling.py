"""Fleet scale-out benchmark: 3 workers vs 1 on the same workload.

Starts two fleets back to back — one single-worker, one with
``REPRO_BENCH_FLEET_WORKERS`` workers — and drives both with the same
closed-loop compile workload.  The workload is deliberately cache-hostile
(no shared result-cache directory, one distinct payload per seed) so the
measured quantity is compile throughput, not cache bandwidth; the multi-
worker run should then scale with the number of worker processes.

The acceptance gate is ``hot.throughput >= MIN_SPEEDUP * baseline``:
CI's ``fleet-smoke`` job runs this on a multi-core runner with the default
``MIN_SPEEDUP = 2.2`` (3 workers); on constrained machines set
``REPRO_BENCH_FLEET_MIN_SPEEDUP`` lower — a single-core box caps the real
speedup at ~1x regardless of the fleet size.

Environment knobs (CI sets small values):

* ``REPRO_BENCH_FLEET_WORKERS`` — fleet size for the scaled run (default 3);
* ``REPRO_BENCH_FLEET_REQUESTS`` — total requests per run (default 24);
* ``REPRO_BENCH_FLEET_CONCURRENCY`` — closed-loop threads (default 6);
* ``REPRO_BENCH_FLEET_SIZE`` — lattice size per payload (default 12);
* ``REPRO_BENCH_FLEET_MIN_SPEEDUP`` — the gate (default 2.2).
"""

from __future__ import annotations

import os

from repro.service.fleet import start_fleet
from repro.service.loadgen import run_loadgen

FLEET_WORKERS = int(os.environ.get("REPRO_BENCH_FLEET_WORKERS", "3"))
REQUESTS = int(os.environ.get("REPRO_BENCH_FLEET_REQUESTS", "24"))
CONCURRENCY = int(os.environ.get("REPRO_BENCH_FLEET_CONCURRENCY", "6"))
SIZE = int(os.environ.get("REPRO_BENCH_FLEET_SIZE", "12"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_FLEET_MIN_SPEEDUP", "2.2"))


def _drive(num_workers: int) -> "object":
    """One fleet run over the shared cache-hostile workload."""
    server, supervisor, _ = start_fleet(num_workers)
    host, port = server.server_address[:2]
    payloads = [
        {"family": "lattice", "size": SIZE, "seed": seed, "kind": "compile"}
        for seed in range(1, 13)
    ]
    try:
        return run_loadgen(
            f"http://{host}:{port}",
            payloads,
            requests=REQUESTS,
            concurrency=CONCURRENCY,
            retries=1,
        )
    finally:
        supervisor.stop()
        server.shutdown()
        server.server_close()


def test_fleet_throughput_scales_with_workers(capsys):
    baseline = _drive(1)
    scaled = _drive(FLEET_WORKERS)

    speedup = scaled.throughput_rps / max(baseline.throughput_rps, 1e-9)
    with capsys.disabled():
        print()
        print(f"== fleet scaling ({REQUESTS} requests, size-{SIZE} lattices) ==")
        print(f"-- 1 worker --\n{baseline.to_text()}")
        print(f"-- {FLEET_WORKERS} workers --\n{scaled.to_text()}")
        print(f"speedup: {speedup:.2f}x (gate: >= {MIN_SPEEDUP}x)")

    assert baseline.ok and scaled.ok
    assert speedup >= MIN_SPEEDUP, (
        f"{FLEET_WORKERS}-worker fleet reached only {speedup:.2f}x the "
        f"single-worker throughput (gate: {MIN_SPEEDUP}x)"
    )
