"""Compile-runtime scaling on linear cluster states (paper §III, Challenge 1).

The paper motivates the framework by GraphiQ's runtime exceeding 10^3 seconds
for linear clusters beyond 10 qubits.  This benchmark measures the wall-clock
time of the divide-and-conquer compiler on linear clusters up to 60 qubits
and asserts it stays within an interactive budget (well under a minute per
graph on a laptop).
"""

from __future__ import annotations

from repro.evaluation.figures import runtime_scaling

SIZES = (10, 20, 40, 60)


def _run():
    return runtime_scaling(sizes=SIZES)


def test_runtime_scaling_linear_cluster(benchmark):
    data = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(data.to_text())
    benchmark.extra_info["max_ours_seconds"] = data.summary["max_ours_seconds"]
    assert data.summary["max_ours_seconds"] < 60.0
    assert len(data.rows) == len(SIZES)
