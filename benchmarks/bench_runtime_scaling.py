"""Compile-runtime scaling and GF(2) fast-path speedups (paper §III).

The paper motivates the framework by GraphiQ's runtime exceeding 10^3 seconds
for linear clusters beyond 10 qubits.  This benchmark measures the wall-clock
time of the divide-and-conquer compiler on linear clusters up to 60 qubits
and asserts it stays within an interactive budget (well under a minute per
graph on a laptop).

It also pins down the packed GF(2) fast path (``repro.utils.gf2_packed``):
the cut-rank kernel and the stabilizer canonicalisation used by circuit
verification must stay several times faster than the dense oracle at
multi-hundred-qubit sizes.

Environment knobs (used by the CI smoke job to keep runtimes tiny):

* ``REPRO_BENCH_SIZES`` — comma-separated linear-cluster sizes
  (default ``10,20,40,60``);
* ``REPRO_BENCH_KERNEL_QUBITS`` — graph size for the kernel speedup
  measurements (default ``512``; speedup assertions only apply from 256
  qubits up, below that the benchmark just exercises the code paths);
* ``REPRO_BENCH_HEIGHT_QUBITS`` — graph size for the incremental
  height-function case (default ``256``; the >=5x incremental-vs-naive
  assertion only applies from 256 qubits up);
* ``REPRO_BENCH_COMPILE_QUBITS`` — graph size for the end-to-end
  dense-vs-packed ``compile_graph`` case (default ``256``; the floor
  assertion only applies from 256 qubits up);
* ``REPRO_BENCH_CACHE_QUBITS`` — lattice size for the cold-vs-warm
  subgraph-compile-cache case (default ``128``; the warm-speedup floor only
  applies from 128 qubits up — the nonzero-hit-rate assertion always does);
* ``REPRO_BENCH_PORTFOLIO_QUBITS`` — graph size for the anytime-portfolio
  case (default ``16``);
* ``REPRO_BENCH_PORTFOLIO_DEADLINES_MS`` — comma-separated deadline grid for
  the anytime-portfolio case (default ``50,500,5000``; the monotone-quality
  and zero-miss-at-the-top assertions always apply);
* ``REPRO_BENCH_ARENA_SIZES`` — comma-separated matrix widths for the
  arena-vs-packed kernel case (default ``64,128,256,512``; bit-identity
  assertions always apply, the arena-wins-at-512 floor only when 512 is in
  the grid);
* ``REPRO_BENCH_STREAM_SIZES`` — comma-separated vertex counts for the
  streaming-compile case (default ``4096,16384``; sizes <= 2500 are also
  verified op-for-op against the whole-graph compile);
* ``REPRO_BENCH_STREAM_MEM_MB`` — traced-peak-memory ceiling in MiB for the
  largest streamed size (default ``64``).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.evaluation.figures import runtime_scaling
from repro.evaluation.perf import naive_height_function
from repro.graphs.entanglement import cut_rank, height_function
from repro.graphs.graph_state import GraphState
from repro.graphs.incremental import CutRankEngine
from repro.stabilizer.canonical import canonical_stabilizer_matrix
from repro.stabilizer.tableau import StabilizerState


def _env_sizes(name: str, default: tuple[int, ...]) -> tuple[int, ...]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    return tuple(int(part) for part in raw.replace(",", " ").split())


SIZES = _env_sizes("REPRO_BENCH_SIZES", (10, 20, 40, 60))
KERNEL_QUBITS = int(os.environ.get("REPRO_BENCH_KERNEL_QUBITS", "512"))
HEIGHT_QUBITS = int(os.environ.get("REPRO_BENCH_HEIGHT_QUBITS", "256"))
COMPILE_QUBITS = int(os.environ.get("REPRO_BENCH_COMPILE_QUBITS", "256"))
CACHE_QUBITS = int(os.environ.get("REPRO_BENCH_CACHE_QUBITS", "128"))
PORTFOLIO_QUBITS = int(os.environ.get("REPRO_BENCH_PORTFOLIO_QUBITS", "16"))
PORTFOLIO_DEADLINES_MS = tuple(
    float(d)
    for d in _env_sizes("REPRO_BENCH_PORTFOLIO_DEADLINES_MS", (50, 500, 5000))
)
ARENA_SIZES = _env_sizes("REPRO_BENCH_ARENA_SIZES", (64, 128, 256, 512))
STREAM_SIZES = _env_sizes("REPRO_BENCH_STREAM_SIZES", (4096, 16384))
STREAM_MEM_MB = float(os.environ.get("REPRO_BENCH_STREAM_MEM_MB", "64"))

#: Assert the packed backend is at least this many times faster (only at
#: KERNEL_QUBITS >= 256; generous vs the typical 3-6x to absorb CI noise).
MIN_KERNEL_SPEEDUP = 2.5

#: Assert the incremental height-function sweep beats the naive
#: one-rank-per-prefix evaluation by at least this factor (only at
#: HEIGHT_QUBITS >= 256; typical measurements are well above 10x).
MIN_HEIGHT_SPEEDUP = 5.0

#: Assert the packed-backend end-to-end compile beats the dense oracle by at
#: least this factor (only at COMPILE_QUBITS >= 256; the typical measurement
#: is ~3x — the floor is generous to absorb CI noise).
MIN_COMPILE_SPEEDUP = 2.0

#: Assert the warm subgraph compile cache beats the cache-disabled (cold)
#: compile by at least this factor on a repeated-leaf lattice (only at
#: CACHE_QUBITS >= 128; the typical measurement is ~10x).
MIN_CACHE_SPEEDUP = 3.0


def _run():
    return runtime_scaling(sizes=SIZES)


def test_runtime_scaling_linear_cluster(benchmark):
    data = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(data.to_text())
    benchmark.extra_info["max_ours_seconds"] = data.summary["max_ours_seconds"]
    assert data.summary["max_ours_seconds"] < 60.0
    assert len(data.rows) == len(SIZES)


# --------------------------------------------------------------------------- #
# Packed vs dense GF(2) kernels
# --------------------------------------------------------------------------- #


def _median_seconds(func, repeats: int = 5) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        times.append(time.perf_counter() - start)
    return sorted(times)[len(times) // 2]


def _random_graph(num_vertices: int, edges_per_vertex: int = 6) -> GraphState:
    rng = np.random.default_rng(2025)
    graph = GraphState(vertices=range(num_vertices))
    for _ in range(edges_per_vertex * num_vertices):
        u, v = rng.choice(num_vertices, size=2, replace=False)
        graph.add_edge(int(u), int(v))
    return graph


def _scrambled_state(num_qubits: int, backend: str) -> StabilizerState:
    """A graph state pushed through extra Cliffords + measurements.

    Plain graph states canonicalise trivially (their X block is already the
    identity); the scrambling makes the tableau generic so the benchmark
    exercises the real row-multiplication cost of verification.
    """
    rng = np.random.default_rng(7)
    edges = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
    extra = rng.choice(num_qubits, size=(2 * num_qubits, 2))
    edges.extend((int(u), int(v)) for u, v in extra if u != v)
    state = StabilizerState.from_graph_edges(num_qubits, edges, backend=backend)
    for q in range(0, num_qubits, 3):
        state.h(q)
        state.s((q + 1) % num_qubits)
        state.cnot(q, (q + num_qubits // 2) % num_qubits)
    for q in range(0, num_qubits, max(1, num_qubits // 8)):
        state.measure_z(q, forced_outcome=0)
    return state


def test_gf2_backend_speedup(benchmark):
    """Packed cut-rank and canonicalisation vs the dense oracle.

    At ``n >= 256`` qubits the packed backend must be at least
    ``MIN_KERNEL_SPEEDUP`` times faster on both kernels (typical measurements
    are 3-4x for cut-rank and far more for canonicalisation, whose dense
    path loops over qubits in Python).
    """
    n = KERNEL_QUBITS
    graph = _random_graph(n)
    subset = list(range(n // 2))

    def measure():
        dense_cut = _median_seconds(lambda: cut_rank(graph, subset, backend="dense"))
        packed_cut = _median_seconds(lambda: cut_rank(graph, subset, backend="packed"))

        dense_state = _scrambled_state(n, "dense")
        packed_state = _scrambled_state(n, "packed")
        assert np.array_equal(dense_state.r, packed_state.r)
        dense_canon = _median_seconds(
            lambda: canonical_stabilizer_matrix(dense_state), repeats=3
        )
        packed_canon = _median_seconds(
            lambda: canonical_stabilizer_matrix(packed_state), repeats=3
        )
        return dense_cut, packed_cut, dense_canon, packed_canon

    dense_cut, packed_cut, dense_canon, packed_canon = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    cut_speedup = dense_cut / packed_cut
    canon_speedup = dense_canon / packed_canon
    print()
    print(
        f"cut-rank @ {n} qubits: dense {dense_cut * 1e3:.2f} ms, "
        f"packed {packed_cut * 1e3:.2f} ms, speedup {cut_speedup:.1f}x"
    )
    print(
        f"canonicalisation @ {n} qubits: dense {dense_canon * 1e3:.2f} ms, "
        f"packed {packed_canon * 1e3:.2f} ms, speedup {canon_speedup:.1f}x"
    )
    benchmark.extra_info["cut_rank_speedup"] = cut_speedup
    benchmark.extra_info["canonicalisation_speedup"] = canon_speedup
    if n >= 256:
        assert cut_speedup >= MIN_KERNEL_SPEEDUP
        assert canon_speedup >= MIN_KERNEL_SPEEDUP


# --------------------------------------------------------------------------- #
# Incremental vs naive height function
# --------------------------------------------------------------------------- #


def test_height_function_incremental_speedup(benchmark):
    """One engine sweep vs one from-scratch cut rank per prefix.

    The heights must be bit-identical, and at ``n >= 256`` the incremental
    engine must be at least ``MIN_HEIGHT_SPEEDUP`` times faster than the
    naive evaluation on the same (packed) kernel.  The public
    ``height_function`` entry point must route to the engine-backed path.
    """
    n = HEIGHT_QUBITS
    graph = _random_graph(n)
    ordering = graph.vertices()

    def measure():
        naive_heights = naive_height_function(graph, ordering)
        engine_heights = CutRankEngine(graph, checkpoint=False).heights(ordering)
        assert engine_heights == naive_heights
        assert height_function(graph, ordering, backend="packed") == naive_heights
        naive_s = _median_seconds(
            lambda: naive_height_function(graph, ordering), repeats=3
        )
        engine_s = _median_seconds(
            lambda: CutRankEngine(graph, checkpoint=False).heights(ordering),
            repeats=3,
        )
        return naive_s, engine_s

    naive_s, engine_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = naive_s / engine_s
    print()
    print(
        f"height function @ {n} qubits: naive {naive_s * 1e3:.2f} ms, "
        f"incremental {engine_s * 1e3:.2f} ms, speedup {speedup:.1f}x"
    )
    benchmark.extra_info["height_function_speedup"] = speedup
    if n >= 256:
        assert speedup >= MIN_HEIGHT_SPEEDUP


# --------------------------------------------------------------------------- #
# Bitset reduction fast path: end-to-end compile
# --------------------------------------------------------------------------- #


def test_reduction_fast_path_speedup(benchmark):
    """Dense-oracle vs packed-bitset end-to-end ``compile_graph``.

    The packed backend runs the reduction engine on integer adjacency rows,
    scores partitioner LC candidates by exact packed deltas, and ranks
    candidate plans straight from op sequences.  The circuits must be
    bit-identical to the dense oracle's, and at ``n >= 256`` vertices the
    packed compile must be at least ``MIN_COMPILE_SPEEDUP`` times faster.
    """
    from repro.core.compiler import compile_graph

    n = COMPILE_QUBITS
    graph = _random_graph(n)

    def measure():
        packed_result = compile_graph(graph, gf2_backend="packed")
        dense_result = compile_graph(graph, gf2_backend="dense")
        assert packed_result.circuit.gates == dense_result.circuit.gates
        dense_s = _median_seconds(
            lambda: compile_graph(graph, gf2_backend="dense"), repeats=3
        )
        packed_s = _median_seconds(
            lambda: compile_graph(graph, gf2_backend="packed"), repeats=3
        )
        return dense_s, packed_s

    dense_s, packed_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = dense_s / packed_s
    print()
    print(
        f"compile_graph @ {n} vertices: dense {dense_s:.3f} s, "
        f"packed {packed_s:.3f} s, speedup {speedup:.1f}x"
    )
    benchmark.extra_info["compile_speedup"] = speedup
    if n >= 256:
        assert speedup >= MIN_COMPILE_SPEEDUP


# --------------------------------------------------------------------------- #
# Subgraph compile cache: cold vs warm on a repeated-leaf lattice sweep
# --------------------------------------------------------------------------- #


def test_subgraph_cache_warm_speedup(benchmark):
    """Cold-vs-warm ``compile_graph`` through the isomorphism-keyed cache.

    A lattice sweep is compiled with the cache disabled (cold — the
    historical behaviour) and then twice against one process cache.  The
    warm pass must observe a nonzero cache-hit rate (the partitioner emits
    the same leaf shapes over and over up to relabeling), warm circuits
    must be bit-identical to the cold compile, and at ``n >= 128`` the warm
    compile must be at least ``MIN_CACHE_SPEEDUP`` times faster than cold.
    """
    from repro.core.compile_cache import get_process_cache, reset_process_cache
    from repro.core.compiler import compile_graph
    from repro.graphs.generators import benchmark_graph

    sizes = (CACHE_QUBITS, max(8, CACHE_QUBITS // 2))
    graphs = [benchmark_graph("lattice", n) for n in sizes]

    def measure():
        cold_results = [compile_graph(g, subgraph_cache=False) for g in graphs]
        cold_s = _median_seconds(
            lambda: [compile_graph(g, subgraph_cache=False) for g in graphs],
            repeats=1,
        )
        reset_process_cache()
        [compile_graph(g) for g in graphs]  # populate the cache
        cache = get_process_cache()
        before = cache.stats.snapshot()
        warm_results = [compile_graph(g) for g in graphs]
        stats = cache.stats.delta(before)
        warm_s = _median_seconds(
            lambda: [compile_graph(g) for g in graphs], repeats=3
        )
        reset_process_cache()
        for cached, fresh in zip(warm_results, cold_results):
            assert cached.circuit.gates == fresh.circuit.gates
            assert cached.metrics == fresh.metrics
        return cold_s, warm_s, stats

    cold_s, warm_s, stats = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = cold_s / warm_s
    print()
    print(
        f"subgraph cache @ lattice {sizes}: cold {cold_s:.3f} s, "
        f"warm {warm_s:.3f} s, speedup {speedup:.1f}x, "
        f"hit rate {stats['hit_rate']:.2f}"
    )
    benchmark.extra_info["cache_speedup"] = speedup
    benchmark.extra_info["cache_hit_rate"] = stats["hit_rate"]
    assert stats["hits"] > 0
    assert stats["hit_rate"] > 0.0
    if CACHE_QUBITS >= 128:
        assert speedup >= MIN_CACHE_SPEEDUP


# --------------------------------------------------------------------------- #
# Anytime portfolio: quality vs deadline
# --------------------------------------------------------------------------- #


def test_portfolio_anytime_quality(benchmark):
    """Quality-vs-deadline curves of the anytime portfolio compiler.

    For every zoo family in the portfolio bench, the replayed anytime curve
    must be monotonically non-degrading as the deadline grows, every point
    must be at least as good as the natural-order rung (the portfolio's
    quality floor), and the live compile at the most generous deadline must
    finish inside it (p99-respects-deadline material at CI scale).
    """
    from repro.evaluation.perf import run_portfolio_bench

    def measure():
        return run_portfolio_bench(
            sizes=(PORTFOLIO_QUBITS,), deadlines_ms=PORTFOLIO_DEADLINES_MS
        )

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    assert rows
    for row in rows:
        curve = row["anytime_curve"]
        assert len(curve) == len(PORTFOLIO_DEADLINES_MS)
        natural = next(r for r in row["rungs"] if r["name"] == "natural")
        natural_quality = tuple(natural["quality"])

        def key(point):
            q = point["quality"]
            return (
                q["num_emitter_emitter_cnots"],
                q["average_photon_loss_duration"],
                q["duration"],
            )

        qualities = [key(point) for point in curve]
        for tighter, looser in zip(qualities, qualities[1:]):
            assert looser <= tighter, (
                f"{row['family']}: quality degraded as the deadline grew: "
                f"{tighter} -> {looser}"
            )
        for point, quality in zip(curve, qualities):
            assert quality <= natural_quality, (
                f"{row['family']} @ {point['deadline_ms']:g} ms: worse than "
                f"the natural baseline"
            )
        top = row["live"][-1]
        print(
            f"portfolio {row['family']} @ {row['num_vertices']} vertices: "
            f"winner {top['winner']!r} in {top['seconds_elapsed']:.3f}s "
            f"at {top['deadline_ms']:g} ms "
            f"({len(curve)} deadline points, {row['num_rungs']} rungs)"
        )
        assert not top["deadline_missed"], (
            f"{row['family']}: missed the most generous deadline "
            f"({top['deadline_ms']:g} ms, took {top['seconds_elapsed']:.3f}s)"
        )
    benchmark.extra_info["portfolio_families"] = [row["family"] for row in rows]


# --------------------------------------------------------------------------- #
# Arena vs packed GF(2) bulk kernels
# --------------------------------------------------------------------------- #


def test_arena_kernel_equivalence_and_crossover(benchmark):
    """Arena word-array kernels vs the packed big-int kernels.

    ``run_arena_bench`` asserts bit-identity internally (rref matrices and
    pivots, reduction op sequences, forward circuits, CutRankEngine height
    profiles) before timing anything, so just reaching the assertions below
    already proves equivalence.  When 512 is in the swept grid the arena
    rref must beat packed there — the bulk-elimination win the
    auto-selection threshold (128 columns) is calibrated against.
    """
    from repro.evaluation.perf import run_arena_bench

    reduce_size = min(128, max(ARENA_SIZES))

    def measure():
        return run_arena_bench(sizes=ARENA_SIZES, reduce_size=reduce_size)

    record = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    for entry in record["kernel_results"]:
        print(
            f"gf2 rref @ {entry['size']} cols: "
            f"packed {entry['packed_rref_median_seconds'] * 1e3:.2f} ms, "
            f"arena {entry['arena_rref_median_seconds'] * 1e3:.2f} ms, "
            f"speedup {entry['rref_speedup']:.2f}x"
        )
    print(
        f"crossover {record['crossover_size']} "
        f"(default threshold {record['default_threshold']})"
    )
    assert record["circuits_bit_identical"]
    assert len(record["kernel_results"]) == len(ARENA_SIZES)
    benchmark.extra_info["arena_crossover_size"] = record["crossover_size"]
    if 512 in ARENA_SIZES:
        at_512 = next(e for e in record["kernel_results"] if e["size"] == 512)
        assert at_512["rref_speedup"] > 1.0, (
            f"arena rref no longer wins at 512 cols "
            f"({at_512['rref_speedup']:.2f}x)"
        )
        benchmark.extra_info["arena_rref_speedup_512"] = at_512["rref_speedup"]


# --------------------------------------------------------------------------- #
# Streaming partition-compile: bounded memory
# --------------------------------------------------------------------------- #


def test_streaming_compile_memory_ceiling(benchmark):
    """Streamed compiles stay op-identical and memory-bounded.

    ``run_stream_bench`` verifies every size at or below its verify limit
    op-for-op against ``greedy_reduce`` on the materialised graph and trips
    an internal AssertionError when a family's traced-peak growth stops
    being sublinear in the vertex count.  On top of that, the largest
    streamed instance must stay under the ``REPRO_BENCH_STREAM_MEM_MB``
    traced-peak ceiling — the window, not the graph, owns the memory.
    """
    from repro.evaluation.perf import run_stream_bench

    def measure():
        return run_stream_bench(sizes=STREAM_SIZES)

    entries = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    assert entries
    for entry in entries:
        print(
            f"stream {entry['family']} @ {entry['num_vertices']} vertices: "
            f"window {entry['window_capacity']}, "
            f"peak {entry['peak_traced_bytes'] / 1e6:.2f} MB, "
            f"{entry['elapsed_seconds']:.2f}s"
            + (" [verified]" if entry["verified_against_oracle"] else "")
        )
        assert entry["peak_window_photons"] <= entry["window_capacity"]
    ceiling_bytes = STREAM_MEM_MB * 1024 * 1024
    worst = max(entries, key=lambda e: e["peak_traced_bytes"])
    assert worst["peak_traced_bytes"] < ceiling_bytes, (
        f"{worst['family']} @ {worst['num_vertices']} vertices peaked at "
        f"{worst['peak_traced_bytes'] / 1e6:.1f} MB "
        f"(ceiling {STREAM_MEM_MB:g} MiB)"
    )
    benchmark.extra_info["stream_peak_bytes"] = worst["peak_traced_bytes"]
    benchmark.extra_info["stream_verified_points"] = sum(
        1 for e in entries if e["verified_against_oracle"]
    )
