"""Shared fixtures for the benchmark harness.

The benchmarks regenerate the data behind every figure of the paper's
evaluation.  Sweep sizes are smaller than the paper's full ranges so that the
whole harness completes in a few minutes on a laptop; pass larger sizes
through the CLI (``repro-emitter figure fig10a --sizes 10 20 30 40 50 60``)
to reproduce the full-scale sweeps.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
