"""Figure 10 (d)-(f): circuit duration under two emitter-resource settings.

The paper evaluates ``N_e^limit = 1.5 N_e^min`` and ``2 N_e^min`` and reports
average duration reductions of 32-43%.  The benchmark reruns the sweep on the
same graph families and checks the qualitative claim (the framework's
circuits are shorter on average under both settings).
"""

from __future__ import annotations

import pytest

from repro.evaluation.figures import figure10_duration

SWEEP_SIZES = {
    "lattice": (12, 20, 30),
    "tree": (10, 20, 30),
    "random": (10, 15, 20),
}


def _run(family: str):
    return figure10_duration(family, sizes=SWEEP_SIZES[family], factors=(1.5, 2.0))


@pytest.mark.parametrize("family", ["lattice", "tree", "random"])
def test_fig10_duration(benchmark, family):
    data = benchmark.pedantic(_run, args=(family,), rounds=1, iterations=1)
    print()
    print(data.to_text())
    for factor in (1.5, 2.0):
        benchmark.extra_info[f"average_reduction_{factor}x"] = data.summary[
            f"average_reduction_percent_{factor}x"
        ]
    # Shape check: shorter circuits on average under both resource settings.
    assert data.summary["average_reduction_percent_1.5x"] > 0.0
    assert data.summary["average_reduction_percent_2.0x"] > 0.0
    assert len(data.rows) == len(SWEEP_SIZES[family])
