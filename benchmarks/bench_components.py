"""Micro-benchmarks of the main substrates.

These are not paper figures; they track the performance of the building
blocks (stabilizer simulation, greedy reduction, partitioning, verification)
so that regressions in the substrates are visible independently of the
end-to-end sweeps.
"""

from __future__ import annotations


from repro.baseline.naive import BaselineCompiler
from repro.circuit.validation import verify_circuit_generates
from repro.core.partition import GraphPartitioner
from repro.core.strategies import greedy_reduce
from repro.evaluation.experiments import fast_config
from repro.graphs.generators import lattice_graph, waxman_graph
from repro.stabilizer.tableau import StabilizerState


def test_stabilizer_graph_state_construction(benchmark):
    """Tableau construction of a 40-qubit lattice graph state."""
    graph = lattice_graph(5, 8)
    edges = [(u, v) for u, v in graph.relabeled()[0].edges()]

    def build():
        return StabilizerState.from_graph_edges(40, edges)

    state = benchmark(build)
    assert state.num_qubits == 40


def test_greedy_reduction_lattice(benchmark):
    """Greedy reduction of a 30-qubit lattice."""
    graph = lattice_graph(5, 6)
    sequence = benchmark(lambda: greedy_reduce(graph))
    assert sequence.num_photons == 30


def test_partitioner_waxman(benchmark):
    """Partition + LC search on a 30-qubit Waxman graph."""
    graph = waxman_graph(30, seed=3)
    partitioner = GraphPartitioner(fast_config())
    result = benchmark(lambda: partitioner.partition(graph))
    assert sum(len(b) for b in result.blocks) == 30


def test_end_to_end_verification(benchmark):
    """Baseline compile + stabilizer verification of a 20-qubit lattice."""
    graph = lattice_graph(4, 5)
    result = BaselineCompiler().compile(graph)

    verified = benchmark(lambda: verify_circuit_generates(result.circuit, graph))
    assert verified
