"""Figure 10 (a)-(c): emitter-emitter CNOT counts, framework vs baseline.

Each benchmark runs the corresponding sweep once, prints the data table
(visible with ``pytest -s`` and captured in ``bench_output.txt``), checks the
paper's qualitative claim — the framework reduces the CNOT count relative to
the GraphiQ-like baseline — and reports the sweep wall-clock time through
pytest-benchmark.
"""

from __future__ import annotations

import pytest

from repro.evaluation.figures import figure10_cnot

#: Reduced sweep sizes keeping the harness fast; the paper's ranges are
#: lattice 10-60, tree 10-40, random 10-35 (see EXPERIMENTS.md).
SWEEP_SIZES = {
    "lattice": (12, 20, 30),
    "tree": (10, 20, 30),
    "random": (10, 15, 20, 25),
}


def _run(family: str):
    data = figure10_cnot(family, sizes=SWEEP_SIZES[family])
    return data


@pytest.mark.parametrize("family", ["lattice", "tree", "random"])
def test_fig10_cnot(benchmark, family):
    data = benchmark.pedantic(_run, args=(family,), rounds=1, iterations=1)
    print()
    print(data.to_text())
    benchmark.extra_info["average_reduction_percent"] = data.summary[
        "average_reduction_percent"
    ]
    # Shape check: on average the framework must not use more emitter-emitter
    # CNOTs than the baseline (the paper reports 25-37% average reductions).
    assert data.summary["average_reduction_percent"] > 0.0
    # Per-point sanity: CNOT counts are non-negative and the sweep is complete.
    assert len(data.rows) == len(SWEEP_SIZES[family])
    for row in data.rows:
        assert row[1] >= 0 and row[2] >= 0
