"""Figure 5 (motivation): emitter usage over time.

The motivating observation of the paper is that naive generation circuits
leave emitters idle for long stretches; the framework's scheduling keeps
utilisation close to the cap, shortening the circuit.  The benchmark
regenerates both usage curves for the same graph state and checks that the
framework circuit is not longer than the baseline one.
"""

from __future__ import annotations

from repro.evaluation.figures import figure5_emitter_usage


def _run():
    return figure5_emitter_usage()


def test_fig5_emitter_usage(benchmark):
    data = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(data.to_text())
    assert data.summary["ours_duration"] <= data.summary["baseline_duration"]
    assert data.summary["ours_peak_emitters"] >= 1
    # The curves must be non-empty step functions for both compilers.
    compilers = set(data.column("compiler"))
    assert compilers == {"baseline", "ours"}
