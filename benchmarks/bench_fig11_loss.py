"""Figure 11 (a): photon-loss suppression.

With the quantum-dot loss rate (0.5 % per tau_QD) and ``N_e^limit = 1.5
N_e^min``, the paper reports loss-probability improvements of x1.3 / x1.4 /
x1.9 on lattice / tree / random graphs.  The benchmark reruns the comparison
and checks that the framework's loss is lower on every family (improvement
factor > 1).
"""

from __future__ import annotations

from repro.evaluation.figures import figure11_loss

SWEEP_SIZES = {
    "lattice": (12, 20, 30),
    "tree": (10, 20, 30),
    "random": (10, 15, 20),
}


def _run():
    return figure11_loss(families=("lattice", "tree", "random"), sizes=SWEEP_SIZES)


def test_fig11a_photon_loss(benchmark):
    data = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(data.to_text())
    for family in ("lattice", "tree", "random"):
        factor = data.summary[f"average_improvement_{family}"]
        benchmark.extra_info[f"improvement_{family}"] = factor
        assert factor > 1.0, f"photon loss must improve on {family} graphs"
