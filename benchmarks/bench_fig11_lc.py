"""Figure 11 (b): stem-edge reduction from local complementation.

The paper shows that allowing up to ``l = 15`` LC operations during
partitioning reduces the number of inter-subgraph (stem) edges on Waxman
graphs compared to ``l = 0``.  The benchmark reruns the comparison and checks
that LC never increases the stem-edge count and reduces it in aggregate.
"""

from __future__ import annotations

from repro.evaluation.figures import figure11_lc_edges

SIZES = (10, 15, 20, 25, 30)


def _run():
    return figure11_lc_edges(sizes=SIZES)


def test_fig11b_lc_stem_edges(benchmark):
    data = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(data.to_text())
    benchmark.extra_info["total_stem_edge_reduction"] = data.summary[
        "total_stem_edge_reduction"
    ]
    # LC must never make the cut worse, and should help in aggregate.
    for row in data.rows:
        assert row[2] <= row[1]
    assert data.summary["total_stem_edge_reduction"] >= 0.0
