"""Tests for the graph partitioner (LC + bounded blocks, MIP model)."""

from __future__ import annotations

import pytest

from repro.core.config import CompilerConfig
from repro.core.partition import GraphPartitioner, build_partition_program
from repro.graphs.generators import (
    complete_graph,
    lattice_graph,
    linear_cluster,
    waxman_graph,
)
from repro.graphs.graph_state import GraphState
from repro.graphs.local_complementation import apply_lc_sequence
from repro.solvers.mip import solve_binary_program
from repro.solvers.partition_heuristics import partition_blocks_valid


def config(**overrides) -> CompilerConfig:
    base = CompilerConfig(max_order_candidates=24, exhaustive_order_threshold=4)
    return base.with_overrides(**overrides) if overrides else base


class TestPartitionResult:
    def test_blocks_partition_the_vertex_set(self):
        graph = waxman_graph(18, seed=3)
        result = GraphPartitioner(config()).partition(graph)
        assert partition_blocks_valid(
            result.transformed_graph, result.blocks, max_block_size=7
        )

    def test_small_graph_is_a_single_block(self):
        graph = linear_cluster(5)
        result = GraphPartitioner(config()).partition(graph)
        assert result.num_blocks == 1
        assert result.num_stem_edges == 0
        assert result.method == "trivial"

    def test_stem_edges_match_block_assignment(self):
        graph = lattice_graph(4, 4)
        result = GraphPartitioner(config()).partition(graph)
        block_of = result.block_of()
        for u, v in result.stem_edges:
            assert block_of[u] != block_of[v]
        internal = [
            (u, v)
            for u, v in result.transformed_graph.edges()
            if block_of[u] == block_of[v]
        ]
        assert len(internal) + result.num_stem_edges == result.transformed_graph.num_edges

    def test_lc_operations_reproduce_the_transformed_graph(self):
        graph = complete_graph(6)
        result = GraphPartitioner(config(max_subgraph_size=3)).partition(graph)
        replayed, _ = apply_lc_sequence(
            result.original_graph, [op.vertex for op in result.lc_operations]
        )
        assert replayed == result.transformed_graph

    def test_lc_budget_zero_means_no_lc(self):
        graph = complete_graph(6)
        result = GraphPartitioner(config(lc_budget=0, max_subgraph_size=3)).partition(graph)
        assert result.lc_operations == []
        assert result.transformed_graph == graph

    def test_lc_never_increases_the_cut(self):
        for seed in range(5):
            graph = waxman_graph(16, seed=seed)
            no_lc = GraphPartitioner(config(lc_budget=0)).partition(graph)
            with_lc = GraphPartitioner(config(lc_budget=15)).partition(graph)
            assert with_lc.num_stem_edges <= no_lc.num_stem_edges

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            GraphPartitioner(config()).partition(GraphState())

    def test_exact_method_on_a_small_graph(self):
        graph = lattice_graph(2, 4)
        result = GraphPartitioner(
            config(partition_method="exact", max_subgraph_size=4, lc_budget=0)
        ).partition(graph)
        assert result.method == "exact"
        assert partition_blocks_valid(result.transformed_graph, result.blocks, 4)
        # The optimal bisection of a 2x4 grid cuts exactly 2 edges.
        assert result.num_stem_edges == 2


class TestPartitionProgram:
    def test_model_counts_stem_edges(self):
        graph = linear_cluster(4)
        program, y_names, _ = build_partition_program(graph, max_block_size=2, num_blocks=2)
        solution = solve_binary_program(program)
        assert solution.is_optimal
        # The path 0-1-2-3 split into two halves cuts exactly one edge.
        assert solution.objective == pytest.approx(1.0)

    def test_model_respects_capacity(self):
        graph = linear_cluster(4)
        program, y_names, _ = build_partition_program(graph, max_block_size=2, num_blocks=2)
        solution = solve_binary_program(program)
        for block in range(2):
            assigned = sum(
                solution.assignment[y_names[(v, block)]] for v in graph.vertices()
            )
            assert assigned <= 2

    def test_model_parameter_validation(self):
        graph = linear_cluster(3)
        with pytest.raises(ValueError):
            build_partition_program(graph, max_block_size=0, num_blocks=1)
        with pytest.raises(ValueError):
            build_partition_program(graph, max_block_size=2, num_blocks=0)
