"""Tests for the small shared helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.misc import (
    check_non_negative,
    check_positive,
    make_rng,
    normalize_edge,
    pairs,
)


class TestValidation:
    def test_check_positive_accepts_positive(self):
        check_positive("x", 1)
        check_positive("x", 0.5)

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_check_positive_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", value)

    def test_check_non_negative_accepts_zero(self):
        check_non_negative("y", 0)

    def test_check_non_negative_rejects_negative(self):
        with pytest.raises(ValueError, match="y"):
            check_non_negative("y", -3)


class TestRng:
    def test_seed_gives_reproducible_stream(self):
        assert make_rng(3).random() == make_rng(3).random()

    def test_generator_is_passed_through(self):
        generator = np.random.default_rng(0)
        assert make_rng(generator) is generator

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestPairsAndEdges:
    def test_pairs_enumerates_unordered_pairs(self):
        assert list(pairs([1, 2, 3])) == [(1, 2), (1, 3), (2, 3)]

    def test_pairs_of_single_element_is_empty(self):
        assert list(pairs([7])) == []

    def test_normalize_edge_orders_comparable_labels(self):
        assert normalize_edge(3, 1) == (1, 3)
        assert normalize_edge(1, 3) == (1, 3)

    def test_normalize_edge_handles_mixed_types(self):
        edge_a = normalize_edge("a", 1)
        edge_b = normalize_edge(1, "a")
        assert edge_a == edge_b
