"""Tests for the simulated-annealing engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.solvers.annealing import simulated_annealing


def one_max_energy(state: tuple[int, ...]) -> float:
    """Number of zero bits (minimised at the all-ones string)."""
    return float(len(state) - sum(state))


def flip_one_bit(state: tuple[int, ...], rng: np.random.Generator) -> tuple[int, ...]:
    index = int(rng.integers(0, len(state)))
    flipped = list(state)
    flipped[index] ^= 1
    return tuple(flipped)


class TestAnnealing:
    def test_solves_one_max(self):
        result = simulated_annealing(
            initial_state=(0,) * 12,
            energy=one_max_energy,
            neighbor=flip_one_bit,
            num_iterations=3000,
            initial_temperature=2.0,
            final_temperature=1e-3,
            seed=0,
        )
        assert result.best_energy <= 1.0

    def test_best_energy_never_exceeds_initial(self):
        initial = (0, 1, 0, 1, 0, 1)
        result = simulated_annealing(
            initial_state=initial,
            energy=one_max_energy,
            neighbor=flip_one_bit,
            num_iterations=200,
            seed=3,
        )
        assert result.best_energy <= one_max_energy(initial)

    def test_deterministic_for_seed(self):
        kwargs = dict(
            initial_state=(0,) * 8,
            energy=one_max_energy,
            neighbor=flip_one_bit,
            num_iterations=500,
            seed=11,
        )
        first = simulated_annealing(**kwargs)
        second = simulated_annealing(**kwargs)
        assert first.best_state == second.best_state
        assert first.best_energy == second.best_energy

    def test_bookkeeping_fields(self):
        result = simulated_annealing(
            initial_state=(0, 0),
            energy=one_max_energy,
            neighbor=flip_one_bit,
            num_iterations=50,
            seed=2,
        )
        assert result.iterations == 50
        assert 0 <= result.accepted_moves <= 50
        assert 0.0 <= result.acceptance_rate <= 1.0

    def test_single_iteration_is_allowed(self):
        result = simulated_annealing(
            initial_state=(1, 1),
            energy=one_max_energy,
            neighbor=flip_one_bit,
            num_iterations=1,
            seed=0,
        )
        assert result.iterations == 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            simulated_annealing((0,), one_max_energy, flip_one_bit, num_iterations=0)
        with pytest.raises(ValueError):
            simulated_annealing(
                (0,), one_max_energy, flip_one_bit, initial_temperature=-1.0
            )
        with pytest.raises(ValueError):
            simulated_annealing(
                (0,),
                one_max_energy,
                flip_one_bit,
                initial_temperature=0.1,
                final_temperature=1.0,
            )
