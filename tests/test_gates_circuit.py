"""Tests for the gate datatypes and the Circuit container constraints."""

from __future__ import annotations

import pytest

from repro.circuit.circuit import Circuit
from repro.circuit.gates import (
    Gate,
    GateName,
    Qubit,
    QubitKind,
    emitter,
    photon,
)


class TestQubit:
    def test_shorthand_constructors(self):
        assert emitter(2) == Qubit(QubitKind.EMITTER, 2)
        assert photon(0).is_photon
        assert emitter(1).is_emitter

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            photon(-1)

    def test_repr(self):
        assert repr(emitter(3)) == "e3"
        assert repr(photon(7)) == "p7"


class TestGateValidation:
    def test_single_qubit_gate_arity(self):
        with pytest.raises(ValueError):
            Gate(GateName.H, (emitter(0), emitter(1)))

    def test_two_qubit_gate_arity(self):
        with pytest.raises(ValueError):
            Gate(GateName.CZ, (emitter(0),))

    def test_duplicate_operands_rejected(self):
        with pytest.raises(ValueError):
            Gate(GateName.CZ, (emitter(0), emitter(0)))

    def test_no_operands_rejected(self):
        with pytest.raises(ValueError):
            Gate(GateName.H, ())

    def test_conditional_paulis_only_on_measurement(self):
        with pytest.raises(ValueError):
            Gate(GateName.H, (emitter(0),), conditional_paulis=(("Z", photon(0)),))

    def test_invalid_conditional_pauli_name(self):
        with pytest.raises(ValueError):
            Gate(
                GateName.MEASURE_Z,
                (emitter(0),),
                conditional_paulis=(("Q", photon(0)),),
            )

    def test_emitter_emitter_flag(self):
        assert Gate(GateName.CZ, (emitter(0), emitter(1))).is_emitter_emitter_gate
        assert not Gate(GateName.EMIT, (emitter(0), photon(0))).is_emitter_emitter_gate

    def test_involves(self):
        gate = Gate(GateName.CZ, (emitter(0), emitter(1)))
        assert gate.involves(emitter(0))
        assert not gate.involves(photon(0))


class TestCircuitConstraints:
    def test_registry_bounds(self):
        circuit = Circuit(num_emitters=1, num_photons=1)
        with pytest.raises(ValueError):
            circuit.add_cz(0, 1)
        with pytest.raises(ValueError):
            circuit.add_emission(0, 5)

    def test_photon_photon_gate_rejected(self):
        circuit = Circuit(num_emitters=1, num_photons=2)
        circuit.add_emission(0, 0)
        circuit.add_emission(0, 1)
        with pytest.raises(ValueError):
            circuit.append(Gate(GateName.CZ, (photon(0), photon(1))))

    def test_emitter_photon_two_qubit_gate_rejected(self):
        circuit = Circuit(num_emitters=1, num_photons=1)
        circuit.add_emission(0, 0)
        with pytest.raises(ValueError):
            circuit.append(Gate(GateName.CNOT, (emitter(0), photon(0))))

    def test_photon_gate_before_emission_rejected(self):
        circuit = Circuit(num_emitters=1, num_photons=1)
        with pytest.raises(ValueError):
            circuit.add_single(GateName.H, photon(0))

    def test_double_emission_rejected(self):
        circuit = Circuit(num_emitters=1, num_photons=1)
        circuit.add_emission(0, 0)
        with pytest.raises(ValueError):
            circuit.add_emission(0, 0)

    def test_emission_operand_kinds(self):
        circuit = Circuit(num_emitters=1, num_photons=1)
        with pytest.raises(ValueError):
            circuit.append(Gate(GateName.EMIT, (photon(0), emitter(0))))

    def test_measurement_of_photon_rejected(self):
        circuit = Circuit(num_emitters=1, num_photons=1)
        circuit.add_emission(0, 0)
        with pytest.raises(ValueError):
            circuit.append(Gate(GateName.MEASURE_Z, (photon(0),)))

    def test_conditional_on_unemitted_photon_rejected(self):
        circuit = Circuit(num_emitters=1, num_photons=1)
        with pytest.raises(ValueError):
            circuit.add_measure(0, conditional_paulis=[("Z", photon(0))])

    def test_valid_emission_sequence(self):
        circuit = Circuit(num_emitters=2, num_photons=2)
        circuit.add_single(GateName.H, emitter(0))
        circuit.add_cz(0, 1)
        circuit.add_emission(0, 0)
        circuit.add_single(GateName.H, photon(0))
        circuit.add_emission(1, 1)
        circuit.add_measure(0, conditional_paulis=[("Z", photon(0))])
        circuit.add_reset(1)
        assert circuit.num_gates == 7
        assert circuit.emitted_photons == {0, 1}


class TestCircuitQueries:
    def build(self) -> Circuit:
        circuit = Circuit(num_emitters=2, num_photons=2)
        circuit.add_single(GateName.H, emitter(0))
        circuit.add_cz(0, 1)
        circuit.add_cnot(0, 1)
        circuit.add_emission(0, 0)
        circuit.add_emission(1, 1)
        circuit.add_single(GateName.H, photon(1))
        return circuit

    def test_counts(self):
        circuit = self.build()
        assert circuit.count(GateName.EMIT) == 2
        assert circuit.count(GateName.H) == 2
        assert circuit.num_emitter_emitter_gates() == 2

    def test_gates_on(self):
        circuit = self.build()
        assert len(circuit.gates_on(emitter(0))) == 4
        assert len(circuit.gates_on(photon(1))) == 2

    def test_emission_gate_of(self):
        circuit = self.build()
        gate = circuit.emission_gate_of(0)
        assert gate is not None and gate.qubits[0] == emitter(0)
        assert circuit.emission_gate_of(5) is None

    def test_copy_independence(self):
        circuit = self.build()
        clone = circuit.copy()
        clone.add_reset(0)
        assert clone.num_gates == circuit.num_gates + 1

    def test_gates_property_returns_copy(self):
        circuit = self.build()
        gates = circuit.gates
        gates.append("junk")
        assert circuit.num_gates == 6

    def test_concatenate(self):
        a = self.build()
        b = Circuit(num_emitters=2, num_photons=2)
        b.add_reset(0)
        merged = Circuit.concatenate([Circuit(2, 2), b])
        assert merged.num_gates == 1
        with pytest.raises(ValueError):
            Circuit.concatenate([])
        with pytest.raises(ValueError):
            Circuit.concatenate([a, Circuit(1, 2)])

    def test_pretty(self):
        circuit = self.build()
        text = circuit.pretty(max_gates=2)
        assert "more gates" in text
        assert "EMIT" in circuit.pretty()

    def test_negative_registry_rejected(self):
        with pytest.raises(ValueError):
            Circuit(-1, 2)
        with pytest.raises(ValueError):
            Circuit(1, -2)
