"""Tests for stabilizer canonical forms and exact state equality."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stabilizer.canonical import canonical_stabilizer_matrix, states_equal
from repro.stabilizer.tableau import StabilizerState


def random_clifford_state(num_qubits: int, gate_choices, seed_state=None) -> StabilizerState:
    state = seed_state if seed_state is not None else StabilizerState(num_qubits)
    for kind, a, b in gate_choices:
        if kind == "h":
            state.h(a)
        elif kind == "s":
            state.s(a)
        elif kind == "cnot" and a != b:
            state.cnot(a, b)
        elif kind == "cz" and a != b:
            state.cz(a, b)
    return state


gate_sequences = st.lists(
    st.tuples(
        st.sampled_from(["h", "s", "cnot", "cz"]),
        st.integers(0, 3),
        st.integers(0, 3),
    ),
    min_size=0,
    max_size=15,
)


class TestCanonicalForm:
    def test_canonical_form_is_deterministic(self):
        state = StabilizerState.from_graph_edges(3, [(0, 1), (1, 2)])
        first = canonical_stabilizer_matrix(state)
        second = canonical_stabilizer_matrix(state)
        assert (first == second).all()

    def test_gate_order_of_commuting_gates_does_not_matter(self):
        a = StabilizerState(3)
        for q in range(3):
            a.h(q)
        a.cz(0, 1)
        a.cz(1, 2)
        b = StabilizerState(3)
        for q in range(3):
            b.h(q)
        b.cz(1, 2)
        b.cz(0, 1)
        assert (canonical_stabilizer_matrix(a) == canonical_stabilizer_matrix(b)).all()

    def test_canonical_form_shape(self):
        state = StabilizerState(4)
        matrix = canonical_stabilizer_matrix(state)
        assert matrix.shape == (4, 9)


class TestStatesEqual:
    def test_equal_states_from_different_constructions(self):
        # |+>|+> with a CZ equals the same state built with CNOT + H.
        a = StabilizerState(2)
        a.h(0)
        a.h(1)
        a.cz(0, 1)
        b = StabilizerState(2)
        b.h(0)
        b.cnot(0, 1)
        b.h(1)
        assert states_equal(a, b)

    def test_phase_matters(self):
        a = StabilizerState(1)
        a.h(0)  # |+>
        b = StabilizerState(1)
        b.x_gate(0)
        b.h(0)  # |->
        assert not states_equal(a, b)

    def test_different_entanglement_structure(self):
        a = StabilizerState.from_graph_edges(3, [(0, 1)])
        b = StabilizerState.from_graph_edges(3, [(1, 2)])
        assert not states_equal(a, b)

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            states_equal(StabilizerState(2), StabilizerState(3))

    @given(gate_sequences)
    @settings(max_examples=50, deadline=None)
    def test_state_equals_itself_after_copy(self, gates):
        state = random_clifford_state(4, gates)
        assert states_equal(state, state.copy())

    @given(gate_sequences)
    @settings(max_examples=50, deadline=None)
    def test_extra_z_on_plus_breaks_equality(self, gates):
        state = random_clifford_state(4, gates)
        modified = state.copy()
        modified.h(0)
        modified.s(0)
        # H then S is never the identity on any stabilizer state axis-aligned
        # with the original, so equality must only hold if it is undone.
        modified.sdg(0)
        modified.h(0)
        assert states_equal(state, modified)
