"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.graphs.generators import (
    lattice_graph,
    linear_cluster,
    random_tree,
    repeater_graph_state,
    ring_graph,
    star_graph,
    waxman_graph,
)
from repro.graphs.graph_state import GraphState


@pytest.fixture
def small_graph_zoo() -> dict[str, GraphState]:
    """A collection of small named graphs covering the main structures."""
    return {
        "single": GraphState(vertices=[0]),
        "edge": GraphState(vertices=[0, 1], edges=[(0, 1)]),
        "path4": linear_cluster(4),
        "star5": star_graph(5),
        "ring5": ring_graph(5),
        "lattice2x3": lattice_graph(2, 3),
        "tree7": random_tree(7, seed=1),
        "rgs3": repeater_graph_state(3),
        "waxman8": waxman_graph(8, seed=2),
    }


@pytest.fixture
def random_small_graphs() -> list[GraphState]:
    """Thirty random G(n, p) graphs with 2-7 vertices (deterministic seeds)."""
    rng = random.Random(12345)
    graphs = []
    for trial in range(30):
        n = rng.randint(2, 7)
        p = rng.choice([0.3, 0.5, 0.7])
        graphs.append(GraphState.from_networkx(nx.gnp_random_graph(n, p, seed=trial)))
    return graphs
