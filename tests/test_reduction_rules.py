"""Tests for the time-reversed reduction engine and its exact rewrite rules.

Every reversed operation claims a forward gate realisation; the tests here
apply a single operation to small working graphs and verify, on the
stabilizer simulator, that the forward circuit produced by reversing the full
sequence generates exactly the target graph state.  Precondition violations
and bookkeeping (emitter budgets, finish) are covered as well.
"""

from __future__ import annotations

import pytest

from repro.circuit.validation import verify_circuit_generates
from repro.core.reduction import (
    InsufficientEmittersError,
    ReductionOpType,
    ReductionState,
)
from repro.graphs.generators import linear_cluster, star_graph
from repro.graphs.graph_state import GraphState


def verify_state(state: ReductionState, target: GraphState) -> bool:
    sequence = state.finish()
    circuit = sequence.to_circuit()
    return verify_circuit_generates(
        circuit, target, photon_of_vertex=sequence.photon_of_vertex
    )


class TestSwap:
    def test_swap_then_leaf_absorption_generates_an_edge(self):
        target = GraphState(vertices=[0, 1], edges=[(0, 1)])
        state = ReductionState(target)
        state.apply_swap(1)
        state.apply_absorb_leaf(0, 0)
        assert verify_state(state, target)

    def test_swap_transfers_the_whole_neighbourhood(self):
        target = star_graph(4)
        state = ReductionState(target)
        emitter = state.apply_swap(0)  # centre
        _, emitters = state.photon_neighbors(1)
        assert emitters == {emitter}

    def test_swap_missing_photon_raises(self):
        state = ReductionState(linear_cluster(2))
        state.apply_swap(1)
        with pytest.raises(ValueError):
            state.apply_swap(1)

    def test_full_star_generation_via_swap(self):
        target = star_graph(5)
        state = ReductionState(target)
        emitter = state.apply_swap(0)
        # Every leaf now dangles on the emitter that replaced the centre.
        for leaf in (1, 2, 3, 4):
            state.apply_absorb_leaf(emitter, leaf)
        assert verify_state(state, target)


class TestAbsorptionRules:
    def test_absorb_leaf_precondition(self):
        target = linear_cluster(3)
        state = ReductionState(target)
        state.apply_swap(2)
        with pytest.raises(ValueError):
            state.apply_absorb_leaf(0, 0)  # photon 0 not adjacent to emitter 0

    def test_absorb_dangling_inherits_neighbourhood(self):
        target = linear_cluster(4)
        state = ReductionState(target)
        emitter = state.apply_swap(3)
        state.apply_absorb_dangling(emitter, 2)
        _, emitters = state.photon_neighbors(1)
        assert emitters == {emitter}
        state.apply_absorb_dangling(emitter, 1)
        state.apply_absorb_leaf(emitter, 0)
        assert verify_state(state, target)

    def test_absorb_dangling_requires_degree_one_emitter(self):
        target = star_graph(4)
        state = ReductionState(target)
        emitter = state.apply_swap(0)
        # The emitter now has three neighbours; it is not dangling.
        with pytest.raises(ValueError):
            state.apply_absorb_dangling(emitter, 1)

    def test_absorb_twin_requires_identical_neighbourhoods(self):
        target = linear_cluster(4)
        state = ReductionState(target)
        emitter = state.apply_swap(3)
        with pytest.raises(ValueError):
            state.apply_absorb_twin(emitter, 1)

    def test_absorb_twin_requires_non_adjacency(self):
        target = GraphState(vertices=[0, 1], edges=[(0, 1)])
        state = ReductionState(target)
        emitter = state.apply_swap(1)
        with pytest.raises(ValueError):
            state.apply_absorb_twin(emitter, 0)

    def test_twin_rule_round_trip(self):
        # Two twins attached to a common neighbour.
        target = GraphState(vertices=[0, 1, 2], edges=[(0, 2), (1, 2)])
        state = ReductionState(target)
        emitter = state.apply_swap(0)
        state.apply_absorb_twin(emitter, 1)
        state.apply_absorb_leaf(emitter, 2)
        assert verify_state(state, target)


class TestDisconnectAndIsolated:
    def test_disconnect_requires_an_edge(self):
        target = linear_cluster(3)
        state = ReductionState(target)
        a = state.apply_swap(2)
        b = state.apply_swap(0)
        with pytest.raises(ValueError):
            state.apply_disconnect(a, b)

    def test_triangle_generation_with_disconnect(self):
        target = GraphState(vertices=[0, 1, 2], edges=[(0, 1), (1, 2), (0, 2)])
        state = ReductionState(target)
        a = state.apply_swap(2)
        b = state.apply_swap(1)
        # Both emitters hold photon 0 and an emitter-emitter edge.
        state.apply_disconnect(a, b)
        state.apply_absorb_dangling(b, 0)
        assert verify_state(state, target)

    def test_isolated_photon(self):
        target = GraphState(vertices=[0, 1], edges=[])
        state = ReductionState(target)
        state.apply_emit_isolated(0)
        state.apply_emit_isolated(1)
        assert verify_state(state, target)

    def test_isolated_requires_degree_zero(self):
        state = ReductionState(linear_cluster(2))
        with pytest.raises(ValueError):
            state.apply_emit_isolated(0)

    def test_free_emitter_requires_isolation(self):
        target = linear_cluster(2)
        state = ReductionState(target)
        emitter = state.apply_swap(1)
        with pytest.raises(ValueError):
            state.apply_free_emitter(emitter)


class TestBudgetsAndFinish:
    def test_strict_budget_raises(self):
        target = linear_cluster(3)
        state = ReductionState(target, emitter_budget=1, strict_budget=True)
        state.apply_swap(2)
        with pytest.raises(InsufficientEmittersError):
            state.apply_swap(0)

    def test_soft_budget_records_overflow(self):
        target = linear_cluster(3)
        state = ReductionState(target, emitter_budget=1)
        state.apply_swap(2)
        state.apply_swap(0)
        assert state.emitters_over_budget == 1

    def test_finish_rejects_remaining_photons(self):
        state = ReductionState(linear_cluster(2))
        with pytest.raises(RuntimeError):
            state.finish()

    def test_finish_cleans_up_emitter_edges(self):
        target = GraphState(vertices=[0, 1], edges=[(0, 1)])
        state = ReductionState(target)
        state.apply_swap(1)
        state.apply_swap(0)
        sequence = state.finish()
        assert sequence.num_emitter_emitter_gates == 1
        assert verify_circuit_generates(
            sequence.to_circuit(), target, photon_of_vertex=sequence.photon_of_vertex
        )

    def test_sequence_bookkeeping(self):
        target = linear_cluster(3)
        state = ReductionState(target)
        state.apply_swap(2)
        state.apply_absorb_dangling(0, 1)
        state.apply_absorb_leaf(0, 0)
        sequence = state.finish()
        assert sequence.num_emissions == 3
        assert sequence.num_photons == 3
        assert sequence.emission_order() == [0, 1, 2]
        assert all(isinstance(op.op_type, ReductionOpType) for op in sequence.operations)

    def test_empty_target_rejected(self):
        with pytest.raises(ValueError):
            ReductionState(GraphState())

    def test_invalid_photon_order_rejected(self):
        with pytest.raises(ValueError):
            ReductionState(linear_cluster(3), photon_order=[0, 1])
