"""Tests for the subgraph recombination scheduler (Tetris packing)."""

from __future__ import annotations

import pytest

from repro.core.config import CompilerConfig
from repro.core.scheduler import SubgraphScheduler
from repro.core.subgraph_compiler import SubgraphCompiler
from repro.graphs.generators import lattice_graph, linear_cluster, ring_graph


def compile_blocks(graphs):
    compiler = SubgraphCompiler(
        CompilerConfig(max_order_candidates=12, exhaustive_order_threshold=4)
    )
    return [compiler.compile_flexible(graph) for graph in graphs]


@pytest.fixture(scope="module")
def block_variants():
    return compile_blocks([linear_cluster(4), ring_graph(5), lattice_graph(2, 3)])


class TestScheduler:
    def test_every_block_is_scheduled_once(self, block_variants):
        plan = SubgraphScheduler(emitter_limit=4).schedule(block_variants)
        assert sorted(item.block_index for item in plan.scheduled) == [0, 1, 2]

    def test_emitter_assignments_respect_the_limit(self, block_variants):
        limit = 3
        plan = SubgraphScheduler(emitter_limit=limit).schedule(block_variants)
        for item in plan.scheduled:
            assert 1 <= len(item.emitter_ids) <= limit
            assert all(0 <= e < limit for e in item.emitter_ids)

    def test_concurrent_blocks_use_disjoint_emitters(self, block_variants):
        plan = SubgraphScheduler(emitter_limit=5).schedule(block_variants)
        items = plan.scheduled
        for i, a in enumerate(items):
            for b in items[i + 1:]:
                overlap_in_time = a.start_time < b.end_time and b.start_time < a.end_time
                if overlap_in_time and a.duration > 0 and b.duration > 0:
                    assert not (set(a.emitter_ids) & set(b.emitter_ids))

    def test_priority_orders_emissions(self, block_variants):
        plan = SubgraphScheduler(emitter_limit=2).schedule(block_variants)
        scheduled = sorted(plan.scheduled, key=lambda s: s.start_time)
        priorities = [item.priority for item in scheduled]
        # Low-priority blocks (few photons per unit time) are emitted earlier.
        assert priorities == sorted(priorities)

    def test_emission_vertex_order_covers_every_vertex(self, block_variants):
        plan = SubgraphScheduler(emitter_limit=4).schedule(block_variants)
        order = plan.emission_vertex_order()
        total_vertices = sum(
            variants[min(variants)].num_photons for variants in block_variants
        )
        assert len(order) == total_vertices

    def test_reversed_plan_is_latest_first(self, block_variants):
        plan = SubgraphScheduler(emitter_limit=4).schedule(block_variants)
        reversed_plan = plan.reversed_processing_plan()
        starts = [item.start_time for item in reversed_plan]
        assert starts == sorted(starts, reverse=True)

    def test_utilisation_is_a_fraction(self, block_variants):
        plan = SubgraphScheduler(emitter_limit=4).schedule(block_variants)
        assert 0.0 < plan.utilisation() <= 1.0 + 1e-9

    def test_makespan_estimate_bounds_end_times(self, block_variants):
        plan = SubgraphScheduler(emitter_limit=3).schedule(block_variants)
        assert plan.makespan_estimate == pytest.approx(
            max(item.end_time for item in plan.scheduled)
        )

    def test_more_emitters_never_lengthen_the_plan(self, block_variants):
        tight = SubgraphScheduler(emitter_limit=2).schedule(block_variants)
        loose = SubgraphScheduler(emitter_limit=6).schedule(block_variants)
        assert loose.makespan_estimate <= tight.makespan_estimate + 1e-9

    def test_invalid_inputs(self, block_variants):
        with pytest.raises(ValueError):
            SubgraphScheduler(emitter_limit=0)
        with pytest.raises(ValueError):
            SubgraphScheduler(emitter_limit=2).schedule([])
