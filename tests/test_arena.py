"""Tests for the arena GF(2) backend (word arenas + bulk kernels).

Three layers of bit-identity guarantees:

* kernel level — ``arena_gf2_*`` agree with the packed big-int kernels and
  the dense uint8 oracle on every input, including widths that cross the
  64-bit word boundary;
* reduction level — ``greedy_reduce`` on the arena backend produces the
  exact same operation sequence (and forward circuit) as packed and dense;
* engine level — ``CutRankEngine`` heights match across all three backends
  on the full scenario zoo.

Plus the auto-selection contract: the bulk elimination kernels
(``gf2_rref``/``gf2_solve``/``gf2_nullspace``) upgrade packed to arena at
the measured column crossover, while per-row online consumers
(``make_reduction_state``, ``CutRankEngine``) never auto-upgrade.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.arena_reduction import ArenaReductionState
from repro.core.packed_reduction import (
    PackedReductionState,
    make_reduction_state,
)
from repro.core.reduction import ReductionState
from repro.core.strategies import greedy_reduce
from repro.graphs.generators import (
    erdos_renyi_graph,
    ghz_graph,
    percolated_lattice,
    random_regular_graph,
    rotated_surface_code_graph,
    steane_code_graph,
    watts_strogatz_graph,
)
from repro.graphs.incremental import CutRankEngine
from repro.utils.backend import ARENA, PACKED, arena_auto_threshold, use_backend
from repro.utils.gf2 import (
    _elimination_backend,
    gf2_matmul,
    gf2_nullspace,
    gf2_rank,
    gf2_rref,
    gf2_solve,
)

binary_matrices = arrays(
    dtype=np.uint8,
    shape=st.tuples(st.integers(1, 8), st.integers(1, 8)),
    elements=st.integers(0, 1),
)

BACKEND_TRIPLE = ("dense", "packed", "arena")

#: The seven scenario-zoo families of the evaluation harness.
ZOO_GRAPHS = {
    "regular": lambda: random_regular_graph(12, degree=3, seed=5),
    "smallworld": lambda: watts_strogatz_graph(14, k=4, seed=5),
    "erdos": lambda: erdos_renyi_graph(12, seed=5),
    "percolated": lambda: percolated_lattice(4, 4, seed=5),
    "ghz": lambda: ghz_graph(10),
    "steane": lambda: steane_code_graph(),
    "surface": lambda: rotated_surface_code_graph(3),
}


class TestKernelEquivalence:
    """arena == packed == dense on every bulk kernel."""

    @given(binary_matrices)
    @settings(max_examples=60, deadline=None)
    def test_rank_matches_across_backends(self, matrix):
        ranks = {b: gf2_rank(matrix, backend=b) for b in BACKEND_TRIPLE}
        assert len(set(ranks.values())) == 1, ranks

    @given(binary_matrices)
    @settings(max_examples=60, deadline=None)
    def test_rref_matches_across_backends(self, matrix):
        results = {b: gf2_rref(matrix, backend=b) for b in BACKEND_TRIPLE}
        ref_matrix, ref_pivots = results["dense"]
        for backend in ("packed", "arena"):
            got_matrix, got_pivots = results[backend]
            assert np.array_equal(got_matrix, ref_matrix), backend
            assert list(got_pivots) == list(ref_pivots), backend

    @given(binary_matrices)
    @settings(max_examples=60, deadline=None)
    def test_nullspace_matches_across_backends(self, matrix):
        ref = gf2_nullspace(matrix, backend="dense")
        for backend in ("packed", "arena"):
            got = gf2_nullspace(matrix, backend=backend)
            assert np.array_equal(got, ref), backend

    @given(binary_matrices, st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_solve_matches_across_backends(self, matrix, rng):
        # Build a consistent system: b = A @ x for a random x.
        x = np.array(
            [rng.randint(0, 1) for _ in range(matrix.shape[1])], dtype=np.uint8
        )
        b = gf2_matmul(matrix, x.reshape(-1, 1)).ravel()
        solutions = {b_: gf2_solve(matrix, b, backend=b_) for b_ in BACKEND_TRIPLE}
        for backend, solution in solutions.items():
            assert solution is not None, backend
            check = gf2_matmul(matrix, np.asarray(solution).reshape(-1, 1)).ravel()
            assert np.array_equal(check, b), backend

    @given(
        arrays(np.uint8, st.tuples(st.integers(1, 5), st.integers(1, 5)),
               elements=st.integers(0, 1)),
        st.integers(1, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_matmul_matches_across_backends(self, left, inner_cols):
        rng = np.random.default_rng(left.sum() + inner_cols)
        right = rng.integers(0, 2, size=(left.shape[1], inner_cols), dtype=np.uint8)
        ref = gf2_matmul(left, right, backend="dense")
        for backend in ("packed", "arena"):
            assert np.array_equal(gf2_matmul(left, right, backend=backend), ref)

    @pytest.mark.parametrize("cols", [63, 64, 65, 127, 128, 129, 200])
    def test_word_boundary_widths(self, cols):
        """Widths straddling the 64-bit word boundary stay bit-identical."""
        rng = np.random.default_rng(cols)
        matrix = rng.integers(0, 2, size=(40, cols), dtype=np.uint8)
        assert gf2_rank(matrix, backend="arena") == gf2_rank(matrix, backend="dense")
        ref_m, ref_p = gf2_rref(matrix, backend="dense")
        got_m, got_p = gf2_rref(matrix, backend="arena")
        assert np.array_equal(got_m, ref_m)
        assert list(got_p) == list(ref_p)
        assert np.array_equal(
            gf2_nullspace(matrix, backend="arena"),
            gf2_nullspace(matrix, backend="dense"),
        )

    @pytest.mark.parametrize("rows", [65, 130])
    def test_tall_matrices_beyond_64_rows(self, rows):
        rng = np.random.default_rng(rows)
        matrix = rng.integers(0, 2, size=(rows, 30), dtype=np.uint8)
        assert gf2_rank(matrix, backend="arena") == gf2_rank(matrix, backend="dense")


class TestAutoSelection:
    """Bulk elimination upgrades packed -> arena at the column crossover."""

    def test_default_threshold(self):
        assert arena_auto_threshold() == 128

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_GF2_ARENA_THRESHOLD", "16")
        assert arena_auto_threshold() == 16

    def test_upgrade_at_threshold_edge(self, monkeypatch):
        monkeypatch.setenv("REPRO_GF2_ARENA_THRESHOLD", "8")
        below = np.zeros((4, 7), dtype=np.uint8)
        at = np.zeros((4, 8), dtype=np.uint8)
        assert _elimination_backend(PACKED, below) == PACKED
        assert _elimination_backend(PACKED, at) == ARENA

    def test_explicit_backend_never_upgraded(self, monkeypatch):
        monkeypatch.setenv("REPRO_GF2_ARENA_THRESHOLD", "1")
        wide = np.zeros((4, 64), dtype=np.uint8)
        assert _elimination_backend("dense", wide) == "dense"
        assert _elimination_backend(ARENA, wide) == ARENA

    def test_rref_result_unchanged_by_routing(self, monkeypatch):
        """Auto-upgraded rref answers match the un-upgraded ones exactly."""
        rng = np.random.default_rng(7)
        matrix = rng.integers(0, 2, size=(50, 140), dtype=np.uint8)
        monkeypatch.setenv("REPRO_GF2_ARENA_THRESHOLD", "64")
        routed_m, routed_p = gf2_rref(matrix, backend="packed")
        monkeypatch.setenv("REPRO_GF2_ARENA_THRESHOLD", "100000")
        plain_m, plain_p = gf2_rref(matrix, backend="packed")
        assert np.array_equal(routed_m, plain_m)
        assert list(routed_p) == list(plain_p)

    def test_make_reduction_state_does_not_auto_upgrade(self):
        # Per-row online updates are faster packed; arena is explicit-only.
        graph = ghz_graph(16)
        state = make_reduction_state(graph, backend="packed")
        assert isinstance(state, PackedReductionState)
        arena = make_reduction_state(graph, backend="arena")
        assert isinstance(arena, ArenaReductionState)
        dense = make_reduction_state(graph, backend="dense")
        assert isinstance(dense, ReductionState)
        assert not isinstance(dense, (PackedReductionState, ArenaReductionState))


class TestReductionBitIdentity:
    """greedy_reduce is bit-identical on all three backends."""

    @pytest.mark.parametrize("family", sorted(ZOO_GRAPHS))
    def test_operations_and_circuits_identical(self, family):
        graph = ZOO_GRAPHS[family]()
        ref = greedy_reduce(graph, backend="packed")
        for backend in ("dense", "arena"):
            got = greedy_reduce(graph, backend=backend)
            assert got.operations == ref.operations, (family, backend)
            assert got.num_emitters == ref.num_emitters, (family, backend)
            assert got.to_circuit().gates == ref.to_circuit().gates, (
                family,
                backend,
            )

    def test_arena_via_process_default(self):
        graph = percolated_lattice(4, 5, seed=3)
        ref = greedy_reduce(graph, backend="packed")
        with use_backend("arena"):
            got = greedy_reduce(graph)
        assert got.operations == ref.operations

    def test_arena_beyond_word_boundary(self):
        """A >64-vertex graph exercises multi-word arena rows end to end."""
        graph = erdos_renyi_graph(70, seed=9)
        ref = greedy_reduce(graph, backend="packed")
        got = greedy_reduce(graph, backend="arena")
        assert got.operations == ref.operations
        assert got.num_emitters == ref.num_emitters


class TestCutRankEngineBackends:
    """CutRankEngine heights match across backends on the scenario zoo."""

    @pytest.mark.parametrize("family", sorted(ZOO_GRAPHS))
    def test_heights_identical(self, family):
        graph = ZOO_GRAPHS[family]()
        ordering = list(graph.vertices())
        heights = {
            backend: CutRankEngine(graph, backend=backend).heights(ordering)
            for backend in BACKEND_TRIPLE
        }
        assert heights["arena"] == heights["packed"] == heights["dense"], family

    def test_truncate_and_reevaluate_arena(self):
        graph = watts_strogatz_graph(12, k=4, seed=2)
        ordering = list(graph.vertices())
        packed = CutRankEngine(graph, backend="packed")
        arena = CutRankEngine(graph, backend="arena")
        assert arena.heights(ordering) == packed.heights(ordering)
        # Mutate a suffix: both engines re-evaluate from the checkpoint.
        flipped = ordering[:5] + list(reversed(ordering[5:]))
        assert arena.heights(flipped) == packed.heights(flipped)

    def test_engine_beyond_word_boundary(self):
        graph = erdos_renyi_graph(70, seed=4)
        ordering = list(graph.vertices())
        assert (
            CutRankEngine(graph, backend="arena").heights(ordering)
            == CutRankEngine(graph, backend="packed").heights(ordering)
        )
