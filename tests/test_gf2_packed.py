"""Equivalence of the packed GF(2)/stabilizer fast path with the dense oracle.

The packed backend (``repro.utils.gf2_packed`` + the packed tableau/canonical
paths) promises *bit-exact* agreement with the dense implementation.  These
tests enforce that promise property-based: random matrices, random graphs and
random Clifford circuits are pushed through both backends and every output —
ranks, echelon forms, nullspaces, solutions, tableaus, signs, measurement
outcomes, canonical matrices — must be identical.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.entanglement import cut_rank, minimum_emitters
from repro.graphs.graph_state import GraphState
from repro.stabilizer.canonical import canonical_stabilizer_matrix, states_equal
from repro.stabilizer.tableau import StabilizerState
from repro.utils import gf2
from repro.utils.backend import (
    get_default_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.utils.gf2_packed import (
    pack_matrix,
    packed_gf2_matmul,
    popcount_words,
    unpack_matrix,
    words_per_row,
)

matrix_inputs = st.tuples(
    st.integers(min_value=1, max_value=9),       # rows
    st.integers(min_value=1, max_value=9),       # cols
    st.integers(min_value=0, max_value=100_000),  # seed
)

# A couple of shapes straddling the 64-bit word boundary, where packing bugs
# hide; exercised deterministically on top of the hypothesis sweeps.
WIDE_SHAPES = [(5, 63), (7, 64), (6, 65), (4, 127), (9, 130), (3, 200)]


def random_matrix(rows: int, cols: int, seed: int, density: float = 0.5) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.random((rows, cols)) < density).astype(np.uint8)


class TestBackendRegistry:
    def test_resolve_and_default(self):
        assert resolve_backend(None) == get_default_backend()
        assert resolve_backend("dense") == "dense"
        assert resolve_backend("PACKED") == "packed"
        with pytest.raises(ValueError):
            resolve_backend("simd")

    def test_use_backend_restores_default(self):
        before = get_default_backend()
        with use_backend("dense"):
            assert get_default_backend() == "dense"
        assert get_default_backend() == before
        with use_backend(None):
            assert get_default_backend() == before
        assert get_default_backend() == before

    def test_set_default_backend_returns_previous(self):
        before = get_default_backend()
        try:
            assert set_default_backend("dense") == before
            assert get_default_backend() == "dense"
        finally:
            set_default_backend(before)


class TestPacking:
    @given(matrix_inputs)
    @settings(max_examples=60, deadline=None)
    def test_pack_unpack_roundtrip(self, params):
        rows, cols, seed = params
        matrix = random_matrix(rows, cols, seed)
        words = pack_matrix(matrix)
        assert words.shape == (rows, words_per_row(cols))
        assert words.dtype == np.uint64
        assert np.array_equal(unpack_matrix(words, cols), matrix)

    def test_pack_unpack_roundtrip_wide(self):
        for rows, cols in WIDE_SHAPES:
            matrix = random_matrix(rows, cols, seed=rows * cols)
            assert np.array_equal(unpack_matrix(pack_matrix(matrix), cols), matrix)

    def test_popcount_matches_row_sums(self):
        matrix = random_matrix(6, 130, seed=5)
        assert np.array_equal(
            popcount_words(pack_matrix(matrix)), matrix.sum(axis=1, dtype=np.int64)
        )


class TestKernelEquivalence:
    @given(matrix_inputs)
    @settings(max_examples=80, deadline=None)
    def test_rank_rref_nullspace_agree(self, params):
        rows, cols, seed = params
        matrix = random_matrix(rows, cols, seed)
        assert gf2.gf2_rank(matrix, backend="packed") == gf2.gf2_rank(
            matrix, backend="dense"
        )
        dense_rref, dense_pivots = gf2.gf2_rref(matrix, backend="dense")
        packed_rref, packed_pivots = gf2.gf2_rref(matrix, backend="packed")
        assert packed_pivots == dense_pivots
        assert np.array_equal(packed_rref, dense_rref)
        assert np.array_equal(
            gf2.gf2_nullspace(matrix, backend="packed"),
            gf2.gf2_nullspace(matrix, backend="dense"),
        )

    @given(matrix_inputs)
    @settings(max_examples=60, deadline=None)
    def test_solve_agrees(self, params):
        rows, cols, seed = params
        matrix = random_matrix(rows, cols, seed)
        rhs = random_matrix(1, rows, seed + 1)[0]
        dense = gf2.gf2_solve(matrix, rhs, backend="dense")
        packed = gf2.gf2_solve(matrix, rhs, backend="packed")
        if dense is None:
            assert packed is None
        else:
            assert packed is not None
            assert np.array_equal(packed, dense)

    @given(matrix_inputs, st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_matmul_agrees(self, params, inner):
        rows, cols, seed = params
        left = random_matrix(rows, inner, seed)
        right = random_matrix(inner, cols, seed + 2)
        assert np.array_equal(
            gf2.gf2_matmul(left, right, backend="packed"),
            gf2.gf2_matmul(left, right, backend="dense"),
        )
        # The module-level kernel is the same code path the backend routes to.
        assert np.array_equal(
            packed_gf2_matmul(left, right),
            gf2.gf2_matmul(left, right, backend="dense"),
        )

    def test_wide_matrices_agree(self):
        for rows, cols in WIDE_SHAPES:
            matrix = random_matrix(rows, cols, seed=rows + 31 * cols)
            assert gf2.gf2_rank(matrix, backend="packed") == gf2.gf2_rank(
                matrix, backend="dense"
            )
            dense_rref, dense_pivots = gf2.gf2_rref(matrix, backend="dense")
            packed_rref, packed_pivots = gf2.gf2_rref(matrix, backend="packed")
            assert packed_pivots == dense_pivots
            assert np.array_equal(packed_rref, dense_rref)


def random_graph(num_vertices: int, seed: int) -> GraphState:
    rng = np.random.default_rng(seed)
    graph = GraphState(vertices=range(num_vertices))
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            if rng.random() < 0.4:
                graph.add_edge(u, v)
    return graph


class TestGraphEquivalence:
    @given(
        st.integers(min_value=2, max_value=9),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_cut_rank_agrees(self, num_vertices, seed):
        graph = random_graph(num_vertices, seed)
        rng = np.random.default_rng(seed + 1)
        subset = [v for v in graph.vertices() if rng.random() < 0.5]
        assert cut_rank(graph, subset, backend="packed") == cut_rank(
            graph, subset, backend="dense"
        )

    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_minimum_emitters_agrees(self, num_vertices, seed):
        graph = random_graph(num_vertices, seed)
        assert minimum_emitters(graph, backend="packed") == minimum_emitters(
            graph, backend="dense"
        )

    def test_cut_rank_agrees_beyond_word_boundary(self):
        graph = random_graph(70, seed=3)
        subset = list(range(33))
        assert cut_rank(graph, subset, backend="packed") == cut_rank(
            graph, subset, backend="dense"
        )


SINGLE_QUBIT_GATES = ("h", "s", "sdg", "x_gate", "y_gate", "z_gate", "sqrt_x", "sqrt_x_dag")


def apply_random_circuit(
    dense: StabilizerState, packed: StabilizerState, rng: np.random.Generator, steps: int
) -> None:
    """Drive both states through the same random gates/measurements."""
    n = dense.num_qubits
    for _ in range(steps):
        op = int(rng.integers(0, 4))
        if op == 0 or n == 1:
            gate = SINGLE_QUBIT_GATES[int(rng.integers(0, len(SINGLE_QUBIT_GATES)))]
            qubit = int(rng.integers(0, n))
            getattr(dense, gate)(qubit)
            getattr(packed, gate)(qubit)
        elif op == 1:
            a, b = (int(v) for v in rng.choice(n, size=2, replace=False))
            dense.cnot(a, b)
            packed.cnot(a, b)
        elif op == 2:
            a, b = (int(v) for v in rng.choice(n, size=2, replace=False))
            dense.cz(a, b)
            packed.cz(a, b)
        else:
            qubit = int(rng.integers(0, n))
            forced = int(rng.integers(0, 2))
            assert dense.measure_z(qubit, forced_outcome=forced) == packed.measure_z(
                qubit, forced_outcome=forced
            )


class TestTableauEquivalence:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_circuits_agree(self, num_qubits, seed):
        rng = np.random.default_rng(seed)
        dense = StabilizerState(num_qubits, backend="dense")
        packed = StabilizerState(num_qubits, backend="packed")
        apply_random_circuit(dense, packed, rng, steps=30)
        assert np.array_equal(dense.x, packed.x)
        assert np.array_equal(dense.z, packed.z)
        assert np.array_equal(dense.r, packed.r)
        assert np.array_equal(
            dense.stabilizer_matrix(), packed.stabilizer_matrix()
        )
        assert np.array_equal(
            canonical_stabilizer_matrix(dense), canonical_stabilizer_matrix(packed)
        )
        assert states_equal(dense, packed)

    @given(
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_contains_pauli_agrees(self, num_qubits, seed):
        rng = np.random.default_rng(seed)
        dense = StabilizerState(num_qubits, backend="dense")
        packed = StabilizerState(num_qubits, backend="packed")
        apply_random_circuit(dense, packed, rng, steps=20)
        x_bits = rng.integers(0, 2, size=num_qubits).astype(np.uint8)
        z_bits = rng.integers(0, 2, size=num_qubits).astype(np.uint8)
        for sign in (0, 1):
            assert dense.contains_pauli(x_bits, z_bits, sign=sign) == (
                packed.contains_pauli(x_bits, z_bits, sign=sign)
            )

    def test_graph_state_agrees_beyond_word_boundary(self):
        n = 70
        rng = np.random.default_rng(9)
        edges = [(i, (i + 1) % n) for i in range(n)]
        edges += [
            (int(u), int(v))
            for u, v in rng.choice(n, size=(40, 2))
            if u != v
        ]
        dense = StabilizerState.from_graph_edges(n, edges, backend="dense")
        packed = StabilizerState.from_graph_edges(n, edges, backend="packed")
        assert np.array_equal(dense.x, packed.x)
        assert np.array_equal(dense.z, packed.z)
        assert np.array_equal(dense.r, packed.r)
        assert np.array_equal(
            canonical_stabilizer_matrix(dense), canonical_stabilizer_matrix(packed)
        )
        assert states_equal(dense, packed)

    def test_copy_is_independent(self):
        packed = StabilizerState.from_graph_edges(5, [(0, 1), (1, 2)], backend="packed")
        clone = packed.copy()
        clone.h(0)
        assert not np.array_equal(packed.x, clone.x)
        assert clone.backend == "packed"

    def test_measurement_statistics_match_across_backends(self):
        # Same seed => identical sampled outcomes, not just forced ones.
        for seed in range(5):
            dense = StabilizerState(4, seed=seed, backend="dense")
            packed = StabilizerState(4, seed=seed, backend="packed")
            for q in range(4):
                dense.h(q)
                packed.h(q)
            outcomes_dense = [dense.measure_z(q) for q in range(4)]
            outcomes_packed = [packed.measure_z(q) for q in range(4)]
            assert outcomes_dense == outcomes_packed
