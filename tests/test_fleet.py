"""Tests for the multi-worker compile fleet: routing, journal, metrics, ops.

The fast half exercises the pure building blocks (rendezvous hashing, the
pending-queue journal, the metrics registry and exposition validator, the
client retry loop) and runs in tier-1.  The multi-process half — real worker
subprocesses, SIGKILL fault injection, journal replay, drain under load —
is marked ``slow`` and deselected by default; CI's ``fleet-smoke`` job runs
it with ``pytest tests/test_fleet.py -m slow``.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import urllib.request

import pytest

from repro.pipeline.jobs import BatchJob, PendingJournal
from repro.service.client import RETRYABLE_STATUSES, ServiceClient, ServiceError
from repro.service.fleet import (
    HEALTHY,
    FleetDrainingError,
    rendezvous_order,
    start_fleet,
)
from repro.service.loadgen import run_loadgen
from repro.service.metrics import (
    FLEET_METRICS,
    MetricsRegistry,
    validate_exposition,
)
from repro.service.metrics import _main as metrics_main

# --------------------------------------------------------------------------- #
# Rendezvous routing (fast)
# --------------------------------------------------------------------------- #


class TestRendezvousOrder:
    def test_is_a_permutation_and_deterministic(self):
        indices = [0, 1, 2, 3, 4]
        order = rendezvous_order("deadbeef", indices)
        assert sorted(order) == indices
        assert order == rendezvous_order("deadbeef", indices)

    def test_different_hashes_spread_across_workers(self):
        indices = list(range(4))
        first_choices = {
            rendezvous_order(f"hash-{i}", indices)[0] for i in range(200)
        }
        assert first_choices == set(indices)

    def test_consistent_hashing_property(self):
        # Removing one worker must not reshuffle the relative order of the
        # survivors: jobs that did not prefer the removed worker keep their
        # placement.
        indices = [0, 1, 2, 3]
        for i in range(50):
            content_hash = f"job-{i}"
            full = rendezvous_order(content_hash, indices)
            without = rendezvous_order(content_hash, [0, 1, 3])
            assert [index for index in full if index != 2] == without

    def test_identical_jobs_share_a_worker(self):
        job = BatchJob.from_dict({"family": "lattice", "size": 9, "kind": "compile"})
        same = BatchJob.from_dict({"family": "lattice", "size": 9, "kind": "compile"})
        indices = [0, 1, 2]
        assert (
            rendezvous_order(job.content_hash, indices)
            == rendezvous_order(same.content_hash, indices)
        )


# --------------------------------------------------------------------------- #
# Pending-queue journal (fast)
# --------------------------------------------------------------------------- #


class TestPendingJournal:
    def test_done_entries_are_not_replayed(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = PendingJournal(path)
        journal.record_pending("r1", {"family": "ghz", "size": 4}, "h1")
        journal.record_attempt("r1", 0)
        journal.record_done("r1")
        journal.record_pending("r2", {"family": "ghz", "size": 5}, "h2")
        journal.record_attempt("r2", 1)
        journal.close()

        unfinished = PendingJournal.load_unfinished(path)
        assert [entry.request_id for entry in unfinished] == ["r2"]
        assert unfinished[0].payload == {"family": "ghz", "size": 5}
        assert unfinished[0].attempts == 1

    def test_failed_entries_are_terminal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = PendingJournal(path)
        journal.record_pending("bad", {"family": "nope"}, "invalid")
        journal.record_failed("bad", "unknown family")
        journal.close()
        assert PendingJournal.load_unfinished(path) == []

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = PendingJournal(path)
        journal.record_pending("r1", {"family": "ghz", "size": 4}, "h1")
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "pending", "request_id": "r2", "pa')
        unfinished = PendingJournal.load_unfinished(path)
        assert [entry.request_id for entry in unfinished] == ["r1"]

    def test_compact_drops_finished_entries(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = PendingJournal(path)
        for i in range(5):
            journal.record_pending(f"r{i}", {"family": "ghz", "size": 4 + i}, f"h{i}")
            if i != 3:
                journal.record_done(f"r{i}")
        kept = journal.compact()
        journal.close()
        assert kept == 1
        unfinished = PendingJournal.load_unfinished(path)
        assert [entry.request_id for entry in unfinished] == ["r3"]

    def test_missing_file_means_empty_backlog(self, tmp_path):
        assert PendingJournal.load_unfinished(tmp_path / "absent.jsonl") == []

    def test_poisoned_entries_are_terminal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = PendingJournal(path)
        journal.record_pending("toxic", {"family": "ghz", "size": 4}, "h1")
        journal.record_attempt("toxic", 0)
        journal.record_attempt("toxic", 1)
        journal.record_poisoned("toxic", 3, "worker crashed")
        journal.record_pending("fine", {"family": "ghz", "size": 5}, "h2")
        journal.close()
        unfinished = PendingJournal.load_unfinished(path)
        assert [entry.request_id for entry in unfinished] == ["fine"]

    def test_attempt_counts_survive_a_torn_tail(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = PendingJournal(path)
        journal.record_pending(
            "r1", {"family": "ghz", "size": 4}, "h1", attempts=2
        )
        journal.record_attempt("r1", 0)
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "attempt", "request_id": "r1", "wor')
        unfinished = PendingJournal.load_unfinished(path)
        assert [entry.request_id for entry in unfinished] == ["r1"]
        # 2 carried forward + 1 complete attempt line; the torn line is dropped.
        assert unfinished[0].attempts == 3

    def test_compaction_preserves_attempt_counts(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = PendingJournal(path)
        journal.record_pending("keep", {"family": "ghz", "size": 4}, "h1")
        journal.record_attempt("keep", 0)
        journal.record_attempt("keep", 1)
        journal.record_pending("done", {"family": "ghz", "size": 5}, "h2")
        journal.record_done("done")
        kept = journal.compact()
        journal.close()
        assert kept == 1
        unfinished = PendingJournal.load_unfinished(path)
        assert [entry.request_id for entry in unfinished] == ["keep"]
        assert unfinished[0].attempts == 2


# --------------------------------------------------------------------------- #
# Metrics registry and exposition validator (fast)
# --------------------------------------------------------------------------- #


def _full_exposition() -> str:
    registry = MetricsRegistry()
    for name, (kind, help_text) in FLEET_METRICS.items():
        factory = {
            "counter": registry.counter,
            "gauge": registry.gauge,
            "summary": registry.summary,
        }[kind]
        factory(name, help_text)
    return registry.render()


class TestMetrics:
    def test_full_fleet_exposition_validates(self):
        assert validate_exposition(_full_exposition()) == []

    def test_missing_metric_is_reported(self):
        text = _full_exposition().replace("repro_fleet_uptime_seconds", "repro_other")
        problems = validate_exposition(text)
        assert any("repro_fleet_uptime_seconds" in p for p in problems)

    def test_non_numeric_sample_is_reported(self):
        text = _full_exposition() + "\nrepro_fleet_workers_total NaNish\n"
        assert validate_exposition(text) != []

    def test_counter_labels_and_values(self):
        registry = MetricsRegistry()
        counter = registry.counter("demo_total", "demo")
        counter.inc(worker="0")
        counter.inc(2, worker="0")
        counter.inc(worker='ba"d\\label')
        assert counter.value(worker="0") == 3
        rendered = registry.render()
        assert 'demo_total{worker="0"} 3' in rendered
        assert '\\"' in rendered and "\\\\" in rendered

    def test_summary_quantiles_count_and_sum(self):
        registry = MetricsRegistry()
        summary = registry.summary("lat_seconds", "latency")
        for value in [0.1, 0.2, 0.3, 0.4]:
            summary.observe(value)
        rendered = registry.render()
        assert 'lat_seconds{quantile="0.5"}' in rendered
        assert "lat_seconds_count 4" in rendered
        assert summary.count == 4

    def test_cli_gate_exit_codes(self, tmp_path):
        good = tmp_path / "good.txt"
        good.write_text(_full_exposition(), encoding="utf-8")
        assert metrics_main([str(good)]) == 0
        bad = tmp_path / "bad.txt"
        bad.write_text("nope 1\n", encoding="utf-8")
        assert metrics_main([str(bad)]) == 1
        assert metrics_main([str(tmp_path / "absent.txt")]) == 2


# --------------------------------------------------------------------------- #
# Client retry loop (fast)
# --------------------------------------------------------------------------- #


class TestClientRetries:
    def _client_with_script(self, monkeypatch, outcomes: list) -> tuple[ServiceClient, list]:
        client = ServiceClient("http://127.0.0.1:1", retries=2, retry_backoff_seconds=0.0)
        calls = []

        def fake_once(method, path, payload):
            calls.append((method, path))
            outcome = outcomes[min(len(calls), len(outcomes)) - 1]
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        monkeypatch.setattr(client, "_request_once", fake_once)
        return client, calls

    def test_retries_connection_failures_then_succeeds(self, monkeypatch):
        client, calls = self._client_with_script(
            monkeypatch, [ServiceError(0, "refused"), {"ok": True}]
        )
        assert client.request("POST", "/compile", {})["ok"] is True
        assert len(calls) == 2

    def test_retries_503_then_succeeds(self, monkeypatch):
        client, calls = self._client_with_script(
            monkeypatch, [ServiceError(503, "draining"), {"ok": True}]
        )
        assert client.request("POST", "/compile", {})["ok"] is True
        assert len(calls) == 2

    def test_does_not_retry_terminal_http_errors(self, monkeypatch):
        client, calls = self._client_with_script(
            monkeypatch, [ServiceError(400, "bad job")]
        )
        with pytest.raises(ServiceError):
            client.request("POST", "/compile", {})
        assert len(calls) == 1

    def test_raises_after_retries_exhausted(self, monkeypatch):
        failure = ServiceError(0, "refused")
        client, calls = self._client_with_script(monkeypatch, [failure])
        with pytest.raises(ServiceError):
            client.request("GET", "/healthz")
        assert len(calls) == 3  # 1 try + 2 retries

    def test_retryable_statuses_are_connection_and_503(self):
        assert set(RETRYABLE_STATUSES) == {0, 503}


# --------------------------------------------------------------------------- #
# Multi-process fleet (slow; CI fleet-smoke territory)
# --------------------------------------------------------------------------- #


def _get_text(url: str) -> str:
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.read().decode("utf-8")


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    """A real 2-worker fleet shared by the read-mostly slow tests."""
    base = tmp_path_factory.mktemp("fleet")
    server, supervisor, _ = start_fleet(
        2,
        cache_dir=str(base / "cache"),
        journal_path=str(base / "journal.jsonl"),
        heartbeat_seconds=0.2,
    )
    host, port = server.server_address[:2]
    url = f"http://{host}:{port}"
    client = ServiceClient(url, timeout=120.0, retries=1)
    yield {"server": server, "supervisor": supervisor, "url": url, "client": client}
    supervisor.stop()
    server.shutdown()
    server.server_close()


def _wait_for(predicate, timeout: float = 20.0, period: float = 0.1) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(period)
    return predicate()


@pytest.mark.slow
class TestFleetEndToEnd:
    def test_compile_routes_consistently(self, fleet):
        payload = {"family": "lattice", "size": 8, "seed": 2, "kind": "compile"}
        first = fleet["client"].compile_payload(payload)
        second = fleet["client"].compile_payload(payload)
        assert first["ok"] and second["ok"]
        assert first["worker"] == second["worker"]
        assert first["request_id"] and second["request_id"]
        expected = rendezvous_order(
            BatchJob.from_dict(payload).content_hash, [0, 1]
        )[0]
        assert first["worker"] == expected

    def test_healthz_rolls_up_workers(self, fleet):
        body = fleet["client"].healthz()
        assert body["role"] == "fleet"
        assert body["num_workers"] == 2
        states = {w["index"]: w for w in body["workers"]}
        assert set(states) == {0, 1}
        assert all(w["pid"] for w in body["workers"])
        assert body["journal"]["enabled"] is True

    def test_metrics_exposition_is_complete(self, fleet):
        text = _get_text(fleet["url"] + "/metrics")
        assert validate_exposition(text) == []
        assert "repro_fleet_workers_total 2" in text

    def test_batch_forwarding_and_status_routing(self, fleet):
        job_id = fleet["client"].submit_batch(
            [{"family": "ghz", "size": 5, "kind": "compile"}]
        )
        assert "-" in job_id  # worker-index prefix
        body = fleet["client"].wait_for_batch(job_id, timeout=120.0)
        assert body["status"] == "done"
        assert body["job_id"] == job_id

    def test_worker_crash_reroutes_and_restarts(self, fleet):
        supervisor = fleet["supervisor"]
        payload = {"family": "lattice", "size": 8, "seed": 7, "kind": "compile"}
        first = fleet["client"].compile_payload(payload)
        victim = next(w for w in supervisor.workers if w.index == first["worker"])
        old_pid = victim.pid
        os.kill(old_pid, signal.SIGKILL)

        # The very next identical request must still succeed (re-routed to
        # the survivor or served after the restart) with zero client errors.
        second = fleet["client"].compile_payload(payload)
        assert second["ok"] is True

        assert _wait_for(lambda: victim.state == HEALTHY and victim.pid != old_pid)
        assert victim.restarts >= 1

        # Routing is stable across the restart: identity is the index.
        third = fleet["client"].compile_payload(payload)
        assert third["worker"] == first["worker"]


@pytest.mark.slow
class TestJournalReplay:
    def test_unfinished_entries_replay_into_the_cache(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        payload = {"family": "ghz", "size": 6, "seed": 3, "kind": "compile"}
        content_hash = BatchJob.from_dict(payload).content_hash
        journal = PendingJournal(journal_path)
        journal.record_pending("replay-me", payload, content_hash)
        journal.record_attempt("replay-me", 0)
        journal.close()

        server, supervisor, _ = start_fleet(
            2,
            cache_dir=str(tmp_path / "cache"),
            journal_path=str(journal_path),
            heartbeat_seconds=0.2,
        )
        try:
            assert _wait_for(
                lambda: PendingJournal.load_unfinished(journal_path) == [],
                timeout=120.0,
            )
            text = _get_text(
                f"http://{server.server_address[0]}:{server.server_address[1]}/metrics"
            )
            assert "repro_fleet_journal_replayed_total 1" in text
            # The replayed result landed in the shared cache: re-asking is a hit.
            host, port = server.server_address[:2]
            body = ServiceClient(f"http://{host}:{port}").compile_payload(payload)
            assert body["ok"] is True
            assert body["cache_hit"] is True
        finally:
            supervisor.stop()
            server.shutdown()
            server.server_close()


@pytest.mark.slow
class TestDrain:
    def test_drain_under_load_finishes_inflight_then_rejects(self, tmp_path):
        server, supervisor, _ = start_fleet(
            2,
            journal_path=str(tmp_path / "journal.jsonl"),
            heartbeat_seconds=0.2,
        )
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        results: list[dict] = []
        errors: list[Exception] = []

        def one_request(seed: int) -> None:
            try:
                results.append(
                    ServiceClient(url, timeout=120.0).compile_payload(
                        {"family": "lattice", "size": 10, "seed": seed,
                         "kind": "compile"}
                    )
                )
            except ServiceError as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=one_request, args=(seed,)) for seed in range(4)
        ]
        for thread in threads:
            thread.start()
        # Let every request reach the front end, then drain mid-flight (a
        # drain racing ahead of acceptance would 503 the stragglers, which
        # is correct behaviour but not what this test is about).
        assert _wait_for(lambda: supervisor.inflight == 4, timeout=10.0, period=0.01)
        clean = server.drain_and_shutdown(timeout=120.0)
        for thread in threads:
            thread.join(timeout=120.0)
        try:
            assert clean is True
            assert not errors
            assert len(results) == 4 and all(r["ok"] for r in results)
            assert supervisor.inflight == 0
            with pytest.raises(FleetDrainingError):
                supervisor.dispatch(
                    {"family": "ghz", "size": 4, "kind": "compile"}
                )
            # The journal was compacted on the clean drain: nothing pending.
            assert PendingJournal.load_unfinished(tmp_path / "journal.jsonl") == []
        finally:
            server.server_close()


@pytest.mark.slow
class TestPoisonQuarantine:
    def test_crashing_request_is_quarantined_as_422(self, tmp_path, monkeypatch):
        from repro.utils.faults import reset_registry

        schedule = json.dumps(
            {"rules": [{"point": "compile.step", "action": "crash", "match": "#666"}]}
        )
        monkeypatch.setenv("REPRO_FAULT_SCHEDULE", schedule)
        reset_registry()
        journal_path = tmp_path / "journal.jsonl"
        server, supervisor, _ = start_fleet(
            2,
            journal_path=str(journal_path),
            heartbeat_seconds=0.2,
            max_job_attempts=2,
        )
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}", timeout=120.0)
        try:
            # An innocent request (seed != 666) compiles normally.
            ok = client.compile_payload(
                {"family": "lattice", "size": 6, "seed": 1, "kind": "compile"}
            )
            assert ok["ok"] is True

            with pytest.raises(ServiceError) as excinfo:
                client.compile_payload(
                    {"family": "lattice", "size": 6, "seed": 666, "kind": "compile"}
                )
            assert excinfo.value.status == 422
            body = excinfo.value.body
            assert body["poisoned"] is True
            assert body["attempts"] == 2
            assert len(body["attempt_history"]) == 2
            assert body["max_job_attempts"] == 2

            healthz = client.healthz()
            assert healthz["poisoned_total"] == 1
            assert healthz["max_job_attempts"] == 2
            text = _get_text(f"http://{host}:{port}/metrics")
            assert "repro_fleet_poisoned_total 1" in text

            # The quarantine is terminal in the journal: nothing to replay.
            assert PendingJournal.load_unfinished(journal_path) == []
        finally:
            supervisor.stop()
            server.shutdown()
            server.server_close()
            reset_registry()

    def test_replay_poisons_entries_that_burned_their_attempts(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        payload = {"family": "ghz", "size": 5, "seed": 9, "kind": "compile"}
        content_hash = BatchJob.from_dict(payload).content_hash
        journal = PendingJournal(journal_path)
        journal.record_pending("burned", payload, content_hash, attempts=2)
        journal.close()

        server, supervisor, _ = start_fleet(
            2,
            journal_path=str(journal_path),
            heartbeat_seconds=0.2,
            max_job_attempts=2,
        )
        host, port = server.server_address[:2]
        try:
            # Replay quarantines the entry (attempts already >= max) without
            # dispatching it to any worker.
            assert _wait_for(
                lambda: supervisor.healthz()["poisoned_total"] == 1, timeout=60.0
            )
            assert PendingJournal.load_unfinished(journal_path) == []
            text = _get_text(f"http://{host}:{port}/metrics")
            assert "repro_fleet_poisoned_total 1" in text
        finally:
            supervisor.stop()
            server.shutdown()
            server.server_close()


@pytest.mark.slow
class TestLoadgenFaultInjection:
    def test_kill_worker_mid_load_loses_no_requests(self, tmp_path):
        server, supervisor, _ = start_fleet(
            3,
            journal_path=str(tmp_path / "journal.jsonl"),
            heartbeat_seconds=0.2,
        )
        host, port = server.server_address[:2]
        try:
            payloads = [
                {"family": "lattice", "size": 8, "seed": seed, "kind": "compile"}
                for seed in range(6)
            ]
            report = run_loadgen(
                f"http://{host}:{port}",
                payloads,
                requests=18,
                concurrency=4,
                retries=2,
                kill_worker_after=4,
            )
            assert report.killed_worker_pid is not None
            assert report.errors == 0
            assert report.requests == 18
        finally:
            supervisor.stop()
            server.shutdown()
            server.server_close()

    def test_kill_worker_requires_a_fleet(self, tmp_path):
        from repro.service.server import start_server

        server, _ = start_server(batch_window_seconds=0.01)
        host, port = server.server_address[:2]
        try:
            report = run_loadgen(
                f"http://{host}:{port}",
                [{"family": "ghz", "size": 4, "kind": "compile"}],
                requests=3,
                concurrency=1,
                kill_worker_after=0,
            )
            assert report.errors >= 1
            assert any("fleet front end" in e for e in report.first_errors)
        finally:
            server.shutdown()
            server.server_close()


# --------------------------------------------------------------------------- #
# Concurrent health probes (fast)
# --------------------------------------------------------------------------- #


class TestConcurrentProbes:
    def test_workers_are_probed_concurrently(self):
        """One hung worker must not serialise the /healthz roll-up.

        Three probes meet at a barrier: if the supervision tick probed
        workers sequentially, the first probe would block the tick and the
        barrier could never fill.
        """
        from repro.service.fleet import FleetSupervisor

        supervisor = FleetSupervisor(3, heartbeat_seconds=0.05)
        barrier = threading.Barrier(3, timeout=5.0)
        all_concurrent = threading.Event()

        def meeting_probe(worker):
            barrier.wait()
            all_concurrent.set()

        supervisor._check_worker = meeting_probe
        thread = threading.Thread(target=supervisor._supervise, daemon=True)
        thread.start()
        try:
            assert all_concurrent.wait(timeout=3.0)
        finally:
            supervisor._stop.set()
            thread.join(timeout=2.0)
            supervisor._probe_pool.shutdown(wait=False)

    def test_inflight_probe_is_not_stacked(self):
        """A slow probe must not get a duplicate queued behind it."""
        from repro.service.fleet import FleetSupervisor

        supervisor = FleetSupervisor(1, heartbeat_seconds=0.02)
        release = threading.Event()
        entered = []

        def hanging_probe(worker):
            entered.append(worker.index)
            release.wait(timeout=5.0)

        supervisor._check_worker = hanging_probe
        thread = threading.Thread(target=supervisor._supervise, daemon=True)
        thread.start()
        try:
            time.sleep(0.3)  # many ticks elapse while the probe hangs
            assert len(entered) == 1
        finally:
            release.set()
            supervisor._stop.set()
            thread.join(timeout=2.0)
            supervisor._probe_pool.shutdown(wait=False)


# --------------------------------------------------------------------------- #
# Loadgen front-end kill plumbing (fast; the live drill is CI ha-smoke)
# --------------------------------------------------------------------------- #


class TestLoadgenFrontEndKill:
    def test_kill_front_end_after_validation(self):
        with pytest.raises(ValueError, match="kill_front_end_after"):
            run_loadgen(
                "http://127.0.0.1:1",
                [{"family": "ghz", "size": 4}],
                requests=3,
                kill_front_end_after=3,
            )

    def test_duplicate_accepts_fail_the_run(self):
        from repro.service.loadgen import LoadReport

        report = LoadReport(requests=2)
        assert report.ok
        report.duplicate_accepts = 1
        assert not report.ok
        assert "duplicate_accepts" not in report.summary()  # only after a kill
        report.killed_front_end_pid = 1234
        report.killed_front_end_after = 1
        report.orphan_worker_pids = [111, 222]
        assert report.summary()["duplicate_accepts"] == 1
        assert report.summary()["orphan_worker_pids"] == [111, 222]
        assert "duplicate accepts: 1" in report.to_text()
