"""Tests for the HA front-end pair and tail-robust dispatch.

Fast (tier-1): the client's multi-address failover rotation, the worker
epoch fence (``note_epoch`` / stale 409s), hedged-dispatch thresholds and
win accounting, the dispatch circuit breaker's ring exclusion, and the
standby coordinator's promotion guard.  The full in-process failover
drill (primary dies mid-stream, standby promotes, a fenced stale-epoch
write is observed and rejected) is marked ``slow``; the subprocess
SIGKILL version lives in the CI ``ha-smoke`` step.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.fleet import (
    HEALTHY,
    FleetServer,
    FleetSupervisor,
    free_port,
)
from repro.service.ha import StandbyCoordinator
from repro.service.replication import Lease, ReplicationFencedError, ReplicationLink
from repro.service.server import CompileService


# --------------------------------------------------------------------- #
# Client failover rotation
# --------------------------------------------------------------------- #


class TestClientFailover:
    def test_multi_address_parsing(self):
        client = ServiceClient("http://a:1, http://b:2/")
        assert client.base_urls == ["http://a:1", "http://b:2"]
        client = ServiceClient(["http://a:1", "http://b:2"])
        assert client.base_urls == ["http://a:1", "http://b:2"]
        with pytest.raises(ValueError):
            ServiceClient([])

    def test_rotates_to_standby_on_retryable_failure(self):
        client = ServiceClient(
            ["http://primary", "http://standby"],
            retries=2,
            retry_backoff_seconds=0.0,
        )
        calls = []

        def fake_once(method, path, payload, extra_headers=None):
            calls.append(client.base_url)
            if client.base_url == "http://primary":
                raise ServiceError(0, "connection refused")
            return {"served_by": client.base_url}

        client._request_once = fake_once
        body = client.request("POST", "/compile", {"family": "lattice"})
        assert body["served_by"] == "http://standby"
        assert calls == ["http://primary", "http://standby"]
        # The client stays on the promoted standby for subsequent requests.
        assert client.base_url == "http://standby"

    def test_no_rotation_on_client_error(self):
        client = ServiceClient(
            ["http://primary", "http://standby"], retries=2,
            retry_backoff_seconds=0.0,
        )

        def fake_once(method, path, payload, extra_headers=None):
            raise ServiceError(400, "bad payload")

        client._request_once = fake_once
        with pytest.raises(ServiceError):
            client.request("POST", "/compile", {})
        assert client.base_url == "http://primary"


# --------------------------------------------------------------------- #
# Worker epoch fence
# --------------------------------------------------------------------- #


class TestWorkerEpochFence:
    def test_note_epoch_is_a_monotonic_watermark(self):
        service = CompileService()
        try:
            assert service.note_epoch(2)
            assert service.note_epoch(2)  # equal is fine (same primary)
            assert service.note_epoch(5)
            assert not service.note_epoch(3)  # deposed primary's dispatch
            body = service.healthz()
            assert body["epoch"]["max_seen"] == 5
            assert body["epoch"]["fenced_requests"] == 1
        finally:
            service.close()


# --------------------------------------------------------------------- #
# Hedged dispatch and the dispatch circuit breaker
# --------------------------------------------------------------------- #


def _unstarted_fleet(num_workers: int, **kwargs) -> FleetSupervisor:
    """A supervisor with its workers forced healthy but never spawned."""
    supervisor = FleetSupervisor(num_workers, **kwargs)
    for worker in supervisor.workers:
        worker.state = HEALTHY
    return supervisor


class TestHedgedDispatch:
    def test_quantile_validation(self):
        with pytest.raises(ValueError, match="hedge_quantile"):
            FleetSupervisor(1, hedge_quantile=1.5)

    def test_threshold_floor_without_samples(self):
        supervisor = _unstarted_fleet(
            2, hedge_quantile=0.95, hedge_after_seconds=0.07
        )
        assert supervisor._hedge_threshold_seconds() == pytest.approx(0.07)

    def test_backup_wins_a_slow_primary(self):
        supervisor = _unstarted_fleet(
            2, hedge_quantile=0.5, hedge_after_seconds=0.05
        )
        primary, backup = supervisor.workers

        def fake_forward(worker, payload, content_hash):
            if worker is primary:
                time.sleep(0.5)
                return {"worker": primary.index}
            return {"worker": backup.index}

        supervisor._forward = fake_forward
        tried = {primary.index}
        body, served_by = supervisor._forward_hedged(
            primary,
            list(supervisor.workers),
            tried,
            {"family": "lattice"},
            "hash",
            "r1",
            hedge_allowed=True,
        )
        assert served_by is backup
        assert body["worker"] == backup.index
        assert backup.index in tried
        assert supervisor._instruments["repro_fleet_hedged_requests_total"].value() == 1
        assert supervisor._instruments["repro_fleet_hedge_wins_total"].value() == 1

    def test_fast_primary_needs_no_hedge(self):
        supervisor = _unstarted_fleet(
            2, hedge_quantile=0.5, hedge_after_seconds=0.2
        )
        primary = supervisor.workers[0]
        supervisor._forward = lambda worker, payload, content_hash: {
            "worker": worker.index
        }
        body, served_by = supervisor._forward_hedged(
            primary,
            list(supervisor.workers),
            {primary.index},
            {},
            "hash",
            "r1",
            hedge_allowed=True,
        )
        assert served_by is primary
        assert supervisor._instruments["repro_fleet_hedged_requests_total"].value() == 0


class TestDispatchBreaker:
    def test_flapping_worker_excluded_from_ring(self):
        supervisor = _unstarted_fleet(3, dispatch_breaker_threshold=2)
        flapper = supervisor.workers[0]
        for _ in range(2):
            flapper.breaker.record_failure()
        assert flapper.breaker.state == "open"
        ranked = list(supervisor.workers)
        picked = supervisor._pick_worker(ranked, set(), time.monotonic() + 1.0)
        assert picked is not flapper
        assert flapper.snapshot()["dispatch_breaker"] == "open"

    def test_open_breakers_do_not_starve_dispatch(self):
        """Availability wins: with every breaker open, dispatch still picks."""
        supervisor = _unstarted_fleet(2, dispatch_breaker_threshold=1)
        for worker in supervisor.workers:
            worker.breaker.record_failure()
        picked = supervisor._pick_worker(
            list(supervisor.workers), set(), time.monotonic() + 1.0
        )
        assert picked is not None


# --------------------------------------------------------------------- #
# Standby promotion guard
# --------------------------------------------------------------------- #


class TestStandbyCoordinator:
    def test_no_promotion_before_a_primary_ever_existed(self, tmp_path):
        coordinator = StandbyCoordinator(
            1,
            ("127.0.0.1", free_port()),
            ("127.0.0.1", 0),
            journal_path=str(tmp_path / "standby-journal.jsonl"),
            lease_path=str(tmp_path / "lease.json"),
            failover_after_seconds=0.1,
            poll_seconds=0.02,
        )
        coordinator.start()
        thread = threading.Thread(target=coordinator.watch, daemon=True)
        thread.start()
        time.sleep(0.4)
        assert not coordinator.promoted.is_set()
        coordinator.stop()
        thread.join(timeout=2.0)
        assert not thread.is_alive()

    def test_promotes_once_lease_expires_and_channel_is_quiet(self, tmp_path):
        lease_path = tmp_path / "lease.json"
        # A primary existed: it acquired the lease, then died silently.
        Lease(lease_path, holder="primary").acquire()
        coordinator = StandbyCoordinator(
            1,
            ("127.0.0.1", free_port()),
            ("127.0.0.1", 0),
            journal_path=str(tmp_path / "standby-journal.jsonl"),
            lease_path=str(lease_path),
            failover_after_seconds=0.1,
            poll_seconds=0.02,
        )
        coordinator.lease.ttl_seconds = 0.2
        promoted = []
        coordinator.promote = lambda: promoted.append(True)  # no real fleet
        coordinator.start()
        try:
            assert coordinator.watch() is True
            assert promoted == [True]
        finally:
            coordinator.stop()


# --------------------------------------------------------------------- #
# End-to-end failover drill (slow)
# --------------------------------------------------------------------- #


@pytest.mark.slow
class TestFailoverEndToEnd:
    def test_primary_death_promotes_standby_and_fences_zombie(self, tmp_path):
        frontend_port = free_port()
        cache_dir = str(tmp_path / "cache")
        lease_path = str(tmp_path / "lease.json")

        # Standby first, so the primary's replication connects immediately.
        standby = StandbyCoordinator(
            1,
            ("127.0.0.1", frontend_port),
            ("127.0.0.1", 0),
            journal_path=str(tmp_path / "standby-journal.jsonl"),
            lease_path=lease_path,
            failover_after_seconds=0.5,
            poll_seconds=0.05,
            supervisor_kwargs={"cache_dir": cache_dir},
        )
        standby.lease.ttl_seconds = 0.5
        standby.start()
        standby_thread = threading.Thread(
            target=standby.serve_forever, daemon=True
        )
        standby_thread.start()

        lease = Lease(lease_path, ttl_seconds=0.5, holder="primary")
        epoch = lease.acquire()
        assert epoch == 1
        link = ReplicationLink(standby.acceptor.address, epoch=epoch)
        primary = FleetSupervisor(
            1,
            cache_dir=cache_dir,
            journal_path=str(tmp_path / "primary-journal.jsonl"),
            heartbeat_seconds=0.1,
            epoch=epoch,
            replication=link,
            lease=lease,
        )
        primary.start(wait_ready=True)
        server = FleetServer(("127.0.0.1", frontend_port), primary)
        server_thread = threading.Thread(target=server.serve_forever, daemon=True)
        server_thread.start()

        url = f"http://127.0.0.1:{frontend_port}"
        client = ServiceClient(url, timeout=120.0, retries=30)
        try:
            body = client.compile(family="lattice", size=8, kind="compile")
            assert body["result"]["ours"]["num_emitters"] >= 1
            # The ack was synchronous: the replica journal already holds
            # the pending/done pair for that request.
            assert standby.acceptor.records_total >= 2

            # Primary dies abruptly: stop serving, renewing, heartbeating.
            server.shutdown()
            server.server_close()
            primary.stop()

            assert standby.promoted.wait(timeout=30.0), "standby never promoted"
            assert standby.supervisor is not None
            assert standby.supervisor.epoch == 2

            # A zombie primary at the old epoch is fenced, not applied.
            zombie = ReplicationLink(standby.acceptor.address, epoch=1)
            with pytest.raises(ReplicationFencedError):
                zombie.send_record({"op": "pending", "request_id": "zombie"})
            zombie.close()
            assert standby.acceptor.fenced_total >= 1

            # The promoted standby serves the same address; the second
            # compile is a shared-cache hit of the first.
            body = client.compile(family="lattice", size=8, kind="compile")
            assert body["cache_hit"] is True
            health = client.healthz()
            assert health["ha"]["epoch"] == 2
            assert health["ha"]["failovers"] == 1
            metrics = standby.supervisor.render_metrics()
            assert "repro_fleet_epoch 2" in metrics
            assert "repro_fleet_role 1" in metrics
            assert "repro_fleet_failovers_total 1" in metrics
            assert "repro_fleet_fenced_writes_total" in metrics
        finally:
            standby.stop()
            standby_thread.join(timeout=10.0)
