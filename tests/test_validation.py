"""Tests for circuit simulation and end-to-end verification."""

from __future__ import annotations

import pytest

from repro.circuit.circuit import Circuit
from repro.circuit.gates import Gate, GateName, emitter, photon
from repro.circuit.validation import (
    CircuitValidationError,
    simulate_circuit,
    validate_circuit_constraints,
    verify_circuit_generates,
)
from repro.graphs.graph_state import GraphState


def bell_pair_circuit() -> Circuit:
    """Generates the 2-photon graph state with a single edge."""
    circuit = Circuit(num_emitters=1, num_photons=2)
    circuit.add_single(GateName.H, emitter(0))
    circuit.add_emission(0, 1)
    circuit.add_single(GateName.H, emitter(0))
    circuit.add_emission(0, 0)
    circuit.add_single(GateName.H, emitter(0))
    circuit.add_measure(0, conditional_paulis=[("Z", photon(0))])
    return circuit


class TestSimulation:
    def test_simulated_photons_form_the_edge_state(self):
        final = simulate_circuit(bell_pair_circuit(), seed=0)
        # Photon wires are 0 and 1, the emitter wire is 2 and must be |0>.
        assert final.qubit_is_zero(2)

    def test_measurement_feedforward_makes_the_output_deterministic(self):
        graph = GraphState(vertices=[0, 1], edges=[(0, 1)])
        assert verify_circuit_generates(bell_pair_circuit(), graph, num_trials=5)

    def test_empty_circuit_rejected(self):
        with pytest.raises(ValueError):
            simulate_circuit(Circuit(0, 0))

    def test_reset_gate_supported(self):
        circuit = Circuit(num_emitters=1, num_photons=1)
        circuit.add_single(GateName.H, emitter(0))
        circuit.add_emission(0, 0)
        circuit.add_single(GateName.H, photon(0))
        circuit.add_reset(0)
        final = simulate_circuit(circuit)
        assert final.qubit_is_zero(1)


class TestVerification:
    def test_wrong_target_fails(self):
        triangle = GraphState(vertices=[0, 1], edges=[])
        assert not verify_circuit_generates(bell_pair_circuit(), triangle)

    def test_missing_correction_fails(self):
        # Same circuit but without the conditional Z: outcome-dependent state.
        circuit = Circuit(num_emitters=1, num_photons=2)
        circuit.add_single(GateName.H, emitter(0))
        circuit.add_emission(0, 1)
        circuit.add_single(GateName.H, emitter(0))
        circuit.add_emission(0, 0)
        circuit.add_single(GateName.H, emitter(0))
        circuit.add_measure(0)
        graph = GraphState(vertices=[0, 1], edges=[(0, 1)])
        assert not verify_circuit_generates(circuit, graph, num_trials=6)

    def test_photon_mapping_size_mismatch(self):
        graph = GraphState(vertices=[0, 1, 2], edges=[(0, 1)])
        with pytest.raises(ValueError):
            verify_circuit_generates(bell_pair_circuit(), graph)

    def test_custom_photon_mapping(self):
        graph = GraphState(vertices=["a", "b"], edges=[("a", "b")])
        assert verify_circuit_generates(
            bell_pair_circuit(), graph, photon_of_vertex={"a": 0, "b": 1}
        )


class TestStructuralConstraints:
    def test_valid_circuit_passes(self):
        validate_circuit_constraints(bell_pair_circuit())

    def test_photon_photon_gate_detected(self):
        # Bypass the Circuit container to build an invalid gate list.
        circuit = Circuit(num_emitters=1, num_photons=2)
        circuit.add_emission(0, 0)
        circuit.add_emission(0, 1)
        circuit._gates.append(Gate(GateName.CZ, (photon(0), photon(1))))
        with pytest.raises(CircuitValidationError):
            validate_circuit_constraints(circuit)

    def test_gate_before_emission_detected(self):
        circuit = Circuit(num_emitters=1, num_photons=1)
        circuit._gates.append(Gate(GateName.H, (photon(0),)))
        with pytest.raises(CircuitValidationError):
            validate_circuit_constraints(circuit)

    def test_double_emission_detected(self):
        circuit = Circuit(num_emitters=1, num_photons=1)
        circuit._gates.append(Gate(GateName.EMIT, (emitter(0), photon(0))))
        circuit._gates.append(Gate(GateName.EMIT, (emitter(0), photon(0))))
        with pytest.raises(CircuitValidationError):
            validate_circuit_constraints(circuit)

    def test_photon_measurement_detected(self):
        circuit = Circuit(num_emitters=1, num_photons=1)
        circuit._gates.append(Gate(GateName.EMIT, (emitter(0), photon(0))))
        circuit._gates.append(Gate(GateName.MEASURE_Z, (photon(0),)))
        with pytest.raises(CircuitValidationError):
            validate_circuit_constraints(circuit)

    def test_reversed_emission_operands_detected(self):
        circuit = Circuit(num_emitters=1, num_photons=1)
        circuit._gates.append(Gate(GateName.EMIT, (photon(0), emitter(0))))
        with pytest.raises(CircuitValidationError):
            validate_circuit_constraints(circuit)
