"""Tests for local complementation and its circuit-level realisation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import complete_graph, lattice_graph, waxman_graph
from repro.graphs.graph_state import GraphState
from repro.graphs.local_complementation import (
    LCOperation,
    apply_lc_sequence,
    greedy_lc_for_objective,
    lc_correction_gates,
    local_complement,
    minimize_edges_by_lc,
)
from repro.stabilizer.canonical import states_equal
from repro.stabilizer.tableau import StabilizerState


def graph_tableau(graph: GraphState, order):
    index = {v: i for i, v in enumerate(order)}
    edges = [(index[u], index[v]) for u, v in graph.edges()]
    return StabilizerState.from_graph_edges(len(order), edges)


def apply_named_gates(state: StabilizerState, gates, index):
    for name, vertex in gates:
        wire = index[vertex]
        if name == "SQRT_X":
            state.sqrt_x(wire)
        elif name == "SQRT_X_DAG":
            state.sqrt_x_dag(wire)
        elif name == "S":
            state.s(wire)
        elif name == "SDG":
            state.sdg(wire)
        else:  # pragma: no cover - unexpected gate name
            raise AssertionError(name)


class TestGraphRule:
    def test_lc_is_an_involution(self):
        graph = waxman_graph(8, seed=1)
        for vertex in graph.vertices():
            twice, _ = apply_lc_sequence(graph, [vertex, vertex])
            assert twice == graph

    def test_lc_does_not_touch_incident_edges(self):
        graph = lattice_graph(2, 3)
        for vertex in graph.vertices():
            before = graph.neighbors(vertex)
            after, _ = local_complement(graph, vertex)
            assert after.neighbors(vertex) == before

    def test_lc_on_star_center_gives_complete_graph(self):
        star = GraphState(vertices=range(4), edges=[(0, 1), (0, 2), (0, 3)])
        transformed, _ = local_complement(star, 0)
        assert transformed.num_edges == 6

    def test_operation_records_neighborhood(self):
        graph = lattice_graph(2, 2)
        _, op = local_complement(graph, 0)
        assert isinstance(op, LCOperation)
        assert set(op.neighborhood) == graph.neighbors(0)

    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_lc_preserves_vertex_set(self, seed):
        graph = waxman_graph(7, seed=seed)
        vertex = graph.vertices()[seed % graph.num_vertices]
        transformed, _ = local_complement(graph, vertex)
        assert set(transformed.vertices()) == set(graph.vertices())


class TestUnitaryRealisation:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_forward_gates_realise_lc_on_the_state(self, seed):
        graph = waxman_graph(6, seed=seed)
        order = graph.vertices()
        index = {v: i for i, v in enumerate(order)}
        for vertex in order:
            if graph.degree(vertex) < 2:
                continue
            transformed, op = local_complement(graph, vertex)
            state = graph_tableau(graph, order)
            apply_named_gates(state, lc_correction_gates([op]), index)
            assert states_equal(state, graph_tableau(transformed, order))

    @pytest.mark.parametrize("seed", [4, 5, 6])
    def test_inverse_gates_undo_an_lc_sequence(self, seed):
        graph = waxman_graph(6, seed=seed)
        order = graph.vertices()
        index = {v: i for i, v in enumerate(order)}
        vertices = [v for v in order if graph.degree(v) >= 2][:3]
        transformed, ops = apply_lc_sequence(graph, vertices)
        state = graph_tableau(transformed, order)
        apply_named_gates(state, lc_correction_gates(ops, inverse=True), index)
        assert states_equal(state, graph_tableau(graph, order))


class TestSearch:
    def test_complete_graph_reduces_to_star(self):
        graph = complete_graph(5)
        optimised, ops = minimize_edges_by_lc(graph, max_operations=5)
        assert optimised.num_edges == 4
        assert len(ops) >= 1

    def test_budget_zero_is_a_no_op(self):
        graph = complete_graph(4)
        optimised, ops = minimize_edges_by_lc(graph, max_operations=0)
        assert optimised == graph
        assert ops == []

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            minimize_edges_by_lc(complete_graph(3), max_operations=-1)

    def test_search_never_increases_objective(self):
        graph = waxman_graph(10, seed=3)
        optimised, _ = minimize_edges_by_lc(graph, max_operations=10)
        assert optimised.num_edges <= graph.num_edges

    def test_custom_objective(self):
        graph = complete_graph(4)
        optimised, _ = greedy_lc_for_objective(
            graph, 5, objective=lambda g: max(g.degree(v) for v in g.vertices())
        )
        assert max(optimised.degree(v) for v in optimised.vertices()) <= max(
            graph.degree(v) for v in graph.vertices()
        )
