"""Tests for the emission-ordering optimiser and its plumbing.

Covers the optimiser guarantee (never worse than the natural order), the
compiler integration (verified circuits under ``ordering_strategy=anneal``),
and the configuration / batch-pipeline / CLI / HTTP wire format exposure.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import EXIT_OK, main
from repro.core.compiler import compile_graph
from repro.core.config import CompilerConfig
from repro.core.ordering import (
    ORDERING_STRATEGIES,
    optimize_emission_ordering,
)
from repro.graphs.entanglement import height_function, minimum_emitters
from repro.graphs.generators import (
    lattice_graph,
    linear_cluster,
    waxman_graph,
)
from repro.graphs.graph_state import GraphState
from repro.pipeline.jobs import BatchJob, GraphSpec, run_job
from repro.evaluation.experiments import sweep_jobs

ZOO_FAMILIES = ("regular", "smallworld", "erdos", "percolated", "ghz")


class TestOptimizer:
    @given(
        strategy=st.sampled_from(ORDERING_STRATEGIES),
        family=st.sampled_from(ZOO_FAMILIES),
        size=st.integers(4, 12),
        seed=st.integers(0, 2_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_peak_never_above_natural_baseline(self, strategy, family, size, seed):
        graph = GraphSpec(family=family, size=size, seed=seed).build()
        result = optimize_emission_ordering(
            graph, strategy=strategy, seed=seed, iterations=40
        )
        natural_peak = max(height_function(graph))
        assert result.natural_peak == natural_peak
        assert result.peak_height <= natural_peak
        # The reported peak is the real height profile of the ordering.
        assert result.peak_height == max(height_function(graph, list(result.ordering)))
        assert sorted(result.ordering, key=repr) == sorted(
            graph.vertices(), key=repr
        )

    def test_greedy_improves_the_lattice(self):
        # Row-major emission of a 3x4 lattice needs 4 emitters; column-major
        # needs 3 — the greedy descent must find a peak of at most 3.
        graph = lattice_graph(3, 4)
        result = optimize_emission_ordering(graph, strategy="greedy")
        assert result.natural_peak == 4
        assert result.peak_height <= 3
        assert result.improved

    def test_anneal_never_worse_than_greedy_start(self):
        graph = waxman_graph(14, seed=9)
        greedy = optimize_emission_ordering(graph, strategy="greedy")
        anneal = optimize_emission_ordering(
            graph, strategy="anneal", seed=3, iterations=120
        )
        assert anneal.peak_height <= greedy.peak_height

    def test_natural_strategy_returns_vertex_order(self):
        graph = linear_cluster(6)
        result = optimize_emission_ordering(graph, strategy="natural")
        assert list(result.ordering) == graph.vertices()
        assert result.peak_height == result.natural_peak == 1

    def test_empty_graph(self):
        result = optimize_emission_ordering(GraphState(), strategy="anneal")
        assert result.ordering == ()
        assert result.peak_height == 0

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError):
            optimize_emission_ordering(linear_cluster(3), strategy="magic")

    def test_checkpoint_free_engine_rejected_for_search(self):
        from repro.graphs.incremental import CutRankEngine

        graph = linear_cluster(5)
        bare = CutRankEngine(graph, checkpoint=False)
        with pytest.raises(ValueError, match="checkpoint"):
            optimize_emission_ordering(graph, strategy="greedy", engine=bare)
        # The natural strategy never rolls back, so it stays usable.
        result = optimize_emission_ordering(graph, strategy="natural", engine=bare)
        assert result.peak_height == 1

    def test_deterministic_for_fixed_seed(self):
        graph = waxman_graph(12, seed=4)
        first = optimize_emission_ordering(
            graph, strategy="anneal", seed=11, iterations=60
        )
        second = optimize_emission_ordering(
            graph, strategy="anneal", seed=11, iterations=60
        )
        assert first.ordering == second.ordering
        assert first.peak_height == second.peak_height


class TestCompilerIntegration:
    @pytest.mark.parametrize("strategy", ["greedy", "anneal"])
    def test_compiled_circuit_still_verifies(self, strategy):
        graph = lattice_graph(3, 4)
        result = compile_graph(
            graph, verify=True, ordering_strategy=strategy, ordering_iterations=60
        )
        assert result.verified is True
        assert result.ordering_strategy == strategy
        assert result.ordering_peak is not None
        assert result.minimum_emitters <= minimum_emitters(graph)
        summary = result.summary()
        assert summary["ordering_strategy"] == strategy
        assert summary["ordering_peak"] == result.ordering_peak

    def test_ordering_lowers_the_emitter_bound_on_the_lattice(self):
        graph = lattice_graph(3, 4)
        natural = compile_graph(graph, verify=True)
        optimised = compile_graph(graph, verify=True, ordering_strategy="greedy")
        assert natural.minimum_emitters == 4
        assert optimised.minimum_emitters == 3
        assert natural.ordering_peak is None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CompilerConfig(ordering_strategy="random")
        with pytest.raises(ValueError):
            CompilerConfig(ordering_iterations=0)
        config = CompilerConfig(ordering_strategy="anneal", ordering_iterations=10)
        assert config.ordering_strategy == "anneal"


class TestPipelineWireFormat:
    def test_batch_job_accepts_ordering(self):
        job = BatchJob(
            graph=GraphSpec(family="ghz", size=6), kind="compile", ordering="greedy"
        )
        assert job.as_dict()["ordering"] == "greedy"
        assert job.label.endswith("+greedy")
        rebuilt = BatchJob.from_dict(job.as_dict())
        assert rebuilt == job

    def test_batch_job_rejects_unknown_ordering(self):
        with pytest.raises(ValueError):
            BatchJob(graph=GraphSpec(family="ghz", size=6), ordering="sideways")
        with pytest.raises(ValueError):
            BatchJob.from_dict({"family": "ghz", "size": 6, "ordering": "sideways"})

    def test_from_dict_flat_payload_with_ordering(self):
        job = BatchJob.from_dict(
            {"family": "lattice", "size": 9, "kind": "compile", "ordering": "anneal"}
        )
        assert job.ordering == "anneal"

    def test_ordering_changes_the_content_hash(self):
        spec = GraphSpec(family="lattice", size=9)
        plain = BatchJob(graph=spec, kind="compile")
        ordered = BatchJob(graph=spec, kind="compile", ordering="greedy")
        assert plain.content_hash != ordered.content_hash

    def test_run_job_with_ordering_verifies(self):
        job = BatchJob(
            graph=GraphSpec(family="lattice", size=12, seed=2),
            kind="compile",
            ordering="anneal",
            verify=True,
            config_overrides=(("ordering_iterations", 40),),
        )
        record = run_job(job)
        assert record["ours"]["ordering_strategy"] == "anneal"
        assert "ordering_peak" in record["ours"]

    def test_sweep_jobs_threads_ordering(self):
        jobs = sweep_jobs("lattice", [8, 10], kind="compile", ordering="greedy")
        assert all(job.ordering == "greedy" for job in jobs)


class TestCLI:
    def test_compile_with_ordering(self, capsys):
        code = main(
            [
                "compile",
                "--family",
                "lattice",
                "--size",
                "9",
                "--ordering",
                "greedy",
                "--verify",
            ]
        )
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "ordering_strategy: greedy" in out

    def test_batch_with_ordering(self, capsys):
        code = main(
            [
                "batch",
                "--families",
                "ghz",
                "--sizes",
                "6",
                "--kind",
                "compile",
                "--ordering",
                "greedy",
            ]
        )
        assert code == EXIT_OK
        assert "+greedy" in capsys.readouterr().out

    def test_bench_writes_trajectory_file(self, tmp_path, capsys):
        target = tmp_path / "BENCH_emitters.json"
        code = main(
            [
                "bench",
                "--sizes",
                "16",
                "24",
                "--repeats",
                "1",
                "--compile-sizes",
                "12",
                "24",
                "--cache-sizes",
                "16",
                "32",
                "--portfolio-sizes",
                "12",
                "--portfolio-deadlines-ms",
                "50",
                "500",
                "--arena-sizes",
                "16",
                "32",
                "--stream-sizes",
                "64",
                "256",
                "--output",
                str(target),
            ]
        )
        assert code == EXIT_OK
        record = json.loads(target.read_text())
        assert record["benchmark"] == "emitters"
        assert record["sizes"] == [16, 24]
        assert record["backend"] in ("packed", "dense", "arena")
        assert "git_rev" in record
        for row in record["results"]:
            assert row["speedup"] > 0
            assert row["greedy_peak"] <= row["natural_peak"]
        assert record["arena_results"]["circuits_bit_identical"] is True
        assert len(record["arena_results"]["kernel_results"]) == 2
        stream_rows = record["stream_results"]
        assert stream_rows and all(r["verified_against_oracle"] for r in stream_rows)
        assert set(record["peak_memory_bytes"]) >= {"heights", "arena", "stream"}
        assert "wrote" in capsys.readouterr().out


class TestServiceWireFormat:
    def test_http_compile_with_ordering(self, tmp_path):
        from repro.service.client import ServiceClient
        from repro.service.server import start_server

        server, _ = start_server(
            cache_dir=str(tmp_path / "cache"), batch_window_seconds=0.01
        )
        try:
            host, port = server.server_address[:2]
            client = ServiceClient(f"http://{host}:{port}", timeout=120.0)
            client.wait_until_ready()
            body = client.compile_payload(
                {
                    "family": "lattice",
                    "size": 12,
                    "seed": 2,
                    "kind": "compile",
                    "ordering": "anneal",
                    "verify": True,
                    "config_overrides": {"ordering_iterations": 40},
                }
            )
            assert body["ok"] is True
            assert body["result"]["ours"]["ordering_strategy"] == "anneal"
            from repro.service.client import ServiceError

            with pytest.raises(ServiceError):
                client.compile_payload(
                    {"family": "lattice", "size": 8, "ordering": "bogus"}
                )
        finally:
            server.shutdown()
            server.server_close()
