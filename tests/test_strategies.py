"""Tests for the greedy reduction strategy (baseline and framework policies)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.validation import verify_circuit_generates
from repro.core.strategies import GreedyReductionStrategy, greedy_reduce
from repro.graphs.entanglement import minimum_emitters
from repro.graphs.generators import (
    complete_graph,
    lattice_graph,
    linear_cluster,
    ring_graph,
    star_graph,
    waxman_graph,
)


def verified(graph, **kwargs) -> bool:
    sequence = greedy_reduce(graph, **kwargs)
    return verify_circuit_generates(
        sequence.to_circuit(), graph, photon_of_vertex=sequence.photon_of_vertex
    )


class TestCorrectness:
    def test_named_graphs_all_verify(self, small_graph_zoo):
        for name, graph in small_graph_zoo.items():
            assert verified(graph), f"greedy reduction failed verification on {name}"

    def test_random_graphs_all_verify(self, random_small_graphs):
        for index, graph in enumerate(random_small_graphs):
            assert verified(graph), f"random graph #{index} failed verification"

    def test_custom_processing_order_verifies(self):
        graph = lattice_graph(2, 3)
        order = sorted(graph.vertices(), key=lambda v: graph.degree(v))
        assert verified(graph, processing_order=order)

    @pytest.mark.parametrize(
        "strategy",
        [
            GreedyReductionStrategy(),
            GreedyReductionStrategy(enable_twin_rule=False),
            GreedyReductionStrategy(allow_disconnect_absorb=False),
            GreedyReductionStrategy(prefer_disconnect_over_allocate=True),
            GreedyReductionStrategy(emitter_budget=2),
        ],
    )
    def test_all_policies_verify_on_a_lattice(self, strategy):
        graph = lattice_graph(3, 3)
        assert verified(graph, strategy=strategy)

    @given(st.integers(0, 400), st.integers(2, 8))
    @settings(max_examples=25, deadline=None)
    def test_property_random_waxman_graphs_verify(self, seed, size):
        graph = waxman_graph(size, seed=seed)
        assert verified(graph)


class TestQuality:
    def test_linear_cluster_needs_no_emitter_cnots(self):
        sequence = greedy_reduce(linear_cluster(10))
        assert sequence.num_emitter_emitter_gates == 0
        assert sequence.num_emitters == 1

    def test_star_needs_no_emitter_cnots(self):
        sequence = greedy_reduce(star_graph(8))
        assert sequence.num_emitter_emitter_gates == 0
        assert sequence.num_emitters == 1

    def test_ring_uses_two_emitters(self):
        sequence = greedy_reduce(ring_graph(8))
        assert sequence.num_emitters == 2
        assert sequence.num_emitter_emitter_gates <= 4

    def test_every_photon_is_emitted_exactly_once(self):
        graph = lattice_graph(3, 3)
        sequence = greedy_reduce(graph)
        assert sequence.num_emissions == graph.num_vertices
        assert sorted(sequence.emission_order()) == list(range(graph.num_vertices))

    def test_disconnect_absorb_never_hurts_cnot_count(self):
        graph = waxman_graph(15, seed=5)
        with_move = greedy_reduce(graph, strategy=GreedyReductionStrategy())
        without_move = greedy_reduce(
            graph, strategy=GreedyReductionStrategy(allow_disconnect_absorb=False)
        )
        assert (
            with_move.num_emitter_emitter_gates
            <= without_move.num_emitter_emitter_gates
        )

    def test_minimal_emitter_policy_uses_fewer_emitters(self):
        graph = waxman_graph(15, seed=6)
        greedy = greedy_reduce(graph, strategy=GreedyReductionStrategy())
        frugal = greedy_reduce(
            graph, strategy=GreedyReductionStrategy(prefer_disconnect_over_allocate=True)
        )
        assert frugal.num_emitters <= greedy.num_emitters


class TestBudgets:
    def test_budget_respected_when_feasible(self):
        graph = lattice_graph(3, 4)
        budget = minimum_emitters(graph) + 2
        sequence = greedy_reduce(
            graph, strategy=GreedyReductionStrategy(emitter_budget=budget)
        )
        assert sequence.num_emitters <= budget + sequence.emitters_over_budget

    def test_overflow_is_reported_not_hidden(self):
        graph = complete_graph(6)
        sequence = greedy_reduce(
            graph, strategy=GreedyReductionStrategy(emitter_budget=1)
        )
        assert sequence.num_emitters >= 1
        assert sequence.emitters_over_budget >= 0

    def test_invalid_processing_order_rejected(self):
        graph = linear_cluster(3)
        with pytest.raises(ValueError):
            greedy_reduce(graph, processing_order=[0, 1])
        with pytest.raises(ValueError):
            greedy_reduce(graph, processing_order=[0, 1, 1])
