"""Tests for the compilation service: HTTP endpoints, micro-batching, loadgen."""

from __future__ import annotations

import threading
import time

import pytest

from repro.pipeline.jobs import BatchJob, GraphSpec
from repro.pipeline.runner import BatchRunner
from repro.service.batcher import MicroBatcher
from repro.service.client import ServiceClient, ServiceError
from repro.service.loadgen import (
    LoadReport,
    percentile,
    run_loadgen,
    workload_payloads,
)
from repro.service.server import CompileService, start_server


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """One cached server shared by the module, plus a client bound to it."""
    cache_dir = tmp_path_factory.mktemp("service-cache")
    server, _ = start_server(cache_dir=str(cache_dir), batch_window_seconds=0.01)
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=120.0)
    client.wait_until_ready()
    yield client
    server.shutdown()
    server.server_close()


class TestHealthz:
    def test_reports_ok_and_counters(self, served):
        body = served.healthz()
        assert body["status"] == "ok"
        assert body["cache"]["enabled"] is True
        assert body["uptime_seconds"] >= 0
        assert "microbatcher" in body


class TestCompileEndpoint:
    def test_end_to_end_compile_over_http(self, served):
        body = served.compile(family="lattice", size=9, seed=3, kind="compile")
        assert body["ok"] is True
        assert body["error"] is None
        record = body["result"]
        assert record["num_qubits"] == 9
        assert record["ours"]["num_emitters"] >= 1
        assert record["ours"]["num_emitter_emitter_cnots"] >= 0

    def test_cache_hit_on_repeated_request(self, served):
        payload = {"family": "tree", "size": 8, "seed": 5, "kind": "compile"}
        first = served.compile_payload(payload)
        second = served.compile_payload(payload)
        assert first["ok"] and second["ok"]
        assert second["cache_hit"] is True
        assert second["result"] == first["result"]

    def test_comparison_kind_carries_baseline(self, served):
        body = served.compile(family="ring", size=6, kind="comparison")
        assert body["ok"] is True
        assert "baseline" in body["result"]

    def test_unknown_family_is_a_400(self, served):
        with pytest.raises(ServiceError) as excinfo:
            served.compile(family="moebius", size=5)
        assert excinfo.value.status == 400

    def test_unknown_job_key_is_a_400(self, served):
        with pytest.raises(ServiceError) as excinfo:
            served.compile_payload({"family": "lattice", "size": 6, "sizee": 1})
        assert excinfo.value.status == 400

    def test_unknown_path_is_a_404(self, served):
        with pytest.raises(ServiceError) as excinfo:
            served.request("POST", "/compyle", {"family": "lattice", "size": 6})
        assert excinfo.value.status == 404

    def test_keep_alive_connection_survives_an_unknown_path_post(self, served):
        import http.client
        import json

        host, port = served.base_url[len("http://"):].rsplit(":", 1)
        connection = http.client.HTTPConnection(host, int(port), timeout=60)
        try:
            body = json.dumps({"family": "lattice", "size": 6}).encode()
            connection.request(
                "POST", "/nope", body, {"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            assert response.status == 404
            response.read()
            # Same (kept-alive) connection: the body above must have been
            # drained, or this request desyncs into a 400.
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"
        finally:
            connection.close()

    def test_concurrent_clients_all_get_their_own_result(self, served):
        sizes = [5, 6, 7, 8, 9, 10]
        results: dict[int, dict] = {}

        def fetch(size: int) -> None:
            results[size] = served.compile(family="linear", size=size, kind="compile")

        threads = [threading.Thread(target=fetch, args=(size,)) for size in sizes]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert set(results) == set(sizes)
        for size, body in results.items():
            assert body["ok"] is True
            assert body["result"]["num_qubits"] == size


class TestBatchEndpoint:
    def test_submit_poll_and_collect(self, served):
        jobs = [
            {"family": "ghz", "size": size, "kind": "compile"} for size in (4, 6, 8)
        ]
        job_id = served.submit_batch(jobs)
        body = served.wait_for_batch(job_id, timeout=120.0)
        assert body["status"] == "done"
        assert body["summary"]["num_jobs"] == 3
        assert body["summary"]["num_errors"] == 0
        assert [o["result"]["num_qubits"] for o in body["outcomes"]] == [4, 6, 8]

    def test_unknown_job_id_is_a_404(self, served):
        with pytest.raises(ServiceError) as excinfo:
            served.status("not-a-job")
        assert excinfo.value.status == 404

    def test_empty_batch_is_a_400(self, served):
        with pytest.raises(ServiceError) as excinfo:
            served.request("POST", "/batch", {"jobs": []})
        assert excinfo.value.status == 400

    def test_full_pending_queue_is_backpressured(self):
        from repro.service.server import ServiceBusyError

        service = CompileService()
        service.max_pending_batches = 0
        try:
            with pytest.raises(ServiceBusyError):
                service.submit_batch(
                    {"jobs": [{"family": "linear", "size": 4, "kind": "compile"}]}
                )
        finally:
            service.close()

    def test_finished_batches_are_evicted_beyond_the_cap(self):
        service = CompileService()
        service.max_tracked_batches = 2
        payload = {"jobs": [{"family": "linear", "size": 4, "kind": "compile"}]}
        try:

            def wait_done(job_id: str) -> None:
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    body = service.status(job_id)
                    if body is None or body["status"] in ("done", "error"):
                        return
                    time.sleep(0.02)
                raise TimeoutError(f"batch {job_id} never finished")

            job_ids = [service.submit_batch(payload)["job_id"] for _ in range(4)]
            for job_id in job_ids:
                wait_done(job_id)
            service.submit_batch(payload)
            # Eviction at submit time keeps only the cap's worth of finished
            # batches (plus the batch just submitted).
            assert len(service._batches) <= 3
        finally:
            service.close()


class TestMicroBatcher:
    def test_concurrent_submissions_share_a_batch(self):
        batcher = MicroBatcher(
            BatchRunner(max_workers=1), window_seconds=0.5, max_batch=16
        )
        try:
            outcomes = {}
            barrier = threading.Barrier(4)

            def submit(size: int) -> None:
                job = BatchJob(graph=GraphSpec("linear", size), kind="compile")
                barrier.wait()
                outcomes[size] = batcher.submit(job)

            threads = [
                threading.Thread(target=submit, args=(size,)) for size in (3, 4, 5, 6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert all(outcome.ok for outcome in outcomes.values())
            # Everyone got the result of their own job, not a neighbour's.
            for size, outcome in outcomes.items():
                assert outcome.result["num_qubits"] == size
            # The generous window must have coalesced at least one batch.
            assert batcher.stats.largest_batch >= 2
            assert batcher.stats.requests == 4
        finally:
            batcher.close()

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(BatchRunner(max_workers=1))
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit(BatchJob(graph=GraphSpec("linear", 3)))

    def test_full_batch_dispatches_without_waiting_for_the_window(self):
        batcher = MicroBatcher(
            BatchRunner(max_workers=1), window_seconds=30.0, max_batch=1
        )
        try:
            outcome = batcher.submit(
                BatchJob(graph=GraphSpec("linear", 3), kind="compile")
            )
            assert outcome.ok
        finally:
            batcher.close()


class TestLoadgen:
    def test_percentile_interpolates(self):
        assert percentile([1.0], 95) == 1.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)
        assert percentile([1.0, 2.0, 3.0, 4.0], 100) == 4.0
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_workload_payloads_cross_product(self):
        payloads = workload_payloads(["lattice", "ghz"], [8, 10], seeds=[1, 2])
        assert len(payloads) == 8
        assert payloads[0] == {
            "family": "lattice",
            "size": 8,
            "seed": 1,
            "kind": "compile",
            "emitter_limit_factor": 1.5,
        }

    def test_report_aggregates(self):
        report = LoadReport(
            requests=4,
            errors=0,
            cache_hits=3,
            wall_seconds=2.0,
            latencies_seconds=[0.1, 0.2, 0.3, 0.4],
        )
        assert report.ok
        assert report.throughput_rps == pytest.approx(2.0)
        assert report.cache_hit_rate == pytest.approx(0.75)
        assert report.latency_ms(50) == pytest.approx(250.0)
        text = report.to_text()
        assert "latency p50" in text and "latency p95" in text

    def test_second_identical_run_is_mostly_cache_hits(self, served):
        payloads = workload_payloads(["linear", "star"], [6, 9], seeds=[21])
        first = run_loadgen(
            served.base_url, payloads, requests=8, concurrency=3, timeout=120.0
        )
        second = run_loadgen(
            served.base_url, payloads, requests=8, concurrency=3, timeout=120.0
        )
        assert first.ok and second.ok
        assert second.cache_hit_rate >= 0.9
        assert second.latency_ms(50) > 0.0
        assert second.latency_ms(95) >= second.latency_ms(50)
