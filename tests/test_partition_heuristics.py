"""Tests for the partition heuristics (greedy growth and Kernighan–Lin)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import lattice_graph, linear_cluster, waxman_graph
from repro.solvers.partition_heuristics import (
    balanced_greedy_partition,
    cut_size,
    kernighan_lin_refinement,
    partition_blocks_valid,
)


class TestGreedyPartition:
    def test_blocks_cover_all_vertices(self):
        graph = lattice_graph(4, 4)
        blocks = balanced_greedy_partition(graph, max_block_size=5)
        assert partition_blocks_valid(graph, blocks, max_block_size=5)

    def test_block_size_respected(self):
        graph = waxman_graph(20, seed=1)
        blocks = balanced_greedy_partition(graph, max_block_size=7)
        assert all(1 <= len(b) <= 7 for b in blocks)

    def test_path_partition_is_cheap(self):
        # A 12-vertex path split into blocks of <= 4 has an optimal cut of 2;
        # the greedy growth stays within a couple of extra cut edges.
        graph = linear_cluster(12)
        blocks = balanced_greedy_partition(graph, max_block_size=4)
        assert cut_size(graph, blocks) <= 4

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            balanced_greedy_partition(linear_cluster(3), max_block_size=0)

    def test_single_block_when_size_allows(self):
        graph = linear_cluster(5)
        blocks = balanced_greedy_partition(graph, max_block_size=10)
        assert len(blocks) == 1


class TestCutSize:
    def test_known_cut(self):
        graph = linear_cluster(6)
        assert cut_size(graph, [[0, 1, 2], [3, 4, 5]]) == 1

    def test_cut_of_single_block_is_zero(self):
        graph = lattice_graph(3, 3)
        assert cut_size(graph, [graph.vertices()]) == 0

    def test_validity_helper(self):
        graph = linear_cluster(4)
        assert not partition_blocks_valid(graph, [[0, 1], [2]], max_block_size=2)
        assert not partition_blocks_valid(graph, [[0, 1], [2, 3, 3]], max_block_size=5)
        assert not partition_blocks_valid(graph, [[0, 1, 2, 3]], max_block_size=3)
        assert partition_blocks_valid(graph, [[0, 1], [2, 3]], max_block_size=2)


class TestKernighanLin:
    def test_refinement_never_increases_the_cut(self):
        graph = waxman_graph(18, seed=4)
        blocks = balanced_greedy_partition(graph, max_block_size=6)
        refined = kernighan_lin_refinement(graph, blocks, max_block_size=6)
        assert cut_size(graph, refined) <= cut_size(graph, blocks)
        assert partition_blocks_valid(graph, refined, max_block_size=6)

    def test_refinement_fixes_a_bad_partition(self):
        # Path 0-1-2-3-4-5 split badly across blocks.
        graph = linear_cluster(6)
        bad_blocks = [[0, 2, 4], [1, 3, 5]]
        refined = kernighan_lin_refinement(graph, bad_blocks, max_block_size=3)
        assert cut_size(graph, refined) < cut_size(graph, bad_blocks)

    def test_rejects_invalid_initial_blocks(self):
        graph = linear_cluster(4)
        with pytest.raises(ValueError):
            kernighan_lin_refinement(graph, [[0, 1]], max_block_size=2)
        with pytest.raises(ValueError):
            kernighan_lin_refinement(graph, [[0, 1], [2, 3]], max_block_size=0)

    @given(st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_property_refinement_preserves_validity(self, seed):
        graph = waxman_graph(12, seed=seed)
        blocks = balanced_greedy_partition(graph, max_block_size=5)
        refined = kernighan_lin_refinement(graph, blocks, max_block_size=5)
        assert partition_blocks_valid(graph, refined, max_block_size=5)
