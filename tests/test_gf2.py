"""Unit and property tests for the GF(2) linear algebra substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.utils.gf2 import (
    gf2_gaussian_elimination,
    gf2_matmul,
    gf2_nullspace,
    gf2_rank,
    gf2_rref,
    gf2_solve,
)

binary_matrices = arrays(
    dtype=np.uint8,
    shape=st.tuples(st.integers(1, 6), st.integers(1, 6)),
    elements=st.integers(0, 1),
)


class TestRank:
    def test_zero_matrix_has_rank_zero(self):
        assert gf2_rank(np.zeros((3, 4), dtype=int)) == 0

    def test_identity_has_full_rank(self):
        assert gf2_rank(np.eye(5, dtype=int)) == 5

    def test_duplicate_rows_do_not_increase_rank(self):
        matrix = np.array([[1, 0, 1], [1, 0, 1], [0, 1, 0]])
        assert gf2_rank(matrix) == 2

    def test_rank_is_mod_two(self):
        # Over the integers this matrix has rank 2; over GF(2) the rows sum to zero.
        matrix = np.array([[1, 1, 0], [0, 1, 1], [1, 0, 1]])
        assert gf2_rank(matrix) == 2

    def test_empty_matrix(self):
        assert gf2_rank(np.zeros((0, 0), dtype=int)) == 0

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            gf2_rank(np.zeros(3, dtype=int))

    @given(binary_matrices)
    @settings(max_examples=60, deadline=None)
    def test_rank_bounded_by_dimensions(self, matrix):
        rank = gf2_rank(matrix)
        assert 0 <= rank <= min(matrix.shape)

    @given(binary_matrices)
    @settings(max_examples=60, deadline=None)
    def test_rank_invariant_under_transpose(self, matrix):
        assert gf2_rank(matrix) == gf2_rank(matrix.T)


class TestEliminationAndRref:
    def test_echelon_pivots_match_rank(self):
        matrix = np.array([[1, 1, 0, 1], [1, 0, 1, 0], [0, 1, 1, 1]])
        echelon, pivots = gf2_gaussian_elimination(matrix)
        assert len(pivots) == gf2_rank(matrix)
        assert echelon.shape == matrix.shape

    def test_rref_is_idempotent(self):
        matrix = np.array([[1, 1, 0], [1, 0, 1], [0, 1, 1]])
        reduced, _ = gf2_rref(matrix)
        reduced_again, _ = gf2_rref(reduced)
        assert np.array_equal(reduced, reduced_again)

    def test_rref_clears_above_pivots(self):
        matrix = np.array([[1, 1, 1], [0, 1, 1]])
        reduced, pivots = gf2_rref(matrix)
        for row_index, col in enumerate(pivots):
            column = reduced[:, col]
            assert column.sum() == 1 and column[row_index] == 1


class TestSolve:
    def test_solves_consistent_system(self):
        matrix = np.array([[1, 1, 0], [0, 1, 1]])
        rhs = np.array([1, 0])
        solution = gf2_solve(matrix, rhs)
        assert solution is not None
        assert np.array_equal((matrix @ solution) % 2, rhs)

    def test_detects_inconsistent_system(self):
        matrix = np.array([[1, 1], [1, 1]])
        rhs = np.array([0, 1])
        assert gf2_solve(matrix, rhs) is None

    def test_rejects_mismatched_rhs(self):
        with pytest.raises(ValueError):
            gf2_solve(np.eye(2, dtype=int), np.array([1, 0, 1]))

    @given(binary_matrices, st.data())
    @settings(max_examples=60, deadline=None)
    def test_solution_of_reachable_rhs_is_valid(self, matrix, data):
        x = data.draw(
            arrays(np.uint8, shape=matrix.shape[1], elements=st.integers(0, 1))
        )
        rhs = (matrix.astype(int) @ x) % 2
        solution = gf2_solve(matrix, rhs)
        assert solution is not None
        assert np.array_equal((matrix.astype(int) @ solution) % 2, rhs)


class TestNullspaceAndMatmul:
    def test_nullspace_vectors_annihilate(self):
        matrix = np.array([[1, 1, 0], [0, 1, 1]])
        basis = gf2_nullspace(matrix)
        for vector in basis:
            assert np.all((matrix @ vector) % 2 == 0)

    def test_nullspace_dimension(self):
        matrix = np.array([[1, 1, 0], [0, 1, 1]])
        basis = gf2_nullspace(matrix)
        assert basis.shape[0] == matrix.shape[1] - gf2_rank(matrix)

    def test_full_rank_square_matrix_has_trivial_nullspace(self):
        assert gf2_nullspace(np.eye(4, dtype=int)).shape == (0, 4)

    def test_matmul_reduces_mod_two(self):
        a = np.array([[1, 1], [0, 1]])
        b = np.array([[1, 0], [1, 1]])
        product = gf2_matmul(a, b)
        assert product.tolist() == [[0, 1], [1, 1]]

    def test_matmul_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            gf2_matmul(np.eye(2, dtype=int), np.eye(3, dtype=int))

    @given(binary_matrices)
    @settings(max_examples=40, deadline=None)
    def test_rank_nullity_theorem(self, matrix):
        assert gf2_rank(matrix) + gf2_nullspace(matrix).shape[0] == matrix.shape[1]
