"""End-to-end tests for the EmitterCompiler (the paper's framework)."""

from __future__ import annotations

import pytest

from repro.core.compiler import EmitterCompiler
from repro.core.config import CompilerConfig
from repro.graphs.generators import (
    complete_graph,
    lattice_graph,
    linear_cluster,
    random_tree,
    repeater_graph_state,
    ring_graph,
    star_graph,
    waxman_graph,
)
from repro.graphs.graph_state import GraphState
from repro.hardware.models import nv_center


def fast(**overrides) -> CompilerConfig:
    config = CompilerConfig(
        max_order_candidates=24, exhaustive_order_threshold=4, verify=True
    )
    return config.with_overrides(**overrides) if overrides else config


class TestCorrectness:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: linear_cluster(8),
            lambda: star_graph(7),
            lambda: ring_graph(8),
            lambda: lattice_graph(3, 4),
            lambda: random_tree(14, seed=2),
            lambda: waxman_graph(12, seed=5),
            lambda: repeater_graph_state(4),
            lambda: complete_graph(6),
        ],
        ids=["linear", "star", "ring", "lattice", "tree", "waxman", "rgs", "complete"],
    )
    def test_compiled_circuits_generate_the_target(self, graph_factory):
        graph = graph_factory()
        result = EmitterCompiler(fast()).compile(graph)
        assert result.verified is True

    def test_lc_corrections_restore_the_original_target(self):
        # The complete graph triggers the LC stage (it is LC-equivalent to a
        # star with far fewer edges); verification is against the *original*.
        graph = complete_graph(7)
        result = EmitterCompiler(fast(max_subgraph_size=4)).compile(graph)
        assert result.verified is True
        assert len(result.partition.lc_operations) >= 1

    def test_verification_failure_raises(self, monkeypatch):
        from repro.core import compiler as compiler_module

        monkeypatch.setattr(
            compiler_module, "verify_circuit_generates", lambda *a, **k: False
        )
        with pytest.raises(RuntimeError, match="verification"):
            EmitterCompiler(fast()).compile(linear_cluster(4))

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            EmitterCompiler(fast()).compile(GraphState())


class TestResultContents:
    @pytest.fixture(scope="class")
    def result(self):
        return EmitterCompiler(fast(verify=False)).compile(lattice_graph(3, 4))

    def test_summary_keys(self, result):
        summary = result.summary()
        for key in (
            "num_emitter_emitter_cnots",
            "duration",
            "num_stem_edges",
            "num_blocks",
            "minimum_emitters",
            "emitter_limit",
            "compile_time_seconds",
        ):
            assert key in summary

    def test_metrics_are_consistent_with_the_circuit(self, result):
        assert result.num_emitter_emitter_cnots == result.circuit.num_emitter_emitter_gates()
        assert result.metrics.num_emissions == result.circuit.num_photons
        assert result.duration == pytest.approx(result.schedule.makespan)

    def test_partition_and_subgraph_results_align(self, result):
        assert len(result.subgraph_results) == result.partition.num_blocks
        assert result.schedule_plan is not None

    def test_emitter_limit_derivation(self, result):
        assert result.emitter_limit >= result.minimum_emitters
        assert result.compile_time_seconds > 0

    def test_single_block_graph_has_no_schedule_plan(self):
        result = EmitterCompiler(fast(verify=False)).compile(linear_cluster(5))
        assert result.schedule_plan is None
        assert result.partition.num_blocks == 1


class TestConfiguration:
    def test_explicit_emitter_limit_is_honoured(self):
        result = EmitterCompiler(fast(emitter_limit=3, verify=False)).compile(
            lattice_graph(3, 4)
        )
        assert result.emitter_limit == 3

    def test_larger_emitter_factor_never_slows_the_circuit(self):
        graph = lattice_graph(4, 4)
        tight = EmitterCompiler(fast(emitter_limit_factor=1.0, verify=False)).compile(graph)
        loose = EmitterCompiler(fast(emitter_limit_factor=2.0, verify=False)).compile(graph)
        assert loose.duration <= tight.duration * 1.25 + 1e-9

    def test_alternative_hardware_model(self):
        result = EmitterCompiler(fast(hardware=nv_center(), verify=False)).compile(
            linear_cluster(6)
        )
        assert result.duration > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CompilerConfig(max_subgraph_size=0)
        with pytest.raises(ValueError):
            CompilerConfig(lc_budget=-1)
        with pytest.raises(ValueError):
            CompilerConfig(emitter_limit_factor=0.5)
        with pytest.raises(ValueError):
            CompilerConfig(scheduling_policy="random")
        with pytest.raises(ValueError):
            CompilerConfig(partition_method="quantum")
        with pytest.raises(ValueError):
            CompilerConfig(emitter_limit=0)

    def test_with_overrides_returns_new_config(self):
        config = CompilerConfig()
        other = config.with_overrides(lc_budget=3)
        assert other.lc_budget == 3
        assert config.lc_budget == 15
