"""Tests for the HA replication layer (protocol, lease, journal fencing).

Covers the wire codec under hypothesis-generated torn/chunked/corrupted
streams, the acceptor/link loopback pair (acks, duplicate-ack tolerance,
stale-epoch fencing at both the acceptor and the replica journal), the
``replication.send`` fault point (severed and corrupted links degrade the
primary instead of wedging it), the epoch-numbered lease lifecycle, and
the journal's epoch stamping, synchronous mirror hook, and the
compaction parent-directory fsync regression.  Everything here is tier-1
fast; the end-to-end failover drill lives in ``tests/test_ha.py`` (slow)
and the CI ``ha-smoke`` step.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.jobs import PendingJournal, StaleEpochError
from repro.service.replication import (
    MAGIC,
    MAX_FRAME_BYTES,
    FrameCorruptError,
    FrameDecoder,
    Lease,
    LeaseLostError,
    ReplicationAcceptor,
    ReplicationFencedError,
    ReplicationLink,
    _HEADER,
    encode_frame,
)
from repro.utils.faults import FaultSchedule, install_schedule, reset_registry


@pytest.fixture(autouse=True)
def _clean_registry(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_SCHEDULE", raising=False)
    reset_registry()
    yield
    reset_registry()


# --------------------------------------------------------------------- #
# Frame codec
# --------------------------------------------------------------------- #

_messages = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.one_of(st.integers(), st.text(max_size=16), st.booleans()),
    max_size=5,
)


class TestFrameCodec:
    @given(message=_messages)
    @settings(max_examples=50, deadline=None)
    def test_round_trip(self, message):
        decoded = FrameDecoder().feed(encode_frame(message))
        assert decoded == [message]

    @given(
        messages=st.lists(_messages, min_size=1, max_size=4),
        chunk=st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=50, deadline=None)
    def test_arbitrary_chunking(self, messages, chunk):
        """Any re-chunking of a frame stream decodes to the same messages."""
        stream = b"".join(encode_frame(m) for m in messages)
        decoder = FrameDecoder()
        decoded = []
        for start in range(0, len(stream), chunk):
            decoded.extend(decoder.feed(stream[start : start + chunk]))
        assert decoded == messages
        assert decoder.pending_bytes == 0

    @given(message=_messages, cut=st.integers(min_value=1, max_value=11))
    @settings(max_examples=50, deadline=None)
    def test_torn_frame_stays_pending(self, message, cut):
        """A truncated frame yields nothing (and no error) until completed."""
        frame = encode_frame(message)
        cut = min(cut, len(frame) - 1)
        decoder = FrameDecoder()
        assert decoder.feed(frame[:cut]) == []
        assert decoder.pending_bytes == cut
        assert decoder.feed(frame[cut:]) == [message]

    def test_checksum_corruption_detected(self):
        frame = bytearray(encode_frame({"type": "append", "seq": 1}))
        frame[-1] ^= 0xFF  # flip a payload byte; the header crc32 now lies
        with pytest.raises(FrameCorruptError, match="checksum"):
            FrameDecoder().feed(bytes(frame))

    def test_bad_magic_detected(self):
        frame = b"XXXX" + encode_frame({"a": 1})[4:]
        with pytest.raises(FrameCorruptError, match="magic"):
            FrameDecoder().feed(frame)

    def test_oversized_length_detected(self):
        header = _HEADER.pack(MAGIC, MAX_FRAME_BYTES + 1, 0)
        with pytest.raises(FrameCorruptError, match="cap"):
            FrameDecoder().feed(header)

    def test_non_json_payload_detected(self):
        payload = b"\xff\xfe not json"
        frame = _HEADER.pack(MAGIC, len(payload), zlib.crc32(payload)) + payload
        with pytest.raises(FrameCorruptError):
            FrameDecoder().feed(frame)


# --------------------------------------------------------------------- #
# Acceptor / link loopback
# --------------------------------------------------------------------- #


def _start_acceptor(apply, epoch=0):
    acceptor = ReplicationAcceptor("127.0.0.1", 0, apply=apply, epoch=epoch)
    acceptor.start()
    return acceptor


class TestAcceptorLink:
    def test_append_is_applied_and_acked(self):
        applied = []
        acceptor = _start_acceptor(applied.append)
        link = ReplicationLink(acceptor.address, epoch=1, timeout=2.0)
        try:
            assert link.send_record({"op": "pending", "request_id": "r1"})
            assert link.heartbeat()
            assert applied == [{"op": "pending", "request_id": "r1"}]
            assert link.records_total == 1
            assert link.failures_total == 0
            assert acceptor.records_total == 1
            assert acceptor.heartbeats_total == 1
            assert acceptor.last_contact_age() < 5.0
        finally:
            link.close()
            acceptor.stop()

    def test_stale_epoch_is_fenced_at_acceptor(self):
        acceptor = _start_acceptor(lambda record: None, epoch=5)
        link = ReplicationLink(acceptor.address, epoch=1, timeout=2.0)
        try:
            with pytest.raises(ReplicationFencedError) as excinfo:
                link.send_record({"op": "pending", "request_id": "r1"})
            assert excinfo.value.fence_epoch == 5
            assert acceptor.fenced_total >= 1
        finally:
            link.close()
            acceptor.stop()

    def test_stale_epoch_is_fenced_at_replica_journal(self, tmp_path):
        """The journal-level fence rejects even if the acceptor's is lower."""
        journal = PendingJournal(tmp_path / "replica.jsonl")
        journal.fence(3)
        acceptor = _start_acceptor(journal.append_replica)
        link = ReplicationLink(acceptor.address, epoch=2, timeout=2.0)
        try:
            with pytest.raises(ReplicationFencedError):
                link.send_record({"op": "pending", "request_id": "r1", "epoch": 2})
            assert acceptor.fenced_total >= 1
            assert PendingJournal.load_unfinished(journal.path) == []
        finally:
            link.close()
            acceptor.stop()
            journal.close()

    def test_duplicated_and_reordered_acks_tolerated(self):
        """Stale acks (lower seq, duplicated) must not complete an exchange."""
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.bind(("127.0.0.1", 0))
        server.listen(1)

        def standby():
            conn, _ = server.accept()
            decoder = FrameDecoder()
            seen = 0
            with conn:
                while seen < 2:  # hello + append
                    messages = decoder.feed(conn.recv(65536))
                    for message in messages:
                        seen += 1
                        seq = message["seq"]
                        # A burst of garbage acks first: duplicated and
                        # reordered (stale seq), then the real one.
                        conn.sendall(encode_frame({"type": "ack", "seq": seq - 1}))
                        conn.sendall(encode_frame({"type": "ack", "seq": seq - 1}))
                        conn.sendall(encode_frame({"type": "ack", "seq": seq}))

        thread = threading.Thread(target=standby, daemon=True)
        thread.start()
        link = ReplicationLink(server.getsockname()[:2], epoch=1, timeout=2.0)
        try:
            assert link.send_record({"op": "pending", "request_id": "r1"})
        finally:
            link.close()
            server.close()
        thread.join(timeout=2.0)

    def test_severed_link_degrades_to_false(self):
        """An injected send failure severs the link; the primary keeps going."""
        applied = []
        acceptor = _start_acceptor(applied.append)
        install_schedule(
            FaultSchedule.from_dict(
                {
                    "rules": [
                        {
                            "point": "replication.send",
                            "action": "raise",
                            "match": "append",
                        }
                    ]
                }
            )
        )
        link = ReplicationLink(acceptor.address, epoch=1, timeout=1.0)
        try:
            assert link.send_record({"op": "pending", "request_id": "r1"}) is False
            assert link.failures_total == 1
            assert applied == []
            # Heartbeats don't match the rule and reconnect fine after the
            # backoff window.
            time.sleep(0.6)
            assert link.heartbeat()
        finally:
            link.close()
            acceptor.stop()

    def test_corrupted_frames_dropped_by_standby(self):
        """On-wire corruption is detected by checksum, never applied."""
        applied = []
        acceptor = _start_acceptor(applied.append)
        install_schedule(
            FaultSchedule.from_dict(
                {
                    "seed": 7,
                    "rules": [
                        {
                            "point": "replication.send",
                            "action": "corrupt",
                            "match": "append",
                        }
                    ],
                }
            )
        )
        link = ReplicationLink(acceptor.address, epoch=1, timeout=0.4)
        try:
            assert link.send_record({"op": "pending", "request_id": "r1"}) is False
            assert applied == []
            deadline = time.monotonic() + 2.0
            while acceptor.corrupt_frames == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert acceptor.corrupt_frames >= 1
        finally:
            link.close()
            acceptor.stop()

    def test_standby_down_returns_false_fast(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_address = probe.getsockname()[:2]
        probe.close()
        link = ReplicationLink(dead_address, epoch=1, timeout=0.5)
        try:
            assert link.send_record({"op": "x"}) is False
            assert not link.connected
        finally:
            link.close()


# --------------------------------------------------------------------- #
# Lease
# --------------------------------------------------------------------- #


class TestLease:
    def test_acquire_renew_bump_lifecycle(self, tmp_path):
        path = tmp_path / "lease.json"
        primary = Lease(path, ttl_seconds=60.0, holder="primary")
        assert primary.acquire() == 1
        primary.renew()  # no-op while we still hold the highest epoch

        standby = Lease(path, ttl_seconds=60.0, holder="standby")
        assert standby.bump() == 2
        with pytest.raises(LeaseLostError):
            primary.renew()
        assert Lease.read(path)["holder"] == "standby"

    def test_expiry(self, tmp_path):
        path = tmp_path / "lease.json"
        lease = Lease(path, ttl_seconds=0.05)
        assert lease.expired()  # missing file
        lease.acquire()
        assert not lease.expired()
        time.sleep(0.1)
        assert lease.expired()
        path.write_text("not json", encoding="utf-8")
        assert lease.expired()

    def test_renew_fault_point(self, tmp_path):
        install_schedule(
            FaultSchedule.from_dict(
                {"rules": [{"point": "lease.renew", "action": "raise"}]}
            )
        )
        lease = Lease(tmp_path / "lease.json")
        lease.acquire()  # acquire does not renew; only renew hits the point
        with pytest.raises(Exception, match="injected"):
            lease.renew()


# --------------------------------------------------------------------- #
# Journal: epoch stamping, mirror hook, fencing, compaction durability
# --------------------------------------------------------------------- #


class TestJournalReplication:
    def test_epoch_stamped_and_mirrored_synchronously(self, tmp_path):
        mirrored = []
        journal = PendingJournal(tmp_path / "journal.jsonl")
        journal.set_epoch(3)
        journal.set_mirror(mirrored.append)
        journal.record_pending("r1", {"family": "lattice"}, "hash1")
        journal.close()

        assert len(mirrored) == 1
        assert mirrored[0]["epoch"] == 3
        lines = [
            json.loads(line)
            for line in (tmp_path / "journal.jsonl").read_text().splitlines()
        ]
        assert lines[0]["epoch"] == 3

    def test_mirror_exception_propagates_to_writer(self, tmp_path):
        """A fenced primary must fail the request, not hide the rejection."""
        journal = PendingJournal(tmp_path / "journal.jsonl")
        journal.set_epoch(1)

        def fenced_mirror(record):
            raise StaleEpochError(record.get("epoch", 0), 2)

        journal.set_mirror(fenced_mirror)
        with pytest.raises(StaleEpochError):
            journal.record_pending("r1", {}, "hash1")
        journal.close()

    def test_append_replica_fence(self, tmp_path):
        journal = PendingJournal(tmp_path / "replica.jsonl")
        journal.append_replica(
            {"op": "pending", "request_id": "old", "content_hash": "h", "epoch": 1}
        )
        journal.fence(2)
        with pytest.raises(StaleEpochError) as excinfo:
            journal.append_replica(
                {"op": "pending", "request_id": "r2", "content_hash": "h", "epoch": 1}
            )
        assert excinfo.value.min_epoch == 2
        journal.append_replica(
            {"op": "pending", "request_id": "r3", "content_hash": "h", "epoch": 2}
        )
        journal.close()
        ids = {e.request_id for e in PendingJournal.load_unfinished(journal.path)}
        assert ids == {"old", "r3"}

    def test_compact_fsyncs_parent_directory(self, tmp_path, monkeypatch):
        """Regression: the rename must be made durable by a parent fsync."""
        synced: list[str] = []

        def spy(path):
            synced.append(str(path))

        monkeypatch.setattr("repro.pipeline.jobs.fsync_dir", spy)
        journal = PendingJournal(tmp_path / "journal.jsonl")
        journal.record_pending("r1", {}, "hash1")
        journal.record_done("r1")
        assert journal.compact() == 0
        journal.close()
        assert str(tmp_path) in synced
