"""Tests for circuit metrics and the photon-loss model."""

from __future__ import annotations

import pytest

from repro.circuit.circuit import Circuit
from repro.circuit.gates import GateName, photon
from repro.circuit.metrics import compute_metrics
from repro.hardware.loss import PhotonLossModel


def sample_circuit() -> Circuit:
    circuit = Circuit(num_emitters=2, num_photons=2)
    circuit.add_cz(0, 1)
    circuit.add_emission(0, 0)
    circuit.add_single(GateName.H, photon(0))
    circuit.add_emission(1, 1)
    circuit.add_measure(0)
    return circuit


class TestMetrics:
    def test_counts(self):
        metrics = compute_metrics(sample_circuit())
        assert metrics.num_emitter_emitter_cnots == 1
        assert metrics.num_emissions == 2
        assert metrics.num_single_qubit_gates == 1
        assert metrics.num_measurements == 1
        assert metrics.num_gates == 5
        assert metrics.num_photons == 2
        assert metrics.num_emitters == 2

    def test_duration_and_exposure_consistency(self):
        metrics = compute_metrics(sample_circuit())
        assert metrics.duration > 0
        assert metrics.total_photon_exposure >= metrics.average_photon_loss_duration

    def test_loss_fields_require_model(self):
        metrics = compute_metrics(sample_circuit())
        assert metrics.photon_loss_probability is None
        with_loss = compute_metrics(sample_circuit(), loss_model=PhotonLossModel(0.01))
        assert 0 <= with_loss.photon_loss_probability < 1
        assert with_loss.photon_survival_probability == pytest.approx(
            1 - with_loss.photon_loss_probability
        )

    def test_as_dict_round_trip(self):
        metrics = compute_metrics(sample_circuit(), loss_model=PhotonLossModel(0.005))
        data = metrics.as_dict()
        assert data["num_emitter_emitter_cnots"] == 1
        assert set(data) >= {
            "duration",
            "average_photon_loss_duration",
            "max_emitters_in_use",
            "photon_loss_probability",
        }


class TestPhotonLossModel:
    def test_zero_rate_never_loses(self):
        model = PhotonLossModel(0.0)
        assert model.survival_probability(100.0) == 1.0
        assert model.state_loss_probability({0: 5.0, 1: 9.0}) == 0.0

    def test_survival_decreases_with_time(self):
        model = PhotonLossModel(0.01)
        assert model.survival_probability(10) < model.survival_probability(1)

    def test_loss_plus_survival_is_one(self):
        model = PhotonLossModel(0.02)
        assert model.loss_probability(7) + model.survival_probability(7) == pytest.approx(1.0)

    def test_state_survival_is_product(self):
        model = PhotonLossModel(0.05)
        exposures = {0: 1.0, 1: 2.0, 2: 3.0}
        expected = 1.0
        for t in exposures.values():
            expected *= model.survival_probability(t)
        assert model.state_survival_probability(exposures) == pytest.approx(expected)

    def test_expected_lost_photons(self):
        model = PhotonLossModel(0.5)
        exposures = {0: 1.0, 1: 1.0}
        assert model.expected_lost_photons(exposures) == pytest.approx(1.0)

    def test_monte_carlo_matches_analytic(self):
        model = PhotonLossModel(0.05)
        exposures = {0: 5.0, 1: 10.0, 2: 2.0}
        analytic = model.state_loss_probability(exposures)
        estimate = model.monte_carlo_state_loss(exposures, num_samples=20000, seed=1)
        assert estimate == pytest.approx(analytic, abs=0.02)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PhotonLossModel(1.0)
        with pytest.raises(ValueError):
            PhotonLossModel(-0.1)
        model = PhotonLossModel(0.01)
        with pytest.raises(ValueError):
            model.survival_probability(-1)
        with pytest.raises(ValueError):
            model.monte_carlo_state_loss({0: 1.0}, num_samples=0)
        with pytest.raises(ValueError):
            model.effective_rate_per_second(0.0)

    def test_effective_rate(self):
        model = PhotonLossModel(0.005)
        rate = model.effective_rate_per_second(1e-9)
        assert rate > 0
        assert PhotonLossModel(0.0).effective_rate_per_second(1e-9) == 0.0
