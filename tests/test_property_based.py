"""Cross-module property-based tests (hypothesis).

These tie the substrates together: random graphs are generated, pushed
through both compilers, and the invariants that must hold for *any* input are
checked — exact state generation, structural circuit constraints, metric
consistency and LC-equivalence bookkeeping.
"""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baseline.naive import BaselineCompiler
from repro.circuit.validation import validate_circuit_constraints, verify_circuit_generates
from repro.core.compiler import EmitterCompiler
from repro.core.config import CompilerConfig
from repro.graphs.entanglement import cut_rank, minimum_emitters
from repro.graphs.graph_state import GraphState
from repro.graphs.local_complementation import apply_lc_sequence

graph_inputs = st.tuples(
    st.integers(min_value=2, max_value=7),   # number of vertices
    st.floats(min_value=0.2, max_value=0.8),  # edge probability
    st.integers(min_value=0, max_value=10_000),  # seed
)


def build_graph(params) -> GraphState:
    n, p, seed = params
    return GraphState.from_networkx(nx.gnp_random_graph(n, p, seed=seed))


def tiny_config() -> CompilerConfig:
    return CompilerConfig(
        max_order_candidates=12, exhaustive_order_threshold=4, lc_budget=4
    )


class TestCompilerProperties:
    @given(graph_inputs)
    @settings(max_examples=30, deadline=None)
    def test_framework_generates_every_random_graph_state(self, params):
        graph = build_graph(params)
        result = EmitterCompiler(tiny_config()).compile(graph)
        validate_circuit_constraints(result.circuit)
        assert verify_circuit_generates(
            result.circuit, graph, photon_of_vertex=result.sequence.photon_of_vertex
        )

    @given(graph_inputs)
    @settings(max_examples=30, deadline=None)
    def test_baseline_generates_every_random_graph_state(self, params):
        graph = build_graph(params)
        result = BaselineCompiler().compile(graph)
        validate_circuit_constraints(result.circuit)
        assert verify_circuit_generates(
            result.circuit, graph, photon_of_vertex=result.sequence.photon_of_vertex
        )

    @given(graph_inputs)
    @settings(max_examples=30, deadline=None)
    def test_every_photon_emitted_exactly_once_and_metrics_consistent(self, params):
        graph = build_graph(params)
        result = EmitterCompiler(tiny_config()).compile(graph)
        assert result.metrics.num_emissions == graph.num_vertices
        assert result.metrics.num_emitter_emitter_cnots >= 0
        assert result.metrics.duration >= result.metrics.average_photon_loss_duration
        assert result.metrics.max_emitters_in_use <= result.circuit.num_emitters


class TestGraphTheoryProperties:
    @given(graph_inputs)
    @settings(max_examples=40, deadline=None)
    def test_lc_sequences_are_invertible(self, params):
        graph = build_graph(params)
        vertices = [v for v in graph.vertices() if graph.degree(v) >= 2]
        sequence = vertices[:3]
        transformed, _ = apply_lc_sequence(graph, sequence)
        restored, _ = apply_lc_sequence(transformed, list(reversed(sequence)))
        assert restored == graph

    @given(graph_inputs)
    @settings(max_examples=40, deadline=None)
    def test_cut_rank_bounds_minimum_emitters(self, params):
        graph = build_graph(params)
        n_e = minimum_emitters(graph)
        assert 1 <= n_e <= graph.num_vertices
        # The bound is the maximum over prefixes, so it dominates the cut rank
        # of the first half of the natural order.
        half = graph.vertices()[: graph.num_vertices // 2]
        assert cut_rank(graph, half) <= n_e

    @given(graph_inputs)
    @settings(max_examples=40, deadline=None)
    def test_lc_preserves_cut_rank_of_single_vertices(self, params):
        # Local complementation preserves all connectivity-function values;
        # check it for single-vertex cuts (vertex degree parity can change,
        # but the GF(2) rank of a single row is just "has any neighbour").
        graph = build_graph(params)
        candidates = [v for v in graph.vertices() if graph.degree(v) >= 2]
        if not candidates:
            return
        vertex = candidates[0]
        transformed, _ = apply_lc_sequence(graph, [vertex])
        for v in graph.vertices():
            assert cut_rank(graph, [v]) == cut_rank(transformed, [v])
