"""Tests for gate durations, ASAP/ALAP scheduling and emitter-usage curves."""

from __future__ import annotations

import pytest

from repro.circuit.circuit import Circuit
from repro.circuit.gates import GateName, emitter, photon
from repro.circuit.timing import GateDurations, schedule_circuit


@pytest.fixture
def durations() -> GateDurations:
    return GateDurations()


def serial_circuit() -> Circuit:
    """Two CZs on the same emitter pair: strictly serial."""
    circuit = Circuit(num_emitters=2, num_photons=1)
    circuit.add_cz(0, 1)
    circuit.add_cz(0, 1)
    circuit.add_emission(0, 0)
    return circuit


def parallel_circuit() -> Circuit:
    """Two CZs on disjoint emitter pairs: fully parallel."""
    circuit = Circuit(num_emitters=4, num_photons=0)
    circuit.add_cz(0, 1)
    circuit.add_cz(2, 3)
    return circuit


class TestDurations:
    def test_defaults_follow_quantum_dot_ratios(self, durations):
        circuit = Circuit(2, 1)
        circuit.add_cz(0, 1)
        circuit.add_emission(0, 0)
        cz, emit = circuit.gates
        assert durations.duration_of(cz) == pytest.approx(1.0)
        assert durations.duration_of(emit) == pytest.approx(0.1)

    def test_photon_single_qubit_gates_are_fast(self, durations):
        circuit = Circuit(1, 1)
        circuit.add_emission(0, 0)
        circuit.add_single(GateName.H, photon(0))
        circuit.add_single(GateName.H, emitter(0))
        _, photon_h, emitter_h = circuit.gates
        assert durations.duration_of(photon_h) < durations.duration_of(emitter_h)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            GateDurations(emission=-0.1)


class TestScheduling:
    def test_serial_makespan(self, durations):
        schedule = schedule_circuit(serial_circuit(), durations, policy="asap")
        assert schedule.makespan == pytest.approx(2.0 + 0.1)

    def test_parallel_makespan(self, durations):
        schedule = schedule_circuit(parallel_circuit(), durations, policy="asap")
        assert schedule.makespan == pytest.approx(1.0)

    def test_alap_has_same_makespan_as_asap(self, durations):
        circuit = serial_circuit()
        asap = schedule_circuit(circuit, durations, policy="asap")
        alap = schedule_circuit(circuit, durations, policy="alap")
        assert alap.makespan == pytest.approx(asap.makespan)

    def test_alap_delays_early_emissions(self, durations):
        # Emission on emitter 1 is independent of the long CZ chain on 0/2;
        # ALAP should push it towards the end of the circuit.
        circuit = Circuit(num_emitters=3, num_photons=1)
        circuit.add_emission(1, 0)
        circuit.add_cz(0, 2)
        circuit.add_cz(0, 2)
        asap = schedule_circuit(circuit, durations, policy="asap")
        alap = schedule_circuit(circuit, durations, policy="alap")
        assert alap.emission_times()[0] > asap.emission_times()[0]
        assert alap.average_photon_loss_duration() < asap.average_photon_loss_duration()

    def test_invalid_policy_rejected(self, durations):
        with pytest.raises(ValueError):
            schedule_circuit(serial_circuit(), durations, policy="greedy")

    def test_gate_order_respected_per_qubit(self, durations):
        schedule = schedule_circuit(serial_circuit(), durations)
        assert schedule.start_times[1] >= schedule.end_times[0] - 1e-12

    def test_empty_circuit(self, durations):
        schedule = schedule_circuit(Circuit(1, 1), durations)
        assert schedule.makespan == 0.0
        assert schedule.average_photon_loss_duration() == 0.0


class TestPhotonExposure:
    def test_exposures_are_time_to_end(self, durations):
        circuit = Circuit(num_emitters=2, num_photons=2)
        circuit.add_emission(0, 0)
        circuit.add_cz(0, 1)
        circuit.add_emission(0, 1)
        schedule = schedule_circuit(circuit, durations, policy="asap")
        exposures = schedule.photon_exposure_times()
        assert exposures[0] > exposures[1]
        assert exposures[1] == pytest.approx(0.0, abs=1e-9)

    def test_average_loss_duration(self, durations):
        circuit = Circuit(num_emitters=2, num_photons=2)
        circuit.add_emission(0, 0)
        circuit.add_cz(0, 1)
        circuit.add_emission(0, 1)
        schedule = schedule_circuit(circuit, durations, policy="asap")
        exposures = schedule.photon_exposure_times()
        expected = sum(exposures.values()) / 2
        assert schedule.average_photon_loss_duration() == pytest.approx(expected)


class TestEmitterUsage:
    def test_usage_counts_active_emitters(self, durations):
        circuit = Circuit(num_emitters=2, num_photons=0)
        circuit.add_cz(0, 1)
        schedule = schedule_circuit(circuit, durations)
        curve = schedule.emitter_usage_curve()
        assert max(count for _, count in curve) == 2
        assert curve[-1][1] == 0

    def test_measurement_frees_the_emitter(self, durations):
        circuit = Circuit(num_emitters=2, num_photons=1)
        circuit.add_cz(0, 1)
        circuit.add_measure(0)
        circuit.add_emission(1, 0)
        schedule = schedule_circuit(circuit, durations)
        intervals = schedule.emitter_active_intervals()
        # Emitter 0 has exactly one closed interval ending at its measurement
        # (the measurement ends at CZ duration + measurement duration).
        assert len(intervals[0]) == 1
        assert intervals[0][0][1] == pytest.approx(
            durations.emitter_emitter_gate + durations.measurement
        )

    def test_peak_usage(self, durations):
        schedule = schedule_circuit(parallel_circuit(), durations)
        assert schedule.max_emitters_in_use() == 4

    def test_empty_circuit_curve(self, durations):
        schedule = schedule_circuit(Circuit(1, 1), durations)
        assert schedule.emitter_usage_curve() == [(0.0, 0)]
