"""Tests for the 0-1 ILP model builder and branch-and-bound solver."""

from __future__ import annotations

import pytest

from repro.solvers.mip import (
    BinaryLinearProgram,
    LinearConstraint,
    MIPStatus,
    solve_binary_program,
)


class TestModelBuilding:
    def test_variables_are_deduplicated(self):
        program = BinaryLinearProgram()
        program.add_variable("x")
        program.add_variable("x", objective_coefficient=2.0)
        assert program.num_variables == 1
        assert program.objective_value({"x": 1}) == pytest.approx(2.0)

    def test_constraint_declares_unknown_variables(self):
        program = BinaryLinearProgram()
        program.add_constraint({"a": 1.0, "b": 1.0}, "<=", 1.0)
        assert set(program.variables) == {"a", "b"}

    def test_invalid_sense_rejected(self):
        with pytest.raises(ValueError):
            LinearConstraint({"x": 1.0}, "<", 1.0)

    def test_empty_constraint_rejected(self):
        with pytest.raises(ValueError):
            LinearConstraint({}, "<=", 1.0)

    def test_feasibility_check(self):
        program = BinaryLinearProgram()
        program.add_constraint({"x": 1.0, "y": 1.0}, "==", 1.0)
        assert program.is_feasible({"x": 1, "y": 0})
        assert not program.is_feasible({"x": 1, "y": 1})


class TestSolver:
    def test_unconstrained_minimisation_picks_negative_coefficients(self):
        program = BinaryLinearProgram()
        program.add_variable("a", objective_coefficient=-2.0)
        program.add_variable("b", objective_coefficient=3.0)
        solution = solve_binary_program(program)
        assert solution.is_optimal
        assert solution.assignment == {"a": 1, "b": 0}
        assert solution.objective == pytest.approx(-2.0)

    def test_cover_constraint(self):
        # Minimise a + b + c subject to covering both "items".
        program = BinaryLinearProgram()
        for name in "abc":
            program.add_variable(name, objective_coefficient=1.0)
        program.add_constraint({"a": 1.0, "b": 1.0}, ">=", 1.0)
        program.add_constraint({"b": 1.0, "c": 1.0}, ">=", 1.0)
        solution = solve_binary_program(program)
        assert solution.is_optimal
        assert solution.objective == pytest.approx(1.0)
        assert solution.assignment["b"] == 1

    def test_equality_constraints(self):
        program = BinaryLinearProgram()
        for name in "xyz":
            program.add_variable(name, objective_coefficient=1.0)
        program.add_constraint({"x": 1.0, "y": 1.0, "z": 1.0}, "==", 2.0)
        solution = solve_binary_program(program)
        assert solution.is_optimal
        assert sum(solution.assignment.values()) == 2

    def test_knapsack_style_problem(self):
        # Maximise value (= minimise negative value) under a weight cap.
        values = {"a": 6, "b": 5, "c": 4}
        weights = {"a": 5, "b": 3, "c": 3}
        program = BinaryLinearProgram()
        for name, value in values.items():
            program.add_variable(name, objective_coefficient=-float(value))
        program.add_constraint({n: float(w) for n, w in weights.items()}, "<=", 6.0)
        solution = solve_binary_program(program)
        assert solution.is_optimal
        # Best choice is b + c (value 9, weight 6).
        assert solution.assignment == {"a": 0, "b": 1, "c": 1}

    def test_infeasible_problem(self):
        program = BinaryLinearProgram()
        program.add_variable("x")
        program.add_constraint({"x": 1.0}, ">=", 2.0)
        solution = solve_binary_program(program)
        assert solution.status is MIPStatus.INFEASIBLE
        assert solution.objective is None

    def test_objective_constant_is_included(self):
        program = BinaryLinearProgram()
        program.add_variable("x", objective_coefficient=1.0)
        program.add_objective_constant(10.0)
        solution = solve_binary_program(program)
        assert solution.objective == pytest.approx(10.0)

    def test_node_budget_returns_feasible_solution(self):
        program = BinaryLinearProgram()
        for i in range(12):
            program.add_variable(f"x{i}", objective_coefficient=1.0)
        program.add_constraint({f"x{i}": 1.0 for i in range(12)}, ">=", 6.0)
        solution = solve_binary_program(program, max_nodes=10)
        assert solution.status in (MIPStatus.FEASIBLE, MIPStatus.OPTIMAL, MIPStatus.INFEASIBLE)

    def test_nodes_explored_is_reported(self):
        program = BinaryLinearProgram()
        program.add_variable("x", objective_coefficient=-1.0)
        solution = solve_binary_program(program)
        assert solution.nodes_explored >= 1
