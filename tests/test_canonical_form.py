"""Tests for the small-graph canonical labeling (repro.graphs.canonical_form)."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.canonical_form import (
    CanonicalizationBudgetError,
    canonical_form,
    canonical_key_digest,
)
from repro.graphs.generators import (
    complete_graph,
    lattice_graph,
    linear_cluster,
    ring_graph,
    star_graph,
)
from repro.graphs.graph_state import GraphState

graph_inputs = st.tuples(
    st.integers(min_value=1, max_value=9),  # number of vertices
    st.floats(min_value=0.0, max_value=1.0),  # edge probability
    st.integers(min_value=0, max_value=10_000),  # graph seed
    st.randoms(use_true_random=False),  # relabeling permutation source
)


def build_graph(n: int, p: float, seed: int) -> GraphState:
    return GraphState.from_networkx(nx.gnp_random_graph(n, p, seed=seed))


def relabeled(graph: GraphState, rng) -> GraphState:
    """A copy of ``graph`` with shuffled labels *and* insertion order."""
    vertices = graph.vertices()
    labels = [f"v{i}" for i in range(len(vertices))]
    rng.shuffle(labels)
    mapping = dict(zip(vertices, labels))
    new_order = list(mapping.values())
    rng.shuffle(new_order)
    copy = GraphState(vertices=new_order)
    for u, v in graph.edges():
        copy.add_edge(mapping[u], mapping[v])
    return copy


class TestInvariance:
    @given(graph_inputs)
    @settings(max_examples=150, deadline=None)
    def test_isomorphic_relabelings_share_one_key(self, params):
        n, p, seed, rng = params
        graph = build_graph(n, p, seed)
        other = relabeled(graph, rng)
        assert canonical_form(graph).key == canonical_form(other).key

    @given(graph_inputs)
    @settings(max_examples=150, deadline=None)
    def test_permutation_is_a_bijection_onto_the_canonical_graph(self, params):
        n, p, seed, rng = params
        graph = relabeled(build_graph(n, p, seed), rng)
        form = canonical_form(graph)
        assert sorted(form.to_canonical.values()) == list(range(n))
        assert set(form.from_canonical) == set(graph.vertices())
        for index, vertex in enumerate(form.from_canonical):
            assert form.to_canonical[vertex] == index
        canonical = form.build_graph()
        assert canonical.num_edges == graph.num_edges
        for u, v in graph.edges():
            assert canonical.has_edge(form.to_canonical[u], form.to_canonical[v])

    def test_structured_families_are_invariant(self):
        import random

        rng = random.Random(7)
        for graph in (
            ring_graph(8),
            complete_graph(7),
            star_graph(9),
            lattice_graph(2, 4),
            linear_cluster(6),
        ):
            key = canonical_form(graph).key
            for _ in range(5):
                assert canonical_form(relabeled(graph, rng)).key == key


class TestDiscrimination:
    def test_non_isomorphic_graphs_get_distinct_keys(self):
        path = GraphState(vertices=[0, 1, 2], edges=[(0, 1), (1, 2)])
        triangle = GraphState(vertices=[0, 1, 2], edges=[(0, 1), (1, 2), (0, 2)])
        assert canonical_form(path).key != canonical_form(triangle).key

    def test_degree_sequence_is_not_enough(self):
        # C6 and two disjoint triangles: both 2-regular on 6 vertices.
        c6 = ring_graph(6)
        triangles = GraphState(
            vertices=range(6),
            edges=[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
        )
        assert canonical_form(c6).key != canonical_form(triangles).key


class TestEdgesAndErrors:
    def test_empty_and_singleton_graphs(self):
        assert canonical_form(GraphState()).key == (0, 0)
        form = canonical_form(GraphState(vertices=["a"]))
        assert form.key == (1, 0)
        assert form.to_canonical == {"a": 0}

    def test_budget_error_is_raised_when_exhausted(self):
        with pytest.raises(CanonicalizationBudgetError):
            canonical_form(ring_graph(5), max_leaves=0)

    def test_key_digest_is_stable_and_hex(self):
        key = canonical_form(ring_graph(6)).key
        digest = canonical_key_digest(key)
        assert digest == canonical_key_digest(key)
        assert len(digest) == 64
        int(digest, 16)  # parses as hex
