"""Tests for the incremental cut-rank engine (`repro.graphs.incremental`)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.entanglement import cut_rank, height_function
from repro.graphs.generators import lattice_graph, linear_cluster, waxman_graph
from repro.graphs.graph_state import GraphState
from repro.graphs.incremental import CutRankEngine, incremental_height_function
from repro.pipeline.jobs import GraphSpec

#: The seven scenario-zoo families the engine must agree with the oracle on.
ZOO_FAMILIES = (
    "regular",
    "smallworld",
    "erdos",
    "percolated",
    "ghz",
    "steane",
    "surface",
)


def zoo_graph(family: str, size: int, seed: int) -> GraphState:
    """Build one zoo graph, honouring the per-family size constraints."""
    if family == "steane":
        size = 7
    elif family == "surface":
        size = 3  # code distance; 13 data/check vertices
    elif family == "regular":
        size = max(size, 4)
    return GraphSpec(family=family, size=size, seed=seed).build()


def dense_oracle_heights(graph: GraphState, ordering) -> list[int]:
    """One from-scratch dense rank per prefix — the bit-exact oracle."""
    heights = [0]
    for i in range(1, len(ordering) + 1):
        heights.append(cut_rank(graph, ordering[:i], backend="dense"))
    return heights


class TestEngineOracleEquivalence:
    @given(
        family=st.sampled_from(ZOO_FAMILIES),
        size=st.integers(4, 12),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_zoo_heights_match_dense_oracle(self, family, size, seed):
        graph = zoo_graph(family, size, seed)
        ordering = graph.vertices()
        np.random.default_rng(seed).shuffle(ordering)
        expected = dense_oracle_heights(graph, ordering)
        assert CutRankEngine(graph).heights(ordering) == expected
        assert incremental_height_function(graph, ordering) == expected
        assert height_function(graph, ordering, backend="packed") == expected

    @given(seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_waxman_heights_match_dense_oracle(self, seed):
        graph = waxman_graph(9, seed=seed)
        ordering = graph.vertices()
        np.random.default_rng(seed).shuffle(ordering)
        assert CutRankEngine(graph).heights(ordering) == dense_oracle_heights(
            graph, ordering
        )

    def test_append_returns_running_heights(self):
        graph = lattice_graph(3, 3)
        engine = CutRankEngine(graph)
        heights = [0]
        for v in graph.vertices():
            heights.append(engine.append(v))
        assert heights == dense_oracle_heights(graph, graph.vertices())
        assert engine.heights_so_far == heights

    def test_packed_cut_rank_matches_dense(self):
        graph = waxman_graph(10, seed=5)
        for size in range(11):
            subset = graph.vertices()[:size]
            assert cut_rank(graph, subset, backend="packed") == cut_rank(
                graph, subset, backend="dense"
            )


class TestCheckpointRollback:
    @given(
        family=st.sampled_from(ZOO_FAMILIES),
        size=st.integers(5, 11),
        seed=st.integers(0, 5_000),
        data=st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_suffix_mutation_reevaluates_correctly(self, family, size, seed, data):
        graph = zoo_graph(family, size, seed)
        n = graph.num_vertices
        ordering = graph.vertices()
        np.random.default_rng(seed).shuffle(ordering)
        engine = CutRankEngine(graph)
        engine.heights(ordering)

        i = data.draw(st.integers(0, n - 1), label="i")
        j = data.draw(st.integers(0, n - 1), label="j")
        mutated = list(ordering)
        mutated[i], mutated[j] = mutated[j], mutated[i]
        assert engine.heights(mutated) == dense_oracle_heights(graph, mutated)
        # Moving back must also be exact (rollback of the rollback).
        assert engine.heights(ordering) == dense_oracle_heights(graph, ordering)

    def test_truncate_restores_prefix_state(self):
        graph = lattice_graph(3, 4)
        ordering = graph.vertices()
        engine = CutRankEngine(graph)
        full = engine.heights(ordering)
        engine.truncate(5)
        assert engine.position == 5
        assert engine.prefix == ordering[:5]
        assert engine.heights_so_far == full[:6]
        # Re-appending the same suffix reproduces the full profile.
        for v in ordering[5:]:
            engine.append(v)
        assert engine.heights_so_far == full

    def test_truncate_then_divergent_suffix(self):
        graph = linear_cluster(8)
        ordering = graph.vertices()
        engine = CutRankEngine(graph)
        engine.heights(ordering)
        engine.truncate(3)
        new_order = ordering[:3] + list(reversed(ordering[3:]))
        for v in new_order[3:]:
            engine.append(v)
        assert engine.heights_so_far == dense_oracle_heights(graph, new_order)

    def test_append_validation(self):
        graph = linear_cluster(4)
        engine = CutRankEngine(graph)
        engine.append(0)
        with pytest.raises(ValueError):
            engine.append(0)
        with pytest.raises(KeyError):
            engine.append(99)

    def test_truncate_validation(self):
        graph = linear_cluster(4)
        engine = CutRankEngine(graph)
        engine.append(0)
        with pytest.raises(ValueError):
            engine.truncate(5)
        with pytest.raises(ValueError):
            engine.truncate(-1)

    def test_checkpoint_free_engine_only_resets(self):
        graph = linear_cluster(5)
        engine = CutRankEngine(graph, checkpoint=False)
        for v in graph.vertices():
            engine.append(v)
        engine.truncate(engine.position)  # no-op is fine
        with pytest.raises(ValueError):
            engine.truncate(2)
        engine.truncate(0)
        assert engine.position == 0
        assert engine.heights(graph.vertices()) == dense_oracle_heights(
            graph, graph.vertices()
        )

    def test_heights_rejects_non_permutations(self):
        graph = linear_cluster(4)
        engine = CutRankEngine(graph)
        with pytest.raises(ValueError):
            engine.heights([0, 1, 2])
        with pytest.raises(ValueError):
            engine.heights([0, 1, 2, 2])


class TestAdjacencyCacheInvalidation:
    def test_cut_rank_tracks_edge_mutations(self):
        graph = lattice_graph(3, 3)
        subset = graph.vertices()[:4]
        before = cut_rank(graph, subset, backend="packed")
        assert before == cut_rank(graph, subset, backend="dense")
        graph.toggle_edge(0, 8)
        assert cut_rank(graph, subset, backend="packed") == cut_rank(
            graph, subset, backend="dense"
        )
        graph.remove_edge(0, 1)
        assert cut_rank(graph, subset, backend="packed") == cut_rank(
            graph, subset, backend="dense"
        )
        graph.add_edge(0, 4)
        assert cut_rank(graph, subset, backend="packed") == cut_rank(
            graph, subset, backend="dense"
        )

    def test_cut_rank_tracks_local_complementation(self):
        graph = waxman_graph(9, seed=2)
        subset = graph.vertices()[:4]
        for vertex in (0, 3, 5):
            graph.local_complement(vertex)
            assert cut_rank(graph, subset, backend="packed") == cut_rank(
                graph, subset, backend="dense"
            )

    def test_cut_rank_tracks_vertex_mutations(self):
        graph = lattice_graph(2, 4)
        graph.remove_vertex(7)
        subset = [0, 1, 2]
        assert cut_rank(graph, subset, backend="packed") == cut_rank(
            graph, subset, backend="dense"
        )
        graph.add_vertex("new")
        graph.add_edge("new", 0)
        assert cut_rank(graph, ["new", 0], backend="packed") == cut_rank(
            graph, ["new", 0], backend="dense"
        )

    def test_packed_adjacency_cache_is_reused_until_mutation(self):
        graph = lattice_graph(3, 3)
        first = graph.packed_adjacency()
        assert graph.packed_adjacency() is first
        graph.toggle_edge(0, 8)
        second = graph.packed_adjacency()
        assert second is not first
        assert graph.packed_adjacency() is second

    def test_engine_snapshots_graph_at_construction(self):
        # An engine built before a mutation keeps answering for the old
        # graph; a new engine sees the new one.
        graph = linear_cluster(6)
        engine = CutRankEngine(graph)
        old = engine.heights(graph.vertices())
        graph.add_edge(0, 5)
        assert CutRankEngine(graph).heights(graph.vertices()) == (
            dense_oracle_heights(graph, graph.vertices())
        )
        assert engine.heights(graph.vertices()) == old
