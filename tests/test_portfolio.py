"""Differential test harness for the anytime portfolio compiler.

The portfolio races cheap strategies first and keeps the verified best
result, so the properties that must hold for *any* instance are sharp:

* the winning circuit must generate the requested graph state on the
  stabilizer oracle, for every zoo family and any budget;
* the quality can never be worse than the natural-order baseline (rung 0 is
  always run);
* growing the budget can only improve (never degrade) the quality on a
  fixed seed, and the same budget must reproduce the identical winning
  circuit across runs and across the packed/dense GF(2) backends.

The service- and pipeline-level tests then pin the wiring: deadline routing
through ``run_job``, admission control, healthz counters, background
refinement, and the loadgen deadline report.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.validation import validate_circuit_constraints, verify_circuit_generates
from repro.core.compiler import EmitterCompiler
from repro.core.config import CompilerConfig
from repro.core.portfolio import (
    BackgroundRefiner,
    InstanceFeatures,
    PortfolioCompiler,
    compile_anytime,
    get_background_refiner,
    plan_portfolio,
    quality_key,
    refinement_stats,
    reset_refinement_stats,
)
from repro.pipeline.jobs import BatchJob, GraphSpec, run_job
from repro.service.loadgen import LoadReport, workload_payloads

#: All seven zoo families with a valid small size each (steane is fixed at 7,
#: surface is parameterised by odd code distance). Random families stay at 8
#: vertices: small enough that the exact-MIP portfolio rung is cheap, large
#: enough that every rung is admitted and the strategies actually diverge.
ZOO = (
    ("regular", 8),
    ("smallworld", 8),
    ("erdos", 8),
    ("percolated", 8),
    ("ghz", 10),
    ("steane", 7),
    ("surface", 3),
)


def small_config(**overrides) -> CompilerConfig:
    base = CompilerConfig(
        max_subgraph_size=7,
        lc_budget=15,
        max_order_candidates=24,
        exhaustive_order_threshold=4,
        seed=7,
    )
    return base.with_overrides(**overrides) if overrides else base


def zoo_graph(family: str, size: int, seed: int):
    return GraphSpec(family=family, size=size, seed=seed).build()


class TestPortfolioProperties:
    """Hypothesis differential harness across the whole scenario zoo."""

    @given(st.sampled_from(ZOO), st.integers(0, 40), st.integers(1, 5))
    @settings(max_examples=12, deadline=None)
    def test_winner_verifies_on_stabilizer_oracle(self, famsize, seed, budget):
        family, size = famsize
        graph = zoo_graph(family, size, seed)
        anytime = compile_anytime(
            graph, config=small_config(), budget=budget, family=family
        )
        result = anytime.result
        validate_circuit_constraints(result.circuit)
        assert verify_circuit_generates(
            result.circuit, graph, photon_of_vertex=result.sequence.photon_of_vertex
        )
        assert anytime.quality == quality_key(result)

    @given(st.sampled_from(ZOO), st.integers(0, 40), st.integers(1, 5))
    @settings(max_examples=12, deadline=None)
    def test_never_worse_than_natural_baseline(self, famsize, seed, budget):
        family, size = famsize
        graph = zoo_graph(family, size, seed)
        config = small_config()
        anytime = compile_anytime(graph, config=config, budget=budget, family=family)
        plan = plan_portfolio(InstanceFeatures.from_graph(graph, family), config)
        natural = EmitterCompiler(plan.rungs[0].config(config)).compile(graph)
        assert anytime.quality <= quality_key(natural)

    @given(st.sampled_from(ZOO), st.integers(0, 40))
    @settings(max_examples=8, deadline=None)
    def test_quality_monotone_in_budget(self, famsize, seed):
        family, size = famsize
        graph = zoo_graph(family, size, seed)
        config = small_config()
        plan = plan_portfolio(InstanceFeatures.from_graph(graph, family), config)
        qualities = [
            compile_anytime(graph, config=config, budget=b, family=family).quality
            for b in range(1, len(plan.rungs) + 1)
        ]
        for tighter, looser in zip(qualities, qualities[1:]):
            assert looser <= tighter, (
                f"{family}: quality degraded with a larger budget: "
                f"{tighter} -> {looser}"
            )


class TestSeededDeterminism:
    def test_identical_winner_across_runs_and_backends(self):
        graph = zoo_graph("smallworld", 12, seed=23)
        runs = []
        for backend in ("packed", "dense", "packed"):
            anytime = compile_anytime(
                graph,
                config=small_config(gf2_backend=backend),
                budget=3,
                family="smallworld",
            )
            runs.append(anytime)
        first = runs[0]
        for other in runs[1:]:
            assert other.winner == first.winner
            assert other.quality == first.quality
            assert other.result.circuit.gates == first.result.circuit.gates
        assert all(o.status == "ran" for o in first.outcomes[:3])

    def test_budget_runs_exactly_the_first_n_rungs(self):
        graph = zoo_graph("regular", 10, seed=5)
        config = small_config()
        plan = plan_portfolio(InstanceFeatures.from_graph(graph, "regular"), config)
        anytime = compile_anytime(graph, config=config, budget=2, family="regular")
        statuses = [o.status for o in anytime.outcomes]
        assert statuses[:2] == ["ran", "ran"]
        assert all(s == "pending" for s in statuses[2:])
        assert [o.spec.name for o in anytime.outcomes] == [
            r.name for r in plan.rungs
        ]


class TestSelector:
    def test_plan_records_features_and_rung_reasons(self):
        graph = zoo_graph("regular", 12, seed=3)
        config = small_config()
        plan = plan_portfolio(InstanceFeatures.from_graph(graph, "regular"), config)
        decisions = {entry["decision"] for entry in plan.decision_trace}
        assert "features" in decisions
        assert "rung" in decisions
        assert plan.rungs[0].name == "natural"
        assert all(rung.reason for rung in plan.rungs)

    def test_anneal_iterations_halved_for_star_like_families(self):
        config = small_config()
        base = InstanceFeatures.from_graph(zoo_graph("regular", 10, 3), "regular")
        star = InstanceFeatures.from_graph(zoo_graph("ghz", 10, 3), "ghz")
        regular_plan = plan_portfolio(base, config)
        ghz_plan = plan_portfolio(star, config)

        def anneal_iters(plan):
            for rung in plan.rungs:
                if rung.name == "anneal":
                    return dict(rung.overrides)["ordering_iterations"]
            return None

        regular_iters = anneal_iters(regular_plan)
        ghz_iters = anneal_iters(ghz_plan)
        assert regular_iters is not None and ghz_iters is not None
        assert ghz_iters < regular_iters

    def test_tiny_graphs_get_a_single_rung(self):
        graph = zoo_graph("erdos", 6, seed=1)
        config = small_config()
        two_vertex = GraphSpec(family="linear", size=2, seed=1).build()
        plan = plan_portfolio(InstanceFeatures.from_graph(two_vertex, "linear"), config)
        assert [r.name for r in plan.rungs][0] == "natural"
        bigger = plan_portfolio(InstanceFeatures.from_graph(graph, "erdos"), config)
        assert len(bigger.rungs) > len(plan.rungs)


class TestRefinement:
    def test_refine_converges_to_the_full_portfolio(self):
        reset_refinement_stats()
        graph = zoo_graph("regular", 10, seed=11)
        config = small_config()
        compiler = PortfolioCompiler(config)
        partial = compiler.compile(graph, budget=1, family="regular")
        full = compiler.compile(graph, family="regular")
        assert partial.pending
        refined = compiler.refine(graph, partial)
        assert refined.quality == full.quality
        assert not refined.pending
        stats = refinement_stats().as_dict()
        assert stats["refinement_rungs"] >= len(partial.pending)
        reset_refinement_stats()

    def test_background_refiner_processes_submitted_jobs(self):
        reset_refinement_stats()
        refiner = BackgroundRefiner()
        job = BatchJob(
            graph=GraphSpec("regular", 10, seed=11),
            kind="compile",
            config_overrides=(("portfolio_budget", 1),),
        )
        record = run_job(job)
        pending = record["portfolio"]["pending_rungs"]
        assert pending
        assert refiner.submit_job(job, pending, record["portfolio"]["quality"])
        assert refiner.drain(timeout=60.0)
        stats = refinement_stats().as_dict()
        assert stats["refinement_submitted"] == 1
        assert stats["refinement_rungs"] >= 1
        refiner.stop()
        reset_refinement_stats()

    def test_process_singleton_is_reused(self):
        assert get_background_refiner() is get_background_refiner()


class TestConfigAndJobValidation:
    def test_config_rejects_bad_deadline_and_budget(self):
        with pytest.raises(ValueError):
            CompilerConfig(deadline_ms=0)
        with pytest.raises(ValueError):
            CompilerConfig(deadline_ms=-5.0)
        with pytest.raises(ValueError):
            CompilerConfig(portfolio_budget=0)
        assert CompilerConfig(deadline_ms=100.0).deadline_ms == 100.0

    def test_job_rejects_bad_priority_and_deadline(self):
        spec = GraphSpec("lattice", 9, seed=3)
        with pytest.raises(ValueError):
            BatchJob(graph=spec, kind="compile", priority="urgent")
        with pytest.raises(ValueError):
            BatchJob(graph=spec, kind="compile", deadline_ms=0)
        with pytest.raises(ValueError):
            BatchJob(graph=spec, kind="ordering", deadline_ms=100.0)

    def test_job_label_and_wire_roundtrip_carry_deadline(self):
        job = BatchJob(
            graph=GraphSpec("lattice", 9, seed=3),
            kind="compile",
            deadline_ms=250.0,
            priority="high",
        )
        assert "~250ms" in job.label
        assert "!high" in job.label
        clone = BatchJob.from_dict(job.as_dict())
        assert clone.deadline_ms == 250.0
        assert clone.priority == "high"
        assert clone.content_hash == job.content_hash

    def test_run_job_routes_portfolio_and_records_trace(self):
        job = BatchJob(
            graph=GraphSpec("regular", 10, seed=11),
            kind="compile",
            deadline_ms=60_000.0,
        )
        record = run_job(job)
        portfolio = record["portfolio"]
        assert portfolio["winner"]
        assert portfolio["deadline_ms"] == 60_000.0
        assert portfolio["deadline_missed"] is False
        assert any(
            entry["decision"] == "features" for entry in portfolio["decision_trace"]
        )
        assert record["ours"]["num_emitter_emitter_cnots"] == (
            portfolio["quality"]["num_emitter_emitter_cnots"]
        )

    def test_run_job_without_deadline_has_no_portfolio_section(self):
        record = run_job(BatchJob(graph=GraphSpec("regular", 10, seed=11), kind="compile"))
        assert "portfolio" not in record


class TestServiceDeadlines:
    def test_compile_with_deadline_updates_healthz_counters(self):
        from repro.service.server import CompileService

        service = CompileService(background_refine=False)
        try:
            body = service.compile(
                {
                    "kind": "compile",
                    "family": "regular",
                    "size": 10,
                    "seed": 11,
                    "deadline_ms": 60_000,
                }
            )
            assert body["ok"]
            portfolio = service.healthz()["portfolio"]
            assert portfolio["deadline_requests"] == 1
            assert portfolio["deadline_misses"] == 0
            assert portfolio["admission_rejections"] == 0
            assert portfolio["ewma_compile_seconds"] > 0.0
        finally:
            service.close()

    def test_admission_control_rejects_overloaded_low_priority(self):
        from repro.service.server import CompileService, ServiceDeadlineError

        service = CompileService(background_refine=False)
        try:
            # Simulate a deep queue: recent compiles took ~2s each and ten
            # are in flight, so a 100 ms deadline cannot be met.
            service._ewma_compile_seconds = 2.0
            service._inflight_compiles = 10
            job = BatchJob(
                graph=GraphSpec("regular", 10, seed=11),
                kind="compile",
                deadline_ms=100.0,
            )
            with pytest.raises(ServiceDeadlineError):
                service._admit_or_reject(job)
            # High priority bypasses the check entirely.
            rush = BatchJob(
                graph=GraphSpec("regular", 10, seed=11),
                kind="compile",
                deadline_ms=100.0,
                priority="high",
            )
            service._admit_or_reject(rush)
            assert service.healthz()["portfolio"]["admission_rejections"] == 1
        finally:
            service.close()

    def test_deadline_rejection_maps_to_http_429(self):
        from repro.service.client import ServiceClient, ServiceError
        from repro.service.server import start_server

        server, _thread = start_server(background_refine=False)
        try:
            host, port = server.server_address[:2]
            client = ServiceClient(f"http://{host}:{port}", timeout=30.0, retries=0)
            server.service._ewma_compile_seconds = 5.0
            server.service._inflight_compiles = 10
            with pytest.raises(ServiceError) as excinfo:
                client.compile_payload(
                    {
                        "kind": "compile",
                        "family": "regular",
                        "size": 10,
                        "seed": 11,
                        "deadline_ms": 50,
                        "priority": "low",
                    }
                )
            assert excinfo.value.status == 429
        finally:
            server.shutdown()
            server.server_close()


class TestLoadgenDeadlines:
    def test_workload_payloads_carry_deadline_and_priority(self):
        payloads = workload_payloads(
            ["regular"], [10], deadline_ms=500.0, priority="low"
        )
        assert all(p["deadline_ms"] == 500.0 for p in payloads)
        assert all(p["priority"] == "low" for p in payloads)
        plain = workload_payloads(["regular"], [10])
        assert all("deadline_ms" not in p and "priority" not in p for p in plain)

    def test_report_miss_rate_and_summary(self):
        report = LoadReport(
            requests=10,
            deadline_requests=8,
            deadline_misses=2,
            admission_rejections=1,
            quality_cnots=[4.0, 6.0],
            quality_durations=[5.0, 7.0],
            latencies_seconds=[0.01],
        )
        assert report.deadline_miss_rate == pytest.approx(0.25)
        summary = report.summary()
        assert summary["deadline_misses"] == 2
        assert summary["deadline_miss_rate"] == pytest.approx(0.25)
        assert summary["admission_rejections"] == 1
        assert summary["mean_emitter_cnots"] == pytest.approx(5.0)
        text = report.to_text()
        assert "deadlines:" in text
        assert "quality:" in text

    def test_empty_report_has_no_deadline_lines(self):
        report = LoadReport(requests=2, latencies_seconds=[0.01, 0.02])
        assert report.deadline_miss_rate == 0.0
        assert "deadline_requests" not in report.summary()
        assert "deadlines:" not in report.to_text()


class TestCliDeadlineGate:
    def test_max_deadline_miss_rate_requires_deadline(self, capsys):
        from repro.cli import EXIT_LOADGEN, main

        code = main(
            ["loadgen", "--self-serve", "--max-deadline-miss-rate", "0.1"]
        )
        assert code == EXIT_LOADGEN
        assert "requires --deadline-ms" in capsys.readouterr().err

    def test_gate_trips_on_missed_deadlines(self, monkeypatch, capsys):
        from repro import cli

        report = LoadReport(
            requests=4,
            deadline_requests=4,
            deadline_misses=3,
            latencies_seconds=[0.01] * 4,
        )
        monkeypatch.setattr(
            "repro.service.loadgen.run_loadgen",
            lambda *args, **kwargs: report,
        )
        monkeypatch.setattr(
            "repro.service.client.ServiceClient.wait_until_ready",
            lambda self, timeout=10.0: None,
        )
        code = cli.main(
            [
                "loadgen",
                "--url",
                "http://127.0.0.1:1",
                "--deadline-ms",
                "100",
                "--max-deadline-miss-rate",
                "0.5",
            ]
        )
        assert code == cli.EXIT_LOADGEN
        assert "deadline-miss rate" in capsys.readouterr().err

    def test_gate_passes_when_misses_are_allowed(self, monkeypatch):
        from repro import cli

        report = LoadReport(
            requests=4,
            deadline_requests=4,
            deadline_misses=1,
            latencies_seconds=[0.01] * 4,
        )
        monkeypatch.setattr(
            "repro.service.loadgen.run_loadgen",
            lambda *args, **kwargs: report,
        )
        monkeypatch.setattr(
            "repro.service.client.ServiceClient.wait_until_ready",
            lambda self, timeout=10.0: None,
        )
        code = cli.main(
            [
                "loadgen",
                "--url",
                "http://127.0.0.1:1",
                "--deadline-ms",
                "100",
                "--max-deadline-miss-rate",
                "0.5",
            ]
        )
        assert code == cli.EXIT_OK
