"""Tests for the deterministic fault-injection layer and the hardenings.

Covers the registry itself (schedule parsing, trigger semantics, action
behaviour, determinism), the corruption-safe result cache with its disk
circuit breaker, the per-compile watchdog, the fleet's poison-job
quarantine (fast, with monkeypatched worker clients), the ``free_port``
bind-race rebind, and the loadgen poison accounting.  Everything here is
tier-1 fast; the end-to-end chaos runs live in ``tests/test_fleet.py``
(slow) and the CI ``chaos-smoke`` step.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.pipeline.cache import DiskCircuitBreaker, ResultCache, result_checksum
from repro.pipeline.jobs import BatchJob, PendingJournal
from repro.service.batcher import MicroBatcher
from repro.service.client import ServiceError
from repro.service.fleet import (
    HEALTHY,
    RESTARTING,
    FleetSupervisor,
    PoisonedJobError,
)
from repro.service.loadgen import run_loadgen
from repro.utils.faults import (
    CRASH_EXIT_CODE,
    FAULT_POINTS,
    FaultInjected,
    FaultPoint,
    FaultRegistry,
    FaultRule,
    FaultSchedule,
    get_registry,
    install_schedule,
    reset_registry,
)


@pytest.fixture(autouse=True)
def _clean_registry(monkeypatch):
    """Isolate every test from ambient schedules and leftover registries."""
    monkeypatch.delenv("REPRO_FAULT_SCHEDULE", raising=False)
    reset_registry()
    yield
    reset_registry()


def _schedule(*rules: dict, seed: int = 0) -> FaultSchedule:
    return FaultSchedule.from_dict({"seed": seed, "rules": list(rules)})


# --------------------------------------------------------------------------- #
# Schedule parsing
# --------------------------------------------------------------------------- #


class TestScheduleParsing:
    def test_round_trip_from_json(self):
        schedule = FaultSchedule.from_json(
            '{"seed": 7, "rules": [{"point": "compile.step", "action": "raise",'
            ' "nth": 3, "match": "#666"}]}'
        )
        assert schedule.seed == 7
        assert schedule.rules[0].point == "compile.step"
        assert schedule.rules[0].nth == 3
        assert schedule.rules[0].match == "#666"

    def test_env_value_inline_json_or_file(self, tmp_path):
        inline = FaultSchedule.from_env_value(
            ' {"rules": [{"point": "journal.fsync", "action": "raise"}]}'
        )
        assert len(inline.rules) == 1
        path = tmp_path / "schedule.json"
        path.write_text('{"rules": []}', encoding="utf-8")
        assert FaultSchedule.from_env_value(str(path)).rules == ()

    def test_unknown_point_and_action_are_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultRule(point="nope", action="raise")
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultRule(point="compile.step", action="explode")

    def test_unknown_rule_and_schedule_keys_are_rejected(self):
        with pytest.raises(ValueError, match="unknown fault rule keys"):
            FaultRule.from_dict({"point": "compile.step", "action": "raise", "when": 1})
        with pytest.raises(ValueError, match="unknown fault schedule keys"):
            FaultSchedule.from_dict({"rules": [], "extra": True})

    def test_at_most_one_trigger(self):
        with pytest.raises(ValueError, match="at most one"):
            FaultRule(point="compile.step", action="raise", nth=1, every=2)

    def test_trigger_bounds(self):
        with pytest.raises(ValueError):
            FaultRule(point="compile.step", action="raise", nth=0)
        with pytest.raises(ValueError):
            FaultRule(point="compile.step", action="raise", probability=1.5)
        with pytest.raises(ValueError):
            FaultRule(point="compile.step", action="sleep", seconds=-1.0)

    def test_unsupported_schema_version(self):
        with pytest.raises(ValueError, match="schema_version"):
            FaultSchedule.from_dict({"schema_version": 99, "rules": []})

    def test_fault_point_rejects_unknown_names(self):
        with pytest.raises(ValueError):
            FaultPoint("not.a.point")
        for name in FAULT_POINTS:
            assert FaultPoint(name).name == name


# --------------------------------------------------------------------------- #
# Trigger semantics and determinism
# --------------------------------------------------------------------------- #


def _fire_pattern(registry: FaultRegistry, hits: int, context: str = "") -> list[bool]:
    pattern = []
    for _ in range(hits):
        try:
            registry.hit("compile.step", context=context)
            pattern.append(False)
        except FaultInjected:
            pattern.append(True)
    return pattern


class TestTriggers:
    def test_nth_fires_exactly_once(self):
        registry = FaultRegistry(
            _schedule({"point": "compile.step", "action": "raise", "nth": 3})
        )
        assert _fire_pattern(registry, 5) == [False, False, True, False, False]

    def test_every_fires_periodically(self):
        registry = FaultRegistry(
            _schedule({"point": "compile.step", "action": "raise", "every": 2})
        )
        assert _fire_pattern(registry, 6) == [False, True, False, True, False, True]

    def test_times_caps_total_fires(self):
        registry = FaultRegistry(
            _schedule({"point": "compile.step", "action": "raise", "times": 2})
        )
        assert _fire_pattern(registry, 4) == [True, True, False, False]

    def test_probability_is_deterministic_across_registries(self):
        schedule = _schedule(
            {"point": "compile.step", "action": "raise", "probability": 0.5},
            seed=42,
        )
        first = _fire_pattern(FaultRegistry(schedule), 40)
        second = _fire_pattern(FaultRegistry(schedule), 40)
        assert first == second
        assert True in first and False in first

    def test_match_filters_on_context_substring(self):
        registry = FaultRegistry(
            _schedule({"point": "compile.step", "action": "raise", "match": "#666"})
        )
        registry.hit("compile.step", context="compile:ghz-4@1.5x#11")
        with pytest.raises(FaultInjected):
            registry.hit("compile.step", context="compile:ghz-4@1.5x#666")

    def test_other_points_are_untouched(self):
        registry = FaultRegistry(
            _schedule({"point": "disk_cache.write", "action": "raise"})
        )
        registry.hit("compile.step")
        assert registry.snapshot()["fired_total"] == 0

    def test_snapshot_counts_fires_by_point(self):
        registry = FaultRegistry(
            _schedule({"point": "compile.step", "action": "sleep", "seconds": 0.0})
        )
        registry.hit("compile.step")
        registry.hit("compile.step")
        snap = registry.snapshot()
        assert snap["active"] is True
        assert snap["fired_total"] == 2
        assert snap["fired_by_point"] == {"compile.step": 2}


# --------------------------------------------------------------------------- #
# Actions
# --------------------------------------------------------------------------- #


class TestActions:
    def test_raise_is_an_oserror(self):
        registry = FaultRegistry(
            _schedule({"point": "journal.fsync", "action": "raise"})
        )
        with pytest.raises(OSError):
            registry.hit("journal.fsync")

    def test_sleep_blocks_for_the_configured_time(self):
        registry = FaultRegistry(
            _schedule({"point": "compile.step", "action": "sleep", "seconds": 0.05})
        )
        started = time.perf_counter()
        registry.hit("compile.step")
        assert time.perf_counter() - started >= 0.04

    def test_corrupt_changes_bytes_deterministically(self):
        schedule = _schedule(
            {"point": "disk_cache.read", "action": "corrupt"}, seed=9
        )
        data = b'{"key": "abc", "result": 1}'
        first = FaultRegistry(schedule).hit("disk_cache.read", data=data)
        second = FaultRegistry(schedule).hit("disk_cache.read", data=data)
        assert first != data
        assert first == second

    def test_corrupt_handles_empty_and_none_data(self):
        registry = FaultRegistry(
            _schedule({"point": "disk_cache.read", "action": "corrupt"})
        )
        assert registry.hit("disk_cache.read", data=b"") not in (b"", None)
        assert registry.hit("disk_cache.read", data=None) is None

    def test_crash_exits_the_process_with_the_marker_code(self):
        schedule = json.dumps(
            {"rules": [{"point": "compile.step", "action": "crash"}]}
        )
        env = os.environ.copy()
        env["REPRO_FAULT_SCHEDULE"] = schedule
        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
        code = (
            "from repro.utils.faults import FaultPoint; "
            "FaultPoint('compile.step').hit(context='x'); "
            "print('survived')"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert proc.returncode == CRASH_EXIT_CODE
        assert "survived" not in proc.stdout


# --------------------------------------------------------------------------- #
# Process-wide registry lifecycle
# --------------------------------------------------------------------------- #


class TestRegistryLifecycle:
    def test_no_schedule_means_hits_are_noops(self):
        assert get_registry() is None
        assert FaultPoint("compile.step").hit(context="x", data=b"ok") == b"ok"

    def test_env_inline_schedule_loads_lazily(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULT_SCHEDULE",
            '{"rules": [{"point": "compile.step", "action": "raise"}]}',
        )
        reset_registry()
        with pytest.raises(FaultInjected):
            FaultPoint("compile.step").hit()

    def test_env_is_read_once_until_reset(self, monkeypatch):
        assert get_registry() is None
        monkeypatch.setenv(
            "REPRO_FAULT_SCHEDULE",
            '{"rules": [{"point": "compile.step", "action": "raise"}]}',
        )
        # Already checked: the env change is invisible until a reset.
        assert get_registry() is None
        reset_registry()
        assert get_registry() is not None

    def test_install_schedule_overrides_and_clears(self):
        install_schedule(
            _schedule({"point": "compile.step", "action": "raise"})
        )
        with pytest.raises(FaultInjected):
            FaultPoint("compile.step").hit()
        install_schedule(None)
        FaultPoint("compile.step").hit()


# --------------------------------------------------------------------------- #
# Corruption-safe result cache + disk circuit breaker
# --------------------------------------------------------------------------- #


class TestDiskCircuitBreaker:
    def test_opens_after_threshold_then_half_open_probe(self):
        breaker = DiskCircuitBreaker(threshold=2, cooldown_seconds=0.05)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        time.sleep(0.06)
        assert breaker.allow()  # the single half-open probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # no second probe while one is in flight
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()
        assert breaker.opens == 1

    def test_half_open_failure_reopens(self):
        breaker = DiskCircuitBreaker(threshold=1, cooldown_seconds=0.05)
        breaker.record_failure()
        time.sleep(0.06)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opens == 2

    def test_snapshot_shape(self):
        snap = DiskCircuitBreaker(threshold=3, cooldown_seconds=1.0).snapshot()
        assert snap["state"] == "closed"
        assert snap["open"] is False
        assert snap["threshold"] == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskCircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            DiskCircuitBreaker(cooldown_seconds=0.0)


class TestResultCacheHardening:
    def test_checksummed_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("k1", {"answer": 42})
        assert cache.get("k1") == {"answer": 42}
        assert cache.hits == 1 and cache.corrupt_entries == 0
        entry = json.loads((tmp_path / "cache" / "k1.json").read_text())
        assert entry["sha256"] == result_checksum({"answer": 42})

    def test_corrupt_entry_is_quarantined_not_served(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("k1", {"answer": 42})
        path = tmp_path / "cache" / "k1.json"
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert cache.get("k1") is None
        assert cache.corrupt_entries == 1
        assert not path.exists()
        assert (tmp_path / "cache" / "corrupt" / "k1.json").exists()
        # The quarantine directory does not count as entries.
        assert len(cache) == 0
        # And the slot is reusable: a fresh write serves again.
        cache.put("k1", {"answer": 43})
        assert cache.get("k1") == {"answer": 43}

    def test_legacy_unchecksummed_entry_is_quarantined(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / "old.json").write_text(json.dumps({"result": {"x": 1}}))
        cache = ResultCache(cache_dir)
        assert cache.get("old") is None
        assert cache.corrupt_entries == 1

    def test_key_mismatch_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("k1", {"answer": 42})
        os.replace(tmp_path / "cache" / "k1.json", tmp_path / "cache" / "k2.json")
        assert cache.get("k2") is None
        assert cache.corrupt_entries == 1

    def test_injected_read_corruption_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("k1", {"answer": 42})
        install_schedule(
            _schedule({"point": "disk_cache.read", "action": "corrupt"})
        )
        assert cache.get("k1") is None
        assert cache.corrupt_entries == 1
        assert (tmp_path / "cache" / "corrupt" / "k1.json").exists()

    def test_write_faults_are_swallowed_and_open_the_breaker(self, tmp_path):
        cache = ResultCache(
            tmp_path / "cache", breaker_threshold=2, breaker_cooldown_seconds=0.05
        )
        install_schedule(
            _schedule({"point": "disk_cache.write", "action": "raise"})
        )
        cache.put("k1", {"answer": 1})  # swallowed, not raised
        cache.put("k2", {"answer": 2})
        assert cache.disk_errors == 2
        assert cache.breaker.state == "open"
        # While open the disk is bypassed entirely: no new errors accrue.
        cache.put("k3", {"answer": 3})
        assert cache.disk_errors == 2
        assert cache.get("k1") is None
        # Heal the disk; the half-open probe closes the breaker again.
        install_schedule(None)
        time.sleep(0.06)
        cache.put("k4", {"answer": 4})
        assert cache.breaker.state == "closed"
        assert cache.get("k4") == {"answer": 4}

    def test_read_io_faults_count_against_the_breaker(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", breaker_threshold=1)
        cache.put("k1", {"answer": 1})
        install_schedule(
            _schedule({"point": "disk_cache.read", "action": "raise"})
        )
        assert cache.get("k1") is None
        assert cache.disk_errors == 1
        assert cache.breaker.state == "open"

    def test_missing_entry_is_a_plain_miss_not_a_disk_error(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("absent") is None
        assert cache.misses == 1 and cache.disk_errors == 0
        assert cache.breaker.state == "closed"


# --------------------------------------------------------------------------- #
# Journal fsync faults
# --------------------------------------------------------------------------- #


class TestJournalFaults:
    def test_fsync_fault_propagates_to_the_writer(self, tmp_path):
        install_schedule(_schedule({"point": "journal.fsync", "action": "raise"}))
        journal = PendingJournal(tmp_path / "journal.jsonl")
        with pytest.raises(FaultInjected):
            journal.record_pending("r1", {"family": "ghz", "size": 4}, "h1")
        install_schedule(None)
        journal.close()

    def test_fsync_fault_can_target_one_op(self, tmp_path):
        install_schedule(
            _schedule(
                {"point": "journal.fsync", "action": "raise", "match": "poisoned"}
            )
        )
        journal = PendingJournal(tmp_path / "journal.jsonl")
        journal.record_pending("r1", {"family": "ghz", "size": 4}, "h1")
        with pytest.raises(FaultInjected):
            journal.record_poisoned("r1", 3, "boom")
        install_schedule(None)
        journal.close()


# --------------------------------------------------------------------------- #
# Per-compile watchdog
# --------------------------------------------------------------------------- #


class _SlowRunner:
    """A stand-in runner whose batches take a fixed wall-clock time."""

    def __init__(self, seconds: float):
        self.seconds = seconds

    def run(self, jobs):
        from repro.pipeline.runner import BatchReport, JobOutcome

        time.sleep(self.seconds)
        return BatchReport(
            outcomes=[JobOutcome(job=job, result={"ok": 1}) for job in jobs]
        )


class TestCompileWatchdog:
    def test_batcher_submit_times_out_with_structured_outcome(self):
        batcher = MicroBatcher(_SlowRunner(0.3), window_seconds=0.0)
        job = BatchJob.from_dict({"family": "ghz", "size": 4, "kind": "compile"})
        try:
            outcome = batcher.submit(job, timeout_seconds=0.05)
            assert outcome.ok is False
            assert outcome.error_kind == "timeout"
            assert "watchdog" in outcome.error
        finally:
            batcher.close()

    def test_submit_without_timeout_blocks_to_completion(self):
        batcher = MicroBatcher(_SlowRunner(0.05), window_seconds=0.0)
        job = BatchJob.from_dict({"family": "ghz", "size": 4, "kind": "compile"})
        try:
            outcome = batcher.submit(job)
            assert outcome.ok is True
        finally:
            batcher.close()

    def test_service_watchdog_answers_504_shaped_timeouts(self):
        from repro.service.server import CompileService

        install_schedule(
            _schedule({"point": "compile.step", "action": "sleep", "seconds": 0.5})
        )
        service = CompileService(
            batch_window_seconds=0.0, compile_timeout_s=0.05
        )
        try:
            body = service.compile({"family": "ghz", "size": 4, "kind": "compile"})
            assert body["ok"] is False
            assert body["error_kind"] == "timeout"
            watchdog = service.healthz()["watchdog"]
            assert watchdog["compile_timeout_s"] == 0.05
            assert watchdog["compile_timeouts"] == 1
        finally:
            install_schedule(None)
            service.close()

    def test_per_request_timeout_field_overrides_the_default(self):
        from repro.service.server import CompileService

        install_schedule(
            _schedule({"point": "compile.step", "action": "sleep", "seconds": 0.5})
        )
        service = CompileService(batch_window_seconds=0.0)  # no default watchdog
        try:
            body = service.compile(
                {
                    "family": "ghz",
                    "size": 4,
                    "kind": "compile",
                    "compile_timeout_s": 0.05,
                }
            )
            assert body["error_kind"] == "timeout"
        finally:
            install_schedule(None)
            service.close()

    def test_compile_timeout_s_is_part_of_the_wire_schema(self):
        with_timeout = BatchJob.from_dict(
            {"family": "ghz", "size": 4, "kind": "compile", "compile_timeout_s": 2.0}
        )
        without = BatchJob.from_dict({"family": "ghz", "size": 4, "kind": "compile"})
        assert with_timeout.content_hash != without.content_hash
        with pytest.raises(ValueError):
            BatchJob.from_dict(
                {"family": "ghz", "size": 4, "kind": "compile",
                 "compile_timeout_s": -1.0}
            )


# --------------------------------------------------------------------------- #
# Fleet poison-job quarantine (fast: no worker processes are spawned)
# --------------------------------------------------------------------------- #


def _bare_supervisor(tmp_path, **kwargs) -> FleetSupervisor:
    """A supervisor whose workers are never spawned (fast tests)."""
    supervisor = FleetSupervisor(
        2, journal_path=str(tmp_path / "journal.jsonl"), **kwargs
    )
    for worker in supervisor.workers:
        worker.state = HEALTHY
    return supervisor


class TestPoisonQuarantineFast:
    def test_connection_crashes_reach_the_threshold(self, tmp_path, monkeypatch):
        supervisor = _bare_supervisor(tmp_path, max_job_attempts=2)
        calls = []
        for worker in supervisor.workers:
            monkeypatch.setattr(
                worker.client,
                "compile_payload",
                lambda payload, headers=None, _w=worker: (_ for _ in ()).throw(
                    ServiceError(0, f"connection refused (worker {_w.index})")
                ),
            )
            calls.append(worker)
        payload = {"family": "ghz", "size": 4, "kind": "compile"}
        with pytest.raises(PoisonedJobError) as excinfo:
            supervisor.dispatch(payload, request_id="toxic")
        err = excinfo.value
        assert err.attempts == 2
        assert err.max_job_attempts == 2
        assert len(err.attempt_history) == 2
        assert {h["worker"] for h in err.attempt_history} == {0, 1}
        assert supervisor.healthz()["poisoned_total"] == 1
        assert supervisor._instruments["repro_fleet_poisoned_total"].value() == 1
        supervisor.journal.close()
        assert PendingJournal.load_unfinished(tmp_path / "journal.jsonl") == []

    def test_prior_attempts_poison_without_any_dispatch(self, tmp_path, monkeypatch):
        supervisor = _bare_supervisor(tmp_path, max_job_attempts=3)
        forwarded = []
        for worker in supervisor.workers:
            monkeypatch.setattr(
                worker.client,
                "compile_payload",
                lambda payload, headers=None: forwarded.append(payload)
                or {"ok": True},
            )
        with pytest.raises(PoisonedJobError) as excinfo:
            supervisor.dispatch(
                {"family": "ghz", "size": 4, "kind": "compile"},
                request_id="burned",
                prior_attempts=3,
            )
        assert excinfo.value.attempts == 3
        assert forwarded == []
        supervisor.journal.close()

    def test_http_errors_do_not_count_as_crashes(self, tmp_path, monkeypatch):
        supervisor = _bare_supervisor(tmp_path, max_job_attempts=1)
        for worker in supervisor.workers:
            monkeypatch.setattr(
                worker.client,
                "compile_payload",
                lambda payload, headers=None: (_ for _ in ()).throw(
                    ServiceError(400, "bad job", body={"error": "bad job"})
                ),
            )
        with pytest.raises(ServiceError) as excinfo:
            supervisor.dispatch(
                {"family": "ghz", "size": 4, "kind": "compile"}, request_id="r1"
            )
        assert excinfo.value.status == 400
        assert supervisor.healthz()["poisoned_total"] == 0
        supervisor.journal.close()

    def test_forward_fault_point_counts_like_a_crash(self, tmp_path, monkeypatch):
        install_schedule(
            _schedule({"point": "dispatch.forward", "action": "raise"})
        )
        supervisor = _bare_supervisor(tmp_path, max_job_attempts=2)
        forwarded = []
        for worker in supervisor.workers:
            monkeypatch.setattr(
                worker.client,
                "compile_payload",
                lambda payload, headers=None: forwarded.append(payload)
                or {"ok": True},
            )
        with pytest.raises(PoisonedJobError):
            supervisor.dispatch(
                {"family": "ghz", "size": 4, "kind": "compile"}, request_id="r1"
            )
        # The injected fault fired before any worker was reached.
        assert forwarded == []
        supervisor.journal.close()

    def test_max_job_attempts_validation(self):
        with pytest.raises(ValueError):
            FleetSupervisor(1, max_job_attempts=0)
        with pytest.raises(ValueError):
            FleetSupervisor(1, compile_timeout_s=0.0)


# --------------------------------------------------------------------------- #
# free_port bind-race rebind
# --------------------------------------------------------------------------- #


class TestPortRebind:
    def test_never_healthy_worker_rebinds_once(self, monkeypatch):
        supervisor = FleetSupervisor(1)
        worker = supervisor.workers[0]
        spawns = []
        monkeypatch.setattr(worker, "spawn", lambda: spawns.append(worker.port))
        worker.state = RESTARTING
        worker.next_restart_at = 0.0

        supervisor._check_worker(worker)
        assert worker.port_rebinds == 1
        assert str(worker.port) in worker.command
        assert str(worker.port) in worker.client.base_url
        assert spawns == [worker.port]

        # A second never-healthy restart keeps the port: the retry is
        # deliberately one-shot (a real spawn failure is not a bind race).
        worker.state = RESTARTING
        worker.next_restart_at = 0.0
        supervisor._check_worker(worker)
        assert worker.port_rebinds == 1
        assert len(spawns) == 2

    def test_healthy_workers_never_rebind(self, monkeypatch):
        supervisor = FleetSupervisor(1)
        worker = supervisor.workers[0]
        worker.ever_healthy = True
        old_port = worker.port
        monkeypatch.setattr(worker, "spawn", lambda: None)
        worker.state = RESTARTING
        worker.next_restart_at = 0.0
        supervisor._check_worker(worker)
        assert worker.port == old_port
        assert worker.port_rebinds == 0


# --------------------------------------------------------------------------- #
# Loadgen poison accounting
# --------------------------------------------------------------------------- #


class TestLoadgenPoisonMode:
    def test_422_poison_answers_count_separately(self, monkeypatch):
        class FakeClient:
            def __init__(self, url, timeout=120.0, retries=0):
                pass

            def compile_payload(self, payload, headers=None):
                if payload.get("seed") == 666:
                    raise ServiceError(
                        422, "quarantined", body={"poisoned": True, "attempts": 3}
                    )
                return {"ok": True, "cache_hit": False, "coalesced": False,
                        "result": {}}

        monkeypatch.setattr("repro.service.loadgen.ServiceClient", FakeClient)
        report = run_loadgen(
            "http://127.0.0.1:1",
            [{"family": "ghz", "size": 4, "seed": 1, "kind": "compile"}],
            requests=5,
            concurrency=2,
            poison_payload={"family": "ghz", "size": 4, "seed": 666,
                            "kind": "compile"},
        )
        assert report.requests == 5
        assert report.poisoned == 1
        assert report.errors == 0
        assert report.ok is True
        assert report.summary()["poisoned"] == 1
        assert "poisoned" in report.to_text()

    def test_plain_422_without_poison_marker_is_an_error(self, monkeypatch):
        class FakeClient:
            def __init__(self, url, timeout=120.0, retries=0):
                pass

            def compile_payload(self, payload, headers=None):
                raise ServiceError(422, "nope", body={"error": "nope"})

        monkeypatch.setattr("repro.service.loadgen.ServiceClient", FakeClient)
        report = run_loadgen(
            "http://127.0.0.1:1",
            [{"family": "ghz", "size": 4, "kind": "compile"}],
            requests=2,
            concurrency=1,
        )
        assert report.errors == 2
        assert report.poisoned == 0


# --------------------------------------------------------------------------- #
# The committed CI chaos schedule stays loadable
# --------------------------------------------------------------------------- #


class TestCommittedChaosSchedule:
    def test_chaos_schedule_parses(self):
        path = Path(__file__).parent / "data" / "chaos_schedule.json"
        schedule = FaultSchedule.from_file(path)
        points = {rule.point for rule in schedule.rules}
        assert "disk_cache.write" in points
        assert "compile.step" in points
        crash = next(r for r in schedule.rules if r.action == "crash")
        assert crash.match == "#666"
