"""Integration tests for the paper's qualitative claims.

These tests exercise the full pipeline (partition + LC, subgraph search,
scheduling, global reduction, verification) on small-to-medium instances of
the paper's three benchmark families and check the *direction* of every
headline result:

* fewer emitter-emitter CNOTs than the GraphiQ-like baseline (Fig. 10 a-c);
* shorter circuits under the 1.5x / 2x emitter settings (Fig. 10 d-f);
* lower photon loss (Fig. 11 a);
* local complementation does not increase — and in aggregate reduces — the
  number of stem edges (Fig. 11 b);
* the compiler scales to the paper's largest sizes within seconds (§III).

Absolute values are hardware- and baseline-implementation-dependent and are
recorded in EXPERIMENTS.md rather than asserted here.
"""

from __future__ import annotations

import time

import pytest

from repro.baseline.naive import BaselineCompiler
from repro.core.compiler import EmitterCompiler
from repro.core.partition import GraphPartitioner
from repro.evaluation.experiments import fast_config, run_comparison
from repro.graphs.generators import benchmark_graph, lattice_graph, waxman_graph


FAMILIES = ("lattice", "tree", "random")
SIZES = {"lattice": (12, 20), "tree": (12, 20), "random": (12, 16)}


def sweep_points(family):
    for offset, size in enumerate(SIZES[family]):
        graph = benchmark_graph(family, size, seed=31 + offset)
        yield run_comparison(graph, config=fast_config())


class TestHeadlineClaims:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_cnot_reduction_on_average(self, family):
        points = list(sweep_points(family))
        average = sum(p.cnot_reduction_percent for p in points) / len(points)
        assert average > 0.0
        # The framework must never be drastically worse on any single point.
        assert all(p.ours_cnots <= p.baseline_cnots * 1.2 + 2 for p in points)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_duration_reduction_on_average(self, family):
        points = list(sweep_points(family))
        average = sum(p.duration_reduction_percent for p in points) / len(points)
        assert average > 0.0

    @pytest.mark.parametrize("family", FAMILIES)
    def test_photon_loss_improvement(self, family):
        points = list(sweep_points(family))
        factors = [p.loss_improvement_factor for p in points]
        assert sum(factors) / len(factors) > 1.0

    def test_lc_reduces_stem_edges_in_aggregate(self):
        total_without = 0
        total_with = 0
        for seed in range(4):
            graph = waxman_graph(16, seed=101 + seed)
            without = GraphPartitioner(fast_config().with_overrides(lc_budget=0)).partition(graph)
            with_lc = GraphPartitioner(fast_config().with_overrides(lc_budget=15)).partition(graph)
            assert with_lc.num_stem_edges <= without.num_stem_edges
            total_without += without.num_stem_edges
            total_with += with_lc.num_stem_edges
        assert total_with <= total_without

    def test_emitter_usage_motivation(self):
        # The framework keeps more of the emitter pool busy than the baseline
        # on the same graph (the Fig. 5 motivation), or finishes sooner.
        graph = lattice_graph(4, 4)
        ours = EmitterCompiler(fast_config()).compile(graph)
        baseline = BaselineCompiler().compile(graph)
        assert ours.duration <= baseline.metrics.duration

    def test_scalability_to_paper_sizes(self):
        # 60-qubit lattice (the paper's largest lattice point) compiles within
        # an interactive budget and still verifies structurally.
        graph = benchmark_graph("lattice", 60, seed=3)
        start = time.perf_counter()
        result = EmitterCompiler(fast_config()).compile(graph)
        elapsed = time.perf_counter() - start
        assert elapsed < 60.0
        assert result.metrics.num_emissions == graph.num_vertices

    def test_both_compilers_verified_end_to_end_on_every_family(self):
        for family in FAMILIES:
            graph = benchmark_graph(family, 12, seed=7)
            point = run_comparison(graph, verify=True)
            assert point.ours.verified is True
            assert point.baseline.verified is True
