"""Tests for the CHP-style stabilizer tableau simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stabilizer.canonical import states_equal
from repro.stabilizer.tableau import StabilizerState


def pauli_bits(num_qubits: int, xs=(), zs=()):
    x = np.zeros(num_qubits, dtype=np.uint8)
    z = np.zeros(num_qubits, dtype=np.uint8)
    for q in xs:
        x[q] = 1
    for q in zs:
        z[q] = 1
    return x, z


class TestConstruction:
    def test_initial_state_is_all_zero(self):
        state = StabilizerState(3)
        for q in range(3):
            assert state.qubit_is_zero(q)

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            StabilizerState(0)

    def test_copy_is_independent(self):
        state = StabilizerState(2)
        clone = state.copy()
        state.h(0)
        assert clone.qubit_is_zero(0)
        assert not states_equal(state, clone)

    def test_qubit_index_validation(self):
        state = StabilizerState(2)
        with pytest.raises(ValueError):
            state.h(2)
        with pytest.raises(ValueError):
            state.cnot(0, 5)
        with pytest.raises(ValueError):
            state.cnot(1, 1)


class TestSingleQubitGates:
    def test_h_creates_plus_state(self):
        state = StabilizerState(1)
        state.h(0)
        x, z = pauli_bits(1, xs=[0])
        assert state.contains_pauli(x, z, sign=0)

    def test_x_flips_to_one(self):
        state = StabilizerState(1)
        state.x_gate(0)
        x, z = pauli_bits(1, zs=[0])
        assert state.contains_pauli(x, z, sign=1)  # -Z stabilises |1>
        assert state.measure_z(0) == 1

    def test_hh_is_identity(self):
        state = StabilizerState(1)
        state.h(0)
        state.h(0)
        assert state.qubit_is_zero(0)

    def test_s_squared_is_z(self):
        via_s = StabilizerState(1)
        via_s.h(0)
        via_s.s(0)
        via_s.s(0)
        via_z = StabilizerState(1)
        via_z.h(0)
        via_z.z_gate(0)
        assert states_equal(via_s, via_z)

    def test_s_then_sdg_is_identity(self):
        state = StabilizerState(1)
        state.h(0)
        reference = state.copy()
        state.s(0)
        state.sdg(0)
        assert states_equal(state, reference)

    def test_sqrt_x_and_inverse(self):
        state = StabilizerState(1)
        state.h(0)
        reference = state.copy()
        state.sqrt_x(0)
        state.sqrt_x_dag(0)
        assert states_equal(state, reference)

    def test_sqrt_x_squared_is_x_up_to_phase(self):
        via_sqrt = StabilizerState(1)
        via_sqrt.sqrt_x(0)
        via_sqrt.sqrt_x(0)
        via_x = StabilizerState(1)
        via_x.x_gate(0)
        assert states_equal(via_sqrt, via_x)

    def test_y_equals_xz_up_to_phase(self):
        via_y = StabilizerState(1)
        via_y.h(0)
        via_y.y_gate(0)
        via_xz = StabilizerState(1)
        via_xz.h(0)
        via_xz.z_gate(0)
        via_xz.x_gate(0)
        assert states_equal(via_y, via_xz)


class TestTwoQubitGates:
    def test_bell_state_stabilizers(self):
        state = StabilizerState(2)
        state.h(0)
        state.cnot(0, 1)
        xx = pauli_bits(2, xs=[0, 1])
        zz = pauli_bits(2, zs=[0, 1])
        assert state.contains_pauli(*xx, sign=0)
        assert state.contains_pauli(*zz, sign=0)
        # Anti-correlated stabilizer -ZZ is *not* in the group.
        assert not state.contains_pauli(*zz, sign=1)

    def test_cz_symmetry(self):
        a = StabilizerState(2)
        a.h(0)
        a.h(1)
        a.cz(0, 1)
        b = StabilizerState(2)
        b.h(0)
        b.h(1)
        b.cz(1, 0)
        assert states_equal(a, b)

    def test_cz_squared_is_identity(self):
        state = StabilizerState(2)
        state.h(0)
        state.h(1)
        reference = state.copy()
        state.cz(0, 1)
        state.cz(0, 1)
        assert states_equal(state, reference)

    def test_ghz_state(self):
        state = StabilizerState(3)
        state.h(0)
        state.cnot(0, 1)
        state.cnot(1, 2)
        xxx = pauli_bits(3, xs=[0, 1, 2])
        assert state.contains_pauli(*xxx, sign=0)
        for pair in [(0, 1), (1, 2), (0, 2)]:
            zz = pauli_bits(3, zs=list(pair))
            assert state.contains_pauli(*zz, sign=0)


class TestMeasurementAndReset:
    def test_deterministic_measurement_of_zero(self):
        state = StabilizerState(1)
        assert state.measure_z(0) == 0

    def test_deterministic_measurement_of_one(self):
        state = StabilizerState(1)
        state.x_gate(0)
        assert state.measure_z(0) == 1

    def test_random_measurement_collapses(self):
        state = StabilizerState(1)
        state.h(0)
        outcome = state.measure_z(0, forced_outcome=1)
        assert outcome == 1
        # A second measurement is now deterministic.
        assert state.measure_z(0) == 1

    def test_forced_outcome_zero(self):
        state = StabilizerState(1)
        state.h(0)
        assert state.measure_z(0, forced_outcome=0) == 0
        assert state.qubit_is_zero(0)

    def test_bell_measurement_correlation(self):
        for forced in (0, 1):
            state = StabilizerState(2)
            state.h(0)
            state.cnot(0, 1)
            first = state.measure_z(0, forced_outcome=forced)
            second = state.measure_z(1)
            assert first == second == forced

    def test_reset_returns_to_zero(self):
        state = StabilizerState(2)
        state.h(0)
        state.cnot(0, 1)
        state.reset(0)
        assert state.qubit_is_zero(0)

    def test_measurement_statistics_on_plus_state(self):
        outcomes = set()
        for seed in range(20):
            state = StabilizerState(1, seed=seed)
            state.h(0)
            outcomes.add(state.measure_z(0))
        assert outcomes == {0, 1}


class TestGraphStates:
    def test_graph_state_stabilizers(self):
        # Path graph 0-1-2: stabilizers X0 Z1, Z0 X1 Z2, Z1 X2.
        state = StabilizerState.from_graph_edges(3, [(0, 1), (1, 2)])
        assert state.contains_pauli(*pauli_bits(3, xs=[0], zs=[1]), sign=0)
        assert state.contains_pauli(*pauli_bits(3, xs=[1], zs=[0, 2]), sign=0)
        assert state.contains_pauli(*pauli_bits(3, xs=[2], zs=[1]), sign=0)

    def test_contains_pauli_rejects_non_members(self):
        state = StabilizerState.from_graph_edges(2, [(0, 1)])
        assert not state.contains_pauli(*pauli_bits(2, xs=[0]), sign=0)

    def test_contains_pauli_validates_shape(self):
        state = StabilizerState(2)
        with pytest.raises(ValueError):
            state.contains_pauli(np.zeros(3, dtype=np.uint8), np.zeros(2, dtype=np.uint8))
