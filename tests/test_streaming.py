"""Tests for the streaming partition-compile pipeline.

The contract under test: ``compile_stream(spec)`` emits the exact same
operation sequence as ``greedy_reduce(spec.materialize())`` — same rule
engine, same processing order, same emitter count — while holding at most
two regions plus the emitter pool in memory.  Every family/chunking
combination must be bit-identical, the window statistics must respect the
declared capacity, and the ``BatchJob`` wire format must round-trip the
new ``stream``/``stream_chunk`` fields.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strategies import greedy_reduce
from repro.core.streaming import (
    StreamingReductionState,
    _window_capacity,
    compile_stream,
)
from repro.graphs.lazy import (
    GHZStreamSpec,
    LatticeStreamSpec,
    PercolatedLatticeStreamSpec,
    STREAM_FAMILIES,
    make_stream_spec,
)
from repro.pipeline.jobs import (
    BatchJob,
    GraphSpec,
    JOB_SCHEMA_VERSION,
    run_job,
)


def assert_stream_matches_materialized(spec):
    """The streamed ops/emitters equal the whole-graph greedy reduction."""
    streamed = compile_stream(spec, collect_operations=True)
    reference = greedy_reduce(spec.materialize())
    assert streamed.operations == reference.operations
    assert streamed.num_emitters == max(reference.num_emitters, 1)
    return streamed, reference


class TestSpecs:
    def test_stream_families_frozen(self):
        assert STREAM_FAMILIES == ("lattice", "percolated", "ghz")

    def test_make_stream_spec_rejects_unknown_family(self):
        with pytest.raises(ValueError):
            make_stream_spec("tree", 100)

    def test_lattice_regions_partition_vertices(self):
        spec = LatticeStreamSpec(7, 5, chunk_rows=3)
        seen = []
        for j in range(spec.num_regions):
            seen.extend(spec.region(j))
        assert sorted(seen) == sorted(spec.materialize().vertices())
        assert len(seen) == spec.num_vertices == 35

    def test_ghz_hub_is_pinned(self):
        spec = GHZStreamSpec(50, chunk=16)
        assert tuple(spec.pinned()) == (0,)
        for j in range(spec.num_regions):
            assert 0 not in list(spec.region(j))

    def test_window_capacity_bounded_by_two_regions(self):
        spec = LatticeStreamSpec(100, 6, chunk_rows=2)
        capacity = _window_capacity(spec)
        # Two chunk_rows=2 regions of a 6-wide lattice, no pinned hubs.
        assert capacity == 24
        assert capacity < spec.num_vertices


class TestBitIdentity:
    @pytest.mark.parametrize(
        "spec",
        [
            LatticeStreamSpec(6, 6, chunk_rows=1),
            LatticeStreamSpec(6, 6, chunk_rows=2),
            LatticeStreamSpec(7, 4, chunk_rows=3),
            LatticeStreamSpec(3, 5, chunk_rows=10),  # single region
            PercolatedLatticeStreamSpec(6, 6, survival=0.8, seed=3, chunk_rows=2),
            PercolatedLatticeStreamSpec(5, 7, survival=0.6, seed=9, chunk_rows=1),
            GHZStreamSpec(40, chunk=8),
            GHZStreamSpec(17, chunk=5),
        ],
        ids=lambda s: f"{s.family}-{s.num_vertices}",
    )
    def test_streamed_ops_equal_materialized(self, spec):
        assert_stream_matches_materialized(spec)

    @pytest.mark.parametrize("family", STREAM_FAMILIES)
    def test_make_stream_spec_builds_verifiable_specs(self, family):
        spec = make_stream_spec(family, 60, seed=5, chunk=2 if family != "ghz" else 16)
        streamed, _ = assert_stream_matches_materialized(spec)
        assert streamed.family == family

    @given(
        rows=st.integers(2, 6),
        cols=st.integers(2, 6),
        chunk=st.integers(1, 4),
    )
    @settings(max_examples=25, deadline=None)
    def test_lattice_identity_any_chunking(self, rows, cols, chunk):
        assert_stream_matches_materialized(LatticeStreamSpec(rows, cols, chunk))

    @given(
        rows=st.integers(3, 6),
        cols=st.integers(3, 6),
        seed=st.integers(0, 50),
        chunk=st.integers(1, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_percolated_identity_any_seed(self, rows, cols, seed, chunk):
        spec = PercolatedLatticeStreamSpec(
            rows, cols, survival=0.75, seed=seed, chunk_rows=chunk
        )
        assert_stream_matches_materialized(spec)

    def test_tags_propagate_to_every_op(self):
        spec = LatticeStreamSpec(4, 4, chunk_rows=1)
        streamed = compile_stream(spec, tag="windowed", collect_operations=True)
        assert streamed.operations
        assert all(op.tag == "windowed" for op in streamed.operations)


class TestWindowStatistics:
    def test_peak_respects_capacity(self):
        spec = LatticeStreamSpec(30, 5, chunk_rows=1)
        result = compile_stream(spec)
        assert result.peak_window_photons <= result.window_capacity
        assert result.window_capacity == _window_capacity(spec)
        assert result.window_capacity < spec.num_vertices

    def test_edge_count_matches_materialized_graph(self):
        spec = PercolatedLatticeStreamSpec(8, 8, survival=0.7, seed=13)
        result = compile_stream(spec)
        assert result.num_edges == spec.materialize().num_edges

    def test_operations_not_collected_by_default(self):
        result = compile_stream(LatticeStreamSpec(4, 4))
        assert result.operations is None
        assert result.num_operations == sum(result.op_counts.values())
        assert result.num_operations >= result.num_emissions > 0

    def test_finish_refuses_resident_photons(self):
        state = StreamingReductionState(window_capacity=4)
        state.admit_photon(0)
        with pytest.raises(RuntimeError, match="photons remain"):
            state.finish()

    def test_window_overflow_raises(self):
        state = StreamingReductionState(window_capacity=2)
        state.admit_photon(0)
        state.admit_photon(1)
        with pytest.raises(RuntimeError):
            state.admit_photon(2)


class TestStreamJobs:
    def test_schema_version_bumped_for_stream_fields(self):
        assert JOB_SCHEMA_VERSION == 7

    def test_round_trip_and_label(self):
        job = BatchJob(
            graph=GraphSpec("percolated", 64, seed=3),
            kind="compile",
            stream=True,
            stream_chunk=2,
        )
        assert "&stream" in job.label
        rebuilt = BatchJob.from_dict(job.as_dict())
        assert rebuilt == job
        assert rebuilt.content_hash == job.content_hash

    def test_stream_flag_changes_content_hash(self):
        plain = BatchJob(graph=GraphSpec("lattice", 64), kind="compile")
        streamed = plain.with_overrides(stream=True)
        assert plain.content_hash != streamed.content_hash

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(graph=GraphSpec("tree", 64), stream=True), "streamable family"),
            (
                dict(graph=GraphSpec("lattice", 64), kind="comparison", stream=True),
                "only applies to 'compile'",
            ),
            (dict(graph=GraphSpec("lattice", 64), stream_chunk=2), "requires stream"),
            (
                dict(graph=GraphSpec("lattice", 64), stream=True, stream_chunk=0),
                "stream_chunk must be",
            ),
            (
                dict(graph=GraphSpec("ghz", 64), stream=True, deadline_ms=100.0),
                "do not support deadline_ms",
            ),
        ],
    )
    def test_validation_rejections(self, kwargs, match):
        kwargs.setdefault("kind", "compile")
        with pytest.raises(ValueError, match=match):
            BatchJob(**kwargs)

    def test_run_job_streams_and_matches_materialized(self):
        job = BatchJob(
            graph=GraphSpec("lattice", 64, seed=7),
            kind="compile",
            stream=True,
            stream_chunk=2,
        )
        record = run_job(job)
        assert record["label"] == job.label
        assert record["num_qubits"] == 64
        stream = record["stream"]
        assert stream["peak_window_photons"] <= stream["window_capacity"]
        # Emitter count equals the whole-graph compile of the same spec.
        spec = make_stream_spec("lattice", 64, seed=7, chunk=2)
        reference = greedy_reduce(spec.materialize())
        assert stream["num_emitters"] == max(reference.num_emitters, 1)
        assert record["num_edges"] == spec.materialize().num_edges

    def test_run_job_ghz_uses_family_default_chunk(self):
        job = BatchJob(graph=GraphSpec("ghz", 200), kind="compile", stream=True)
        record = run_job(job)
        assert record["stream"]["num_emitters"] == 1
        assert record["num_edges"] == 199
