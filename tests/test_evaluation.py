"""Tests for the evaluation harness (comparison points, figures, reporting)."""

from __future__ import annotations

import pytest

from repro.evaluation.experiments import fast_config, run_comparison
from repro.evaluation.figures import (
    figure5_emitter_usage,
    figure10_cnot,
    figure10_duration,
    figure11_lc_edges,
    figure11_loss,
    runtime_scaling,
)
from repro.evaluation.report import FigureData, render_table
from repro.graphs.generators import lattice_graph


class TestComparisonPoint:
    @pytest.fixture(scope="class")
    def point(self):
        return run_comparison(lattice_graph(3, 3), config=fast_config())

    def test_metric_accessors(self, point):
        assert point.num_qubits == 9
        assert point.baseline_cnots >= 0
        assert point.ours_cnots >= 0
        assert point.baseline_duration > 0
        assert point.ours_duration > 0
        assert 0 <= point.baseline_loss < 1
        assert 0 <= point.ours_loss < 1

    def test_reduction_formulas(self, point):
        expected = 100.0 * (point.baseline_cnots - point.ours_cnots) / point.baseline_cnots
        assert point.cnot_reduction_percent == pytest.approx(expected)
        assert point.loss_improvement_factor == pytest.approx(
            point.baseline_loss / point.ours_loss
        )

    def test_verified_comparison(self):
        point = run_comparison(lattice_graph(2, 3), verify=True)
        assert point.ours.verified is True
        assert point.baseline.verified is True


class TestFigureData:
    def test_row_length_is_validated(self):
        data = FigureData(name="x", description="d", columns=["a", "b"])
        with pytest.raises(ValueError):
            data.add_row([1])
        data.add_row([1, 2])
        assert data.column("b") == [2]
        with pytest.raises(KeyError):
            data.column("c")

    def test_render_table_alignment(self):
        text = render_table(["col", "value"], [["x", 1.5], ["long-name", 2]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "col" in lines[0] and "---" in lines[1]

    def test_to_text_includes_summary(self):
        data = FigureData(name="f", description="d", columns=["a"])
        data.add_row([1])
        data.summary = {"metric": 1.234}
        text = data.to_text()
        assert "== f ==" in text
        assert "metric: 1.234" in text


class TestFigureSweeps:
    def test_figure10_cnot_small_sweep(self):
        data = figure10_cnot("lattice", sizes=(9, 12))
        assert data.columns == [
            "num_qubits",
            "baseline_cnot",
            "ours_cnot",
            "reduction_percent",
        ]
        assert len(data.rows) == 2
        assert "average_reduction_percent" in data.summary

    def test_figure10_duration_small_sweep(self):
        data = figure10_duration("tree", sizes=(10,), factors=(1.5, 2.0))
        assert len(data.rows) == 1
        assert "average_reduction_percent_1.5x" in data.summary
        assert "average_reduction_percent_2.0x" in data.summary

    def test_figure11_loss_small_sweep(self):
        data = figure11_loss(families=("lattice",), sizes={"lattice": (9,)})
        assert len(data.rows) == 1
        assert data.rows[0][0] == "lattice"
        assert "average_improvement_lattice" in data.summary

    def test_figure11_lc_edges_small_sweep(self):
        data = figure11_lc_edges(sizes=(10, 14))
        assert len(data.rows) == 2
        for row in data.rows:
            assert row[2] <= row[1]

    def test_figure5_usage(self):
        data = figure5_emitter_usage(lattice_graph(3, 3))
        assert set(data.column("compiler")) == {"baseline", "ours"}
        assert data.summary["ours_peak_emitters"] >= 1

    def test_runtime_scaling(self):
        data = runtime_scaling(sizes=(8, 12))
        assert len(data.rows) == 2
        assert data.summary["max_ours_seconds"] > 0
