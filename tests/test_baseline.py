"""Tests for the GraphiQ-like baseline compiler."""

from __future__ import annotations

import pytest

from repro.baseline.naive import BaselineCompiler
from repro.circuit.validation import verify_circuit_generates
from repro.graphs.generators import lattice_graph, linear_cluster, random_tree, waxman_graph
from repro.graphs.graph_state import GraphState
from repro.hardware.models import nv_center


class TestBaseline:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: linear_cluster(8),
            lambda: lattice_graph(3, 3),
            lambda: random_tree(12, seed=4),
            lambda: waxman_graph(10, seed=6),
        ],
        ids=["linear", "lattice", "tree", "waxman"],
    )
    def test_baseline_circuits_verify(self, graph_factory):
        graph = graph_factory()
        result = BaselineCompiler(verify=True).compile(graph)
        assert result.verified is True
        assert verify_circuit_generates(
            result.circuit, graph, photon_of_vertex=result.sequence.photon_of_vertex
        )

    def test_result_fields(self):
        graph = lattice_graph(3, 3)
        result = BaselineCompiler().compile(graph)
        assert result.num_emitter_emitter_cnots == result.metrics.num_emitter_emitter_cnots
        assert result.duration == pytest.approx(result.schedule.makespan)
        assert result.minimum_emitters >= 1
        assert result.schedule.policy == "asap"
        assert result.verified is None

    def test_photon_emission_order_is_natural(self):
        graph = linear_cluster(6)
        result = BaselineCompiler().compile(graph)
        assert result.sequence.emission_order() == list(range(6))

    def test_emitter_limit_is_passed_through(self):
        graph = waxman_graph(12, seed=2)
        limited = BaselineCompiler(emitter_limit=3).compile(graph)
        assert limited.sequence.num_emitters <= 3 + limited.sequence.emitters_over_budget

    def test_twin_rule_can_be_disabled(self):
        graph = lattice_graph(3, 3)
        with_twin = BaselineCompiler(use_twin_rule=True).compile(graph)
        without_twin = BaselineCompiler(use_twin_rule=False, verify=True).compile(graph)
        assert without_twin.verified is True
        assert (
            without_twin.metrics.num_emitter_emitter_cnots
            >= with_twin.metrics.num_emitter_emitter_cnots
        )

    def test_alternative_hardware(self):
        result = BaselineCompiler(hardware=nv_center()).compile(linear_cluster(5))
        assert result.metrics.duration > 0
        assert BaselineCompiler(hardware=nv_center()).durations().emission == pytest.approx(0.05)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            BaselineCompiler().compile(GraphState())
