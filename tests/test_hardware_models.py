"""Tests for the hardware platform presets."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.metrics import compute_metrics
from repro.circuit.timing import GateDurations
from repro.core.compiler import EmitterCompiler
from repro.core.config import CompilerConfig
from repro.core.plan_scoring import score_sequence
from repro.graphs.graph_state import GraphState
from repro.hardware.loss import PhotonLossModel
from repro.hardware.models import (
    HardwareModel,
    get_hardware_model,
    nv_center,
    quantum_dot,
    rydberg_atom,
    siv_center,
)


class TestPresets:
    @pytest.mark.parametrize(
        "factory", [quantum_dot, nv_center, siv_center, rydberg_atom]
    )
    def test_presets_are_valid(self, factory):
        model = factory()
        assert isinstance(model, HardwareModel)
        assert model.durations.emitter_emitter_gate == pytest.approx(1.0)
        assert 0 < model.durations.emission < 1
        assert 0 <= model.photon_loss_per_tau < 1

    def test_quantum_dot_matches_paper_numbers(self):
        model = quantum_dot()
        assert model.tau_seconds == pytest.approx(1e-9)
        assert model.durations.emission == pytest.approx(0.1)
        assert model.photon_loss_per_tau == pytest.approx(0.005)
        assert model.emitter_emitter_fidelity >= 0.99

    def test_quantum_dot_exchange_strength_scales_tau(self):
        fast = quantum_dot(exchange_strength_ghz=2.0)
        assert fast.tau_seconds == pytest.approx(0.5e-9)
        with pytest.raises(ValueError):
            quantum_dot(exchange_strength_ghz=0)

    def test_loss_model_construction(self):
        model = quantum_dot()
        loss = model.loss_model()
        assert isinstance(loss, PhotonLossModel)
        assert loss.loss_per_tau == model.photon_loss_per_tau

    def test_fidelity_estimate(self):
        model = quantum_dot()
        assert model.circuit_fidelity_estimate(0) == pytest.approx(1.0)
        assert model.circuit_fidelity_estimate(10) == pytest.approx(0.99 ** 10)
        with pytest.raises(ValueError):
            model.circuit_fidelity_estimate(-1)


class TestLookup:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("quantum_dot", "quantum_dot"),
            ("QD", "quantum_dot"),
            ("nv", "nv_center"),
            ("SiV", "siv_center"),
            ("rydberg", "rydberg_atom"),
        ],
    )
    def test_lookup_by_name(self, name, expected):
        assert get_hardware_model(name).name == expected

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown hardware model"):
            get_hardware_model("trapped_ion")


class TestValidation:
    def test_invalid_loss_rate(self):
        with pytest.raises(ValueError):
            HardwareModel(
                name="bad",
                durations=GateDurations(),
                tau_seconds=1e-9,
                photon_loss_per_tau=1.5,
                emitter_coherence_time=1.0,
                emitter_emitter_fidelity=0.99,
            )

    def test_invalid_fidelity(self):
        with pytest.raises(ValueError):
            HardwareModel(
                name="bad",
                durations=GateDurations(),
                tau_seconds=1e-9,
                photon_loss_per_tau=0.01,
                emitter_coherence_time=1.0,
                emitter_emitter_fidelity=1.2,
            )

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            HardwareModel(
                name="bad",
                durations=GateDurations(),
                tau_seconds=0.0,
                photon_loss_per_tau=0.01,
                emitter_coherence_time=1.0,
                emitter_emitter_fidelity=0.9,
            )


# --------------------------------------------------------------------------- #
# Plan scoring vs materialized-circuit metrics under varied hardware timings
# --------------------------------------------------------------------------- #

duration_inputs = st.tuples(
    st.floats(min_value=0.2, max_value=3.0),    # emitter_emitter_gate
    st.floats(min_value=0.01, max_value=0.5),   # emission
    st.floats(min_value=0.0, max_value=0.2),    # emitter_single_qubit
    st.floats(min_value=0.0, max_value=0.05),   # photon_single_qubit
    st.floats(min_value=0.0, max_value=0.3),    # measurement
    st.floats(min_value=0.0, max_value=0.2),    # reset
)

graph_inputs = st.tuples(
    st.integers(min_value=2, max_value=7),
    st.floats(min_value=0.2, max_value=0.8),
    st.integers(min_value=0, max_value=10_000),
)


def _build_graph(params) -> GraphState:
    n, p, seed = params
    return GraphState.from_networkx(nx.gnp_random_graph(n, p, seed=seed))


def _durations(params) -> GateDurations:
    ee, emission, e1, p1, meas, reset = params
    return GateDurations(
        emitter_emitter_gate=ee,
        emission=emission,
        emitter_single_qubit=e1,
        photon_single_qubit=p1,
        measurement=meas,
        reset=reset,
    )


def _compile_sequence(graph: GraphState):
    config = CompilerConfig(
        max_order_candidates=12, exhaustive_order_threshold=4, lc_budget=4
    )
    return EmitterCompiler(config).compile(graph).sequence


class TestScoreSequenceMatchesMetrics:
    @given(graph_inputs, duration_inputs)
    @settings(max_examples=25, deadline=None)
    def test_score_matches_compute_metrics_under_varied_durations(
        self, graph_params, duration_params
    ):
        graph = _build_graph(graph_params)
        durations = _durations(duration_params)
        sequence = _compile_sequence(graph)
        score = score_sequence(sequence, durations=durations, policy="alap")
        metrics = compute_metrics(
            sequence.to_circuit(), durations=durations, policy="alap"
        )
        assert score == (
            float(metrics.num_emitter_emitter_cnots),
            metrics.average_photon_loss_duration,
            metrics.duration,
        )

    @given(graph_inputs)
    @settings(max_examples=15, deadline=None)
    def test_score_matches_every_hardware_preset(self, graph_params):
        graph = _build_graph(graph_params)
        sequence = _compile_sequence(graph)
        for factory in (quantum_dot, nv_center, siv_center, rydberg_atom):
            durations = factory().durations
            score = score_sequence(sequence, durations=durations, policy="alap")
            metrics = compute_metrics(
                sequence.to_circuit(), durations=durations, policy="alap"
            )
            assert score == (
                float(metrics.num_emitter_emitter_cnots),
                metrics.average_photon_loss_duration,
                metrics.duration,
            )


class TestLossEdgeCases:
    def test_zero_loss_model_keeps_every_photon(self):
        loss = PhotonLossModel(loss_per_tau=0.0)
        assert loss.survival_probability(123.4) == 1.0
        assert loss.loss_probability(123.4) == 0.0
        assert loss.state_survival_probability({0: 5.0, 1: 9.0}) == 1.0
        graph = GraphState.from_networkx(nx.path_graph(3))
        result = EmitterCompiler(CompilerConfig()).compile(graph)
        metrics = compute_metrics(result.circuit, loss_model=loss)
        assert metrics.photon_loss_probability == 0.0
        assert metrics.photon_survival_probability == 1.0

    def test_single_photon_state_metrics(self):
        graph = GraphState(vertices=[0])
        result = EmitterCompiler(CompilerConfig()).compile(graph)
        loss = quantum_dot().loss_model()
        metrics = compute_metrics(
            result.circuit, durations=quantum_dot().durations, loss_model=loss
        )
        assert metrics.num_photons == 1
        assert metrics.num_emitter_emitter_cnots == 0
        # One photon: the state survival probability is that photon's own.
        assert metrics.photon_survival_probability == pytest.approx(
            loss.survival_probability(metrics.total_photon_exposure)
        )

    def test_score_sequence_single_photon(self):
        graph = GraphState(vertices=[0])
        sequence = EmitterCompiler(CompilerConfig()).compile(graph).sequence
        score = score_sequence(sequence)
        metrics = compute_metrics(sequence.to_circuit())
        assert score == (
            float(metrics.num_emitter_emitter_cnots),
            metrics.average_photon_loss_duration,
            metrics.duration,
        )
