"""Tests for the hardware platform presets."""

from __future__ import annotations

import pytest

from repro.circuit.timing import GateDurations
from repro.hardware.loss import PhotonLossModel
from repro.hardware.models import (
    HardwareModel,
    get_hardware_model,
    nv_center,
    quantum_dot,
    rydberg_atom,
    siv_center,
)


class TestPresets:
    @pytest.mark.parametrize(
        "factory", [quantum_dot, nv_center, siv_center, rydberg_atom]
    )
    def test_presets_are_valid(self, factory):
        model = factory()
        assert isinstance(model, HardwareModel)
        assert model.durations.emitter_emitter_gate == pytest.approx(1.0)
        assert 0 < model.durations.emission < 1
        assert 0 <= model.photon_loss_per_tau < 1

    def test_quantum_dot_matches_paper_numbers(self):
        model = quantum_dot()
        assert model.tau_seconds == pytest.approx(1e-9)
        assert model.durations.emission == pytest.approx(0.1)
        assert model.photon_loss_per_tau == pytest.approx(0.005)
        assert model.emitter_emitter_fidelity >= 0.99

    def test_quantum_dot_exchange_strength_scales_tau(self):
        fast = quantum_dot(exchange_strength_ghz=2.0)
        assert fast.tau_seconds == pytest.approx(0.5e-9)
        with pytest.raises(ValueError):
            quantum_dot(exchange_strength_ghz=0)

    def test_loss_model_construction(self):
        model = quantum_dot()
        loss = model.loss_model()
        assert isinstance(loss, PhotonLossModel)
        assert loss.loss_per_tau == model.photon_loss_per_tau

    def test_fidelity_estimate(self):
        model = quantum_dot()
        assert model.circuit_fidelity_estimate(0) == pytest.approx(1.0)
        assert model.circuit_fidelity_estimate(10) == pytest.approx(0.99 ** 10)
        with pytest.raises(ValueError):
            model.circuit_fidelity_estimate(-1)


class TestLookup:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("quantum_dot", "quantum_dot"),
            ("QD", "quantum_dot"),
            ("nv", "nv_center"),
            ("SiV", "siv_center"),
            ("rydberg", "rydberg_atom"),
        ],
    )
    def test_lookup_by_name(self, name, expected):
        assert get_hardware_model(name).name == expected

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown hardware model"):
            get_hardware_model("trapped_ion")


class TestValidation:
    def test_invalid_loss_rate(self):
        with pytest.raises(ValueError):
            HardwareModel(
                name="bad",
                durations=GateDurations(),
                tau_seconds=1e-9,
                photon_loss_per_tau=1.5,
                emitter_coherence_time=1.0,
                emitter_emitter_fidelity=0.99,
            )

    def test_invalid_fidelity(self):
        with pytest.raises(ValueError):
            HardwareModel(
                name="bad",
                durations=GateDurations(),
                tau_seconds=1e-9,
                photon_loss_per_tau=0.01,
                emitter_coherence_time=1.0,
                emitter_emitter_fidelity=1.2,
            )

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            HardwareModel(
                name="bad",
                durations=GateDurations(),
                tau_seconds=0.0,
                photon_loss_per_tau=0.01,
                emitter_coherence_time=1.0,
                emitter_emitter_fidelity=0.9,
            )
