"""Packed-reduction fast path vs the dict-based oracle.

The bitset-native :class:`repro.core.packed_reduction.PackedReductionState`
must produce **bit-identical** operation sequences — and therefore identical
forward circuits — to the networkx-backed
:class:`repro.core.reduction.ReductionState` for every strategy knob, across
all seven scenario-zoo families, including strict-budget overflow and the
scheduler's ``preferred_emitters`` affinity path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.metrics import compute_metrics
from repro.circuit.validation import verify_circuit_generates
from repro.core.compiler import compile_graph
from repro.core.packed_reduction import PackedReductionState, make_reduction_state
from repro.core.plan_scoring import score_sequence
from repro.core.reduction import InsufficientEmittersError, ReductionState
from repro.core.strategies import GreedyReductionStrategy, greedy_reduce
from repro.graphs.generators import lattice_graph, linear_cluster, star_graph
from repro.graphs.graph_state import GraphState
from repro.pipeline.jobs import GraphSpec

#: The seven scenario-zoo families the fast path must agree with the oracle on.
ZOO_FAMILIES = (
    "regular",
    "smallworld",
    "erdos",
    "percolated",
    "ghz",
    "steane",
    "surface",
)


def zoo_graph(family: str, size: int, seed: int) -> GraphState:
    """Build one zoo graph, honouring the per-family size constraints."""
    if family == "steane":
        size = 7
    elif family == "surface":
        size = 3  # code distance; 13 data/check vertices
    elif family == "regular":
        size = max(size, 4)
    return GraphSpec(family=family, size=size, seed=seed).build()


def assert_sequences_identical(graph, order, strategy):
    """Run both backends and assert op-for-op (and circuit) equality."""
    dense = greedy_reduce(
        graph, processing_order=order, strategy=strategy, backend="dense"
    )
    packed = greedy_reduce(
        graph, processing_order=order, strategy=strategy, backend="packed"
    )
    assert packed.operations == dense.operations
    assert packed.num_emitters == dense.num_emitters
    assert packed.emitters_over_budget == dense.emitters_over_budget
    assert packed.photon_of_vertex == dense.photon_of_vertex
    assert packed.to_circuit().gates == dense.to_circuit().gates
    return packed


class TestOracleEquivalence:
    @given(
        family=st.sampled_from(ZOO_FAMILIES),
        size=st.integers(4, 12),
        seed=st.integers(0, 10_000),
        budget_slack=st.sampled_from((None, 0, 1, 2)),
    )
    @settings(max_examples=60, deadline=None)
    def test_zoo_sequences_match_oracle(self, family, size, seed, budget_slack):
        graph = zoo_graph(family, size, seed)
        order = list(graph.vertices())
        np.random.default_rng(seed).shuffle(order)
        budget = None
        if budget_slack is not None:
            budget = max(1, 1 + budget_slack)
        strategy = GreedyReductionStrategy(emitter_budget=budget)
        sequence = assert_sequences_identical(graph, order, strategy)
        circuit = sequence.to_circuit()
        assert verify_circuit_generates(
            circuit, graph, photon_of_vertex=sequence.photon_of_vertex
        )

    @given(
        family=st.sampled_from(ZOO_FAMILIES),
        seed=st.integers(0, 5_000),
        prefer_disconnect=st.booleans(),
        allow_absorb=st.booleans(),
        twin_rule=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_strategy_knobs_match_oracle(
        self, family, seed, prefer_disconnect, allow_absorb, twin_rule
    ):
        graph = zoo_graph(family, 9, seed)
        strategy = GreedyReductionStrategy(
            emitter_budget=2,
            prefer_disconnect_over_allocate=prefer_disconnect,
            allow_disconnect_absorb=allow_absorb,
            enable_twin_rule=twin_rule,
        )
        assert_sequences_identical(graph, None, strategy)

    @given(
        family=st.sampled_from(ZOO_FAMILIES),
        seed=st.integers(0, 5_000),
        preferred=st.tuples(st.integers(0, 3), st.integers(0, 3)),
    )
    @settings(max_examples=30, deadline=None)
    def test_preferred_emitters_affinity_matches_oracle(self, family, seed, preferred):
        graph = zoo_graph(family, 10, seed)
        strategy = GreedyReductionStrategy(
            emitter_budget=4, preferred_emitters=tuple(preferred)
        )
        assert_sequences_identical(graph, None, strategy)

    @given(seed=st.integers(0, 2_000), size=st.integers(5, 14))
    @settings(max_examples=30, deadline=None)
    def test_strict_budget_raises_identically(self, seed, size):
        graph = zoo_graph("erdos", size, seed)
        strategy = GreedyReductionStrategy(emitter_budget=1, strict_budget=True)
        outcomes = []
        for backend in ("dense", "packed"):
            try:
                sequence = greedy_reduce(graph, strategy=strategy, backend=backend)
                outcomes.append(("ok", sequence.operations))
            except InsufficientEmittersError:
                outcomes.append(("raised", None))
        assert outcomes[0] == outcomes[1]

    def test_budget_overflow_is_recorded_identically(self):
        # A 4x4 lattice needs more than one emitter: the soft budget must
        # overflow by the same amount on both backends.
        graph = lattice_graph(4, 4)
        strategy = GreedyReductionStrategy(emitter_budget=1, strict_budget=False)
        dense = greedy_reduce(graph, strategy=strategy, backend="dense")
        packed = greedy_reduce(graph, strategy=strategy, backend="packed")
        assert dense.emitters_over_budget > 0
        assert packed.emitters_over_budget == dense.emitters_over_budget
        assert packed.operations == dense.operations


class TestPackedStateBasics:
    def test_make_reduction_state_selects_backend(self):
        graph = linear_cluster(4)
        assert isinstance(
            make_reduction_state(graph, backend="packed"), PackedReductionState
        )
        assert isinstance(make_reduction_state(graph, backend="dense"), ReductionState)

    def test_queries_match_oracle_midway(self):
        graph = star_graph(6)
        dense = ReductionState(graph, emitter_budget=2)
        packed = PackedReductionState(graph, emitter_budget=2)
        for state in (dense, packed):
            # Swap out the hub: the emitter inherits all five leaves, so
            # photon 4 then dangles on emitter 0.
            state.apply_swap(0)
            state.apply_absorb_leaf(0, 4)
        assert packed.remaining_photons() == dense.remaining_photons()
        for photon in packed.remaining_photons():
            assert packed.photon_neighbors(photon) == dense.photon_neighbors(photon)
            assert packed.photon_degree(photon) == dense.photon_degree(photon)
            assert packed.photon_neighbor_counts(photon) == (
                dense.photon_neighbor_counts(photon)
            )
        for emitter in sorted(packed.active_emitters):
            assert packed.emitter_neighbors(emitter) == dense.emitter_neighbors(emitter)
            assert packed.emitter_degree(emitter) == dense.emitter_degree(emitter)
        assert packed.active_emitters == dense.active_emitters
        assert packed.free_emitters == dense.free_emitters

    def test_precondition_errors_match_oracle(self):
        graph = lattice_graph(2, 3)
        for state in (ReductionState(graph), PackedReductionState(graph)):
            with pytest.raises(ValueError, match="not in the working graph"):
                state.apply_swap(99)
            with pytest.raises(ValueError, match="not isolated"):
                state.apply_emit_isolated(0)
            state.apply_swap(0)
            with pytest.raises(ValueError, match="ABSORB_LEAF precondition"):
                state.apply_absorb_leaf(0, 3)
            with pytest.raises(ValueError, match="not adjacent"):
                state.apply_disconnect(0, 1)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError, match="empty target graph"):
            PackedReductionState(GraphState())

    def test_photon_order_must_be_permutation(self):
        graph = linear_cluster(3)
        with pytest.raises(ValueError, match="permutation"):
            PackedReductionState(graph, photon_order=[0, 1])


class TestPlanScoring:
    @given(
        family=st.sampled_from(ZOO_FAMILIES),
        seed=st.integers(0, 5_000),
        policy=st.sampled_from(("asap", "alap")),
    )
    @settings(max_examples=40, deadline=None)
    def test_score_matches_materialised_metrics(self, family, seed, policy):
        graph = zoo_graph(family, 10, seed)
        sequence = greedy_reduce(graph, strategy=GreedyReductionStrategy())
        metrics = compute_metrics(sequence.to_circuit(), policy=policy)
        assert score_sequence(sequence, policy=policy) == (
            float(metrics.num_emitter_emitter_cnots),
            metrics.average_photon_loss_duration,
            metrics.duration,
        )

    def test_rejects_unknown_policy(self):
        sequence = greedy_reduce(linear_cluster(3))
        with pytest.raises(ValueError, match="policy"):
            score_sequence(sequence, policy="soon")


class TestCompilerBackendEquivalence:
    @given(
        family=st.sampled_from(ZOO_FAMILIES),
        seed=st.integers(0, 1_000),
    )
    @settings(max_examples=12, deadline=None)
    def test_compiled_circuits_identical_across_backends(self, family, seed):
        graph = zoo_graph(family, 9, seed)
        dense = compile_graph(graph, gf2_backend="dense", verify=True)
        packed = compile_graph(graph, gf2_backend="packed", verify=True)
        assert packed.circuit.gates == dense.circuit.gates
        assert packed.metrics.as_dict() == dense.metrics.as_dict()
        assert packed.verified and dense.verified
