"""Tests for the GraphState container."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs.graph_state import GraphState


class TestConstruction:
    def test_empty(self):
        graph = GraphState()
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert graph.is_connected()

    def test_vertices_and_edges(self):
        graph = GraphState(vertices=[0, 1, 2], edges=[(0, 1), (1, 2)])
        assert set(graph.vertices()) == {0, 1, 2}
        assert set(graph.edges()) == {(0, 1), (1, 2)}

    def test_from_networkx(self):
        nx_graph = nx.cycle_graph(4)
        graph = GraphState.from_networkx(nx_graph)
        assert graph.num_vertices == 4
        assert graph.num_edges == 4

    def test_from_networkx_rejects_self_loops(self):
        nx_graph = nx.Graph()
        nx_graph.add_edge(0, 0)
        with pytest.raises(ValueError):
            GraphState.from_networkx(nx_graph)

    def test_self_loop_rejected(self):
        graph = GraphState(vertices=[0])
        with pytest.raises(ValueError):
            graph.add_edge(0, 0)

    def test_copy_is_deep(self):
        graph = GraphState(vertices=[0, 1], edges=[(0, 1)])
        clone = graph.copy()
        clone.remove_edge(0, 1)
        assert graph.has_edge(0, 1)
        assert not clone.has_edge(0, 1)

    def test_equality_and_hash(self):
        a = GraphState(vertices=[0, 1], edges=[(0, 1)])
        b = GraphState(vertices=[1, 0], edges=[(1, 0)])
        assert a == b
        assert (a == "not a graph") is NotImplemented or not (a == "not a graph")
        with pytest.raises(TypeError):
            hash(a)


class TestMutation:
    def test_toggle_edge(self):
        graph = GraphState(vertices=[0, 1])
        graph.toggle_edge(0, 1)
        assert graph.has_edge(0, 1)
        graph.toggle_edge(0, 1)
        assert not graph.has_edge(0, 1)

    def test_remove_vertex_removes_incident_edges(self):
        graph = GraphState(vertices=[0, 1, 2], edges=[(0, 1), (1, 2)])
        graph.remove_vertex(1)
        assert graph.num_edges == 0
        assert set(graph.vertices()) == {0, 2}

    def test_remove_missing_edge_raises(self):
        graph = GraphState(vertices=[0, 1])
        with pytest.raises(KeyError):
            graph.remove_edge(0, 1)

    def test_remove_missing_vertex_raises(self):
        graph = GraphState(vertices=[0])
        with pytest.raises(KeyError):
            graph.remove_vertex(5)

    def test_neighbors_and_degree(self):
        graph = GraphState(vertices=[0, 1, 2], edges=[(0, 1), (0, 2)])
        assert graph.neighbors(0) == {1, 2}
        assert graph.degree(0) == 2
        assert graph.degree(1) == 1
        with pytest.raises(KeyError):
            graph.neighbors(9)

    def test_local_complement_triangle(self):
        # Complementing the centre of a path creates the triangle and back.
        graph = GraphState(vertices=[0, 1, 2], edges=[(0, 1), (1, 2)])
        graph.local_complement(1)
        assert graph.has_edge(0, 2)
        graph.local_complement(1)
        assert not graph.has_edge(0, 2)


class TestDerivedStructures:
    def test_induced_subgraph(self):
        graph = GraphState(vertices=range(4), edges=[(0, 1), (1, 2), (2, 3)])
        sub = graph.induced_subgraph([0, 1, 2])
        assert set(sub.vertices()) == {0, 1, 2}
        assert set(sub.edges()) == {(0, 1), (1, 2)}

    def test_induced_subgraph_missing_vertex_raises(self):
        graph = GraphState(vertices=[0, 1])
        with pytest.raises(KeyError):
            graph.induced_subgraph([0, 7])

    def test_cut_edges(self):
        graph = GraphState(vertices=range(4), edges=[(0, 1), (1, 2), (2, 3)])
        cut = graph.cut_edges([[0, 1], [2, 3]])
        assert cut == [(1, 2)]

    def test_cut_edges_rejects_duplicated_vertex(self):
        graph = GraphState(vertices=range(3), edges=[(0, 1)])
        with pytest.raises(ValueError):
            graph.cut_edges([[0, 1], [1, 2]])

    def test_cut_edges_uncovered_vertices_are_singletons(self):
        graph = GraphState(vertices=range(3), edges=[(0, 1), (1, 2)])
        cut = graph.cut_edges([[0, 1]])
        assert cut == [(1, 2)]

    def test_relabeled(self):
        graph = GraphState(vertices=["a", "b", "c"], edges=[("a", "c")])
        relabelled, mapping = graph.relabeled()
        assert set(relabelled.vertices()) == {0, 1, 2}
        assert relabelled.has_edge(mapping["a"], mapping["c"])

    def test_adjacency_matrix(self):
        graph = GraphState(vertices=[0, 1, 2], edges=[(0, 2)])
        matrix = graph.adjacency_matrix(order=[0, 1, 2])
        assert matrix[0, 2] == 1 and matrix[2, 0] == 1
        assert matrix[0, 1] == 0
        assert matrix.trace() == 0

    def test_adjacency_matrix_rejects_duplicates(self):
        graph = GraphState(vertices=[0, 1])
        with pytest.raises(ValueError):
            graph.adjacency_matrix(order=[0, 0])

    def test_to_stabilizer_state(self):
        graph = GraphState(vertices=[0, 1], edges=[(0, 1)])
        state = graph.to_stabilizer_state()
        assert state.num_qubits == 2

    def test_to_stabilizer_state_empty_raises(self):
        with pytest.raises(ValueError):
            GraphState().to_stabilizer_state()

    def test_connected_components(self):
        graph = GraphState(vertices=range(4), edges=[(0, 1), (2, 3)])
        components = graph.connected_components()
        assert sorted(sorted(c) for c in components) == [[0, 1], [2, 3]]
        assert not graph.is_connected()

    def test_iteration_and_len(self):
        graph = GraphState(vertices=[3, 1, 2])
        assert len(graph) == 3
        assert set(iter(graph)) == {1, 2, 3}
