"""Tests for the per-subgraph ordering search and flexible emitter constraint."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit.validation import verify_circuit_generates
from repro.core.config import CompilerConfig
from repro.core.strategies import greedy_reduce
from repro.core.subgraph_compiler import (
    SubgraphCompiler,
    candidate_processing_orders,
)
from repro.graphs.entanglement import minimum_emitters
from repro.graphs.generators import lattice_graph, linear_cluster, ring_graph, waxman_graph
from repro.graphs.graph_state import GraphState


def compiler(**overrides) -> SubgraphCompiler:
    config = CompilerConfig(max_order_candidates=24, exhaustive_order_threshold=4)
    if overrides:
        config = config.with_overrides(**overrides)
    return SubgraphCompiler(config)


class TestCandidateOrders:
    def test_single_vertex(self):
        graph = GraphState(vertices=[0])
        orders = candidate_processing_orders(graph, 10, 4, np.random.default_rng(0))
        assert orders == [[0]]

    def test_exhaustive_for_tiny_graphs(self):
        graph = linear_cluster(3)
        orders = candidate_processing_orders(graph, 10, 4, np.random.default_rng(0))
        assert len(orders) == 6  # 3! permutations

    def test_candidates_are_unique_permutations(self):
        graph = waxman_graph(8, seed=1)
        orders = candidate_processing_orders(graph, 20, 4, np.random.default_rng(0))
        assert len({tuple(o) for o in orders}) == len(orders)
        for order in orders:
            assert sorted(order, key=repr) == sorted(graph.vertices(), key=repr)

    def test_candidate_count_is_bounded(self):
        graph = waxman_graph(9, seed=2)
        orders = candidate_processing_orders(graph, 15, 4, np.random.default_rng(0))
        assert len(orders) <= 15


class TestCompile:
    def test_result_is_verified_and_complete(self):
        graph = ring_graph(6)
        result = compiler().compile(graph)
        assert verify_circuit_generates(
            result.circuit, graph, photon_of_vertex=result.sequence.photon_of_vertex
        )
        assert result.orders_evaluated >= 1
        assert result.num_photons == 6

    def test_search_is_no_worse_than_the_natural_order(self):
        graph = lattice_graph(2, 3)
        natural = greedy_reduce(graph)
        result = compiler().compile(graph)
        assert (
            result.num_emitter_emitter_cnots
            <= natural.num_emitter_emitter_gates
        )

    def test_empty_subgraph_rejected(self):
        with pytest.raises(ValueError):
            compiler().compile(GraphState())

    def test_priority_definition(self):
        graph = linear_cluster(4)
        result = compiler().compile(graph)
        assert result.priority == pytest.approx(result.num_photons / result.duration)

    def test_emission_order_reverses_processing_order(self):
        graph = linear_cluster(4)
        result = compiler().compile(graph)
        assert result.emission_order() == list(reversed(result.processing_order))

    def test_default_budget_is_the_minimum(self):
        graph = ring_graph(5)
        result = compiler().compile(graph)
        assert result.emitter_budget == minimum_emitters(graph)


class TestFlexibleConstraint:
    def test_budgets_cover_the_slack_range(self):
        graph = ring_graph(6)
        results = compiler(flexible_emitter_slack=2).compile_flexible(graph)
        base = minimum_emitters(graph)
        assert set(results) == {base, base + 1, base + 2}

    def test_all_variants_verify(self):
        graph = waxman_graph(7, seed=3)
        for result in compiler().compile_flexible(graph).values():
            assert verify_circuit_generates(
                result.circuit,
                graph,
                photon_of_vertex=result.sequence.photon_of_vertex,
            )

    def test_zero_slack_gives_single_variant(self):
        graph = linear_cluster(5)
        results = compiler(flexible_emitter_slack=0).compile_flexible(graph)
        assert len(results) == 1
