"""Tests for the isomorphism-memoized subgraph compile cache."""

from __future__ import annotations

import random

import pytest

from repro.circuit.validation import verify_circuit_generates
from repro.core.compile_cache import (
    CachedCompilation,
    SubgraphCompileCache,
    config_fingerprint,
    get_process_cache,
    reset_process_cache,
)
from repro.core.compiler import compile_graph
from repro.core.config import CompilerConfig
from repro.core.subgraph_compiler import SubgraphCompiler
from repro.graphs.generators import (
    lattice_graph,
    linear_cluster,
    ring_graph,
    star_graph,
    waxman_graph,
)
from repro.graphs.graph_state import GraphState
from repro.pipeline.jobs import GraphSpec


@pytest.fixture(autouse=True)
def fresh_process_cache():
    """Isolate every test from the process-wide cache (and clean up after)."""
    reset_process_cache()
    yield
    reset_process_cache()


def small_config(**overrides) -> CompilerConfig:
    config = CompilerConfig(max_order_candidates=24, exhaustive_order_threshold=4)
    return config.with_overrides(**overrides) if overrides else config


def relabeled(graph: GraphState, seed: int = 0) -> GraphState:
    """An isomorphic copy with shuffled labels and insertion order."""
    rng = random.Random(seed)
    vertices = graph.vertices()
    labels = [f"x{i}" for i in range(len(vertices))]
    rng.shuffle(labels)
    mapping = dict(zip(vertices, labels))
    order = list(mapping.values())
    rng.shuffle(order)
    copy = GraphState(vertices=order)
    for u, v in graph.edges():
        copy.add_edge(mapping[u], mapping[v])
    return copy


# --------------------------------------------------------------------------- #
# The cache container
# --------------------------------------------------------------------------- #


def make_entry(compiler: SubgraphCompiler, graph: GraphState) -> tuple[tuple, CachedCompilation]:
    """Compile ``graph`` through a throwaway cache and steal its one entry."""
    scratch = SubgraphCompileCache(capacity=4)
    probe = SubgraphCompiler(compiler.config, cache=scratch)
    probe.compile(graph)
    ((key, entry),) = scratch._entries.items()
    return key, entry


class TestCacheContainer:
    def test_lru_eviction_and_stats(self):
        cache = SubgraphCompileCache(capacity=2)
        compiler = SubgraphCompiler(small_config(), cache=SubgraphCompileCache(4))
        entries = [
            make_entry(compiler, graph)
            for graph in (linear_cluster(3), ring_graph(4), star_graph(5))
        ]
        for key, entry in entries:
            cache.put(key, entry)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get(entries[0][0]) is None  # oldest was evicted
        assert cache.get(entries[2][0]) is entries[2][1]
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        assert 0.0 < cache.stats.hit_rate < 1.0

    def test_capacity_validation_and_grow_only_resize(self):
        with pytest.raises(ValueError):
            SubgraphCompileCache(capacity=0)
        cache = SubgraphCompileCache(capacity=8)
        cache.resize(4)
        assert cache.capacity == 8
        cache.resize(16)
        assert cache.capacity == 16

    def test_entry_round_trips_through_json(self):
        compiler = SubgraphCompiler(small_config())
        _, entry = make_entry(compiler, waxman_graph(6, seed=3))
        clone = CachedCompilation.from_dict(entry.as_dict())
        assert clone.processing_order == entry.processing_order
        assert clone.operations == entry.operations
        assert clone.metrics == entry.metrics  # bit-exact floats via JSON repr
        assert clone.search_max_emitters == entry.search_max_emitters
        assert clone.circuit().gates == entry.circuit().gates

    def test_stale_schema_version_is_rejected(self):
        compiler = SubgraphCompiler(small_config())
        _, entry = make_entry(compiler, linear_cluster(4))
        payload = entry.as_dict()
        payload["schema_version"] = -1
        with pytest.raises(ValueError):
            CachedCompilation.from_dict(payload)

    def test_disk_tier_survives_a_new_cache(self, tmp_path):
        disk = tmp_path / "subgraph-cache"
        first = SubgraphCompileCache(capacity=8, disk_dir=disk)
        compiler = SubgraphCompiler(small_config(), cache=first)
        result = compiler.compile(ring_graph(6))
        assert first.stats.stores == 1

        second = SubgraphCompileCache(capacity=8, disk_dir=disk)
        compiler2 = SubgraphCompiler(small_config(), cache=second)
        again = compiler2.compile(ring_graph(6))
        assert second.stats.disk_hits == 1
        assert second.stats.misses == 0
        assert again.metrics == result.metrics
        assert again.circuit.gates == result.circuit.gates


# --------------------------------------------------------------------------- #
# Compiler-level memoization
# --------------------------------------------------------------------------- #


class TestSubgraphMemoization:
    def test_repeat_compile_hits_the_cache(self):
        cache = SubgraphCompileCache(capacity=16)
        compiler = SubgraphCompiler(small_config(), cache=cache)
        first = compiler.compile(ring_graph(6))
        second = compiler.compile(ring_graph(6))
        assert cache.stats.hits >= 1
        assert second.metrics == first.metrics
        assert second.circuit.gates == first.circuit.gates

    def test_isomorphic_leaf_hits_and_verifies(self):
        cache = SubgraphCompileCache(capacity=16)
        compiler = SubgraphCompiler(small_config(), cache=cache)
        graph = waxman_graph(7, seed=5)
        cold = compiler.compile(graph)
        twin = relabeled(graph, seed=11)
        hits_before = cache.stats.hits
        warm = compiler.compile(twin)
        assert cache.stats.hits > hits_before
        # Same canonical search: metrics are bit-identical and the remapped
        # circuit generates the relabelled target.
        assert warm.metrics == cold.metrics
        assert verify_circuit_generates(
            warm.circuit, twin, photon_of_vertex=warm.sequence.photon_of_vertex
        )
        assert sorted(warm.processing_order, key=repr) == sorted(
            twin.vertices(), key=repr
        )

    def test_cache_off_matches_cache_on(self):
        graph = waxman_graph(8, seed=9)
        on = SubgraphCompiler(small_config(), cache=SubgraphCompileCache(16)).compile(graph)
        off = SubgraphCompiler(small_config(subgraph_cache=False)).compile(graph)
        assert SubgraphCompiler(small_config(subgraph_cache=False)).cache is None
        assert on.metrics == off.metrics
        assert on.circuit.gates == off.circuit.gates
        assert on.processing_order == off.processing_order

    def test_compile_order_does_not_change_results(self):
        # The order-search RNG is derived from the canonical key, so two
        # isomorphic leaves compile identically no matter how many leaves a
        # compiler instance processed before them (the historical shared RNG
        # stream made leaf results depend on partition order).
        graph_a = waxman_graph(7, seed=21)
        graph_b = relabeled(graph_a, seed=3)
        one = SubgraphCompiler(small_config(subgraph_cache=False))
        first_then_second = (one.compile(graph_a), one.compile(graph_b))
        two = SubgraphCompiler(small_config(subgraph_cache=False))
        second_then_first = (two.compile(graph_b), two.compile(graph_a))
        assert first_then_second[0].metrics == second_then_first[1].metrics
        assert first_then_second[1].metrics == second_then_first[0].metrics
        assert (
            first_then_second[0].circuit.gates == second_then_first[1].circuit.gates
        )

    def test_config_fingerprint_separates_entries(self):
        cache = SubgraphCompileCache(capacity=16)
        graph = ring_graph(6)
        SubgraphCompiler(small_config(), cache=cache).compile(graph)
        stores = cache.stats.stores
        SubgraphCompiler(
            small_config(max_order_candidates=12), cache=cache
        ).compile(graph)
        assert cache.stats.stores == stores + 1  # different fingerprint, new entry
        assert config_fingerprint(small_config()) != config_fingerprint(
            small_config(max_order_candidates=12)
        )
        # Cache knobs and the GF(2) backend must NOT change the fingerprint.
        assert config_fingerprint(small_config()) == config_fingerprint(
            small_config(subgraph_cache=False, subgraph_cache_size=1, gf2_backend="dense")
        )

    def test_flexible_skip_reports_the_same_object(self):
        # Star graphs reduce with one emitter under any order, so no search
        # beyond the first can feel budget pressure: budgets 2 and 3 must be
        # answered by the same result object without re-searching.
        compiler = SubgraphCompiler(small_config(flexible_emitter_slack=2))
        results = compiler.compile_flexible(star_graph(6))
        budgets = sorted(results)
        assert len(budgets) == 3
        assert results[budgets[2]] is results[budgets[1]]
        for result in results.values():
            assert verify_circuit_generates(
                result.circuit,
                star_graph(6),
                photon_of_vertex=result.sequence.photon_of_vertex,
            )


# --------------------------------------------------------------------------- #
# End-to-end equivalence across the scenario zoo
# --------------------------------------------------------------------------- #

ZOO_SPECS = [
    GraphSpec(family="regular", size=12),
    GraphSpec(family="smallworld", size=12),
    GraphSpec(family="erdos", size=12),
    GraphSpec(family="percolated", size=9),
    GraphSpec(family="ghz", size=9),
    GraphSpec(family="steane", size=7),
    GraphSpec(family="surface", size=3),
]


class TestZooEquivalence:
    @pytest.mark.parametrize("spec", ZOO_SPECS, ids=lambda s: s.family)
    def test_cache_hit_compiles_match_cold_compiles(self, spec):
        graph = spec.build()
        overrides = dict(max_order_candidates=24, exhaustive_order_threshold=4)
        cold = compile_graph(graph, subgraph_cache=False, **overrides)
        compile_graph(graph, **overrides)  # prime the process cache
        warm = compile_graph(graph, **overrides)
        assert warm.subgraph_cache_stats is not None
        assert warm.subgraph_cache_stats["hit_rate"] == 1.0
        assert warm.metrics == cold.metrics
        assert warm.circuit.gates == cold.circuit.gates
        assert verify_circuit_generates(
            warm.circuit, graph, photon_of_vertex=warm.sequence.photon_of_vertex
        )


# --------------------------------------------------------------------------- #
# Surfacing: compilation results and the service health body
# --------------------------------------------------------------------------- #


class TestSurfacing:
    def test_compilation_result_carries_cache_stats(self):
        result = compile_graph(lattice_graph(3, 4))
        stats = result.subgraph_cache_stats
        assert stats is not None
        assert stats["misses"] + stats["hits"] > 0
        assert "subgraph_cache_hits" not in result.summary()  # determinism

    def test_cache_disabled_reports_none(self):
        result = compile_graph(lattice_graph(3, 4), subgraph_cache=False)
        assert result.subgraph_cache_stats is None

    def test_healthz_reports_the_subgraph_cache(self):
        from repro.service.server import CompileService

        service = CompileService()
        try:
            body = service.compile({"family": "lattice", "size": 9, "kind": "compile"})
            assert body["ok"]
            health = service.healthz()
            assert health["subgraph_cache"]["enabled"] is True
            assert health["subgraph_cache"]["stores"] >= 1
            assert "hit_rate" in health["subgraph_cache"]
        finally:
            service.close()

    def test_service_disk_tier_survives_a_restart(self, tmp_path, monkeypatch):
        from repro.core.compile_cache import CACHE_DIR_ENV, peek_process_cache
        from repro.service.server import CompileService

        # The service exports the env var; setenv (unlike delenv on an
        # absent var) records the original state so teardown removes it.
        monkeypatch.setenv(CACHE_DIR_ENV, "")
        disk = str(tmp_path / "sg")
        payload = {"family": "lattice", "size": 9, "kind": "compile"}

        service = CompileService(subgraph_cache_dir=disk)
        try:
            assert service.compile(payload)["ok"]
            assert peek_process_cache().disk_enabled
            stores = peek_process_cache().stats.stores
            assert stores >= 1
        finally:
            service.close()

        reset_process_cache()  # simulate a redeploy: memory gone, disk stays
        service = CompileService(subgraph_cache_dir=disk)
        try:
            assert service.compile(payload)["ok"]
            stats = peek_process_cache().stats
            assert stats.disk_hits >= 1
            assert stats.misses == 0
        finally:
            service.close()

    def test_process_cache_grows_to_the_largest_request(self):
        first = get_process_cache(capacity=8)
        second = get_process_cache(capacity=32)
        assert second is first
        assert first.capacity == 32

    def test_disk_tier_attaches_to_an_existing_process_cache(
        self, tmp_path, monkeypatch
    ):
        from repro.core.compile_cache import CACHE_DIR_ENV

        # A process that compiled before configuring the service still gets
        # the persistent tier (the cache must not stay silently memory-only).
        monkeypatch.setenv(CACHE_DIR_ENV, "")
        compile_graph(lattice_graph(3, 3))
        cache = get_process_cache()
        assert not cache.disk_enabled
        attached = get_process_cache(disk_dir=str(tmp_path / "late-sg"))
        assert attached is cache
        assert cache.disk_enabled
        compile_graph(lattice_graph(3, 4))  # new leaves write through
        assert any((tmp_path / "late-sg").glob("sg-*.json"))

    def test_cache_hit_results_do_not_alias_the_cached_circuit(self):
        cache = SubgraphCompileCache(capacity=8)
        compiler = SubgraphCompiler(small_config(), cache=cache)
        first = compiler.compile(ring_graph(6))
        num_gates = first.circuit.num_gates
        first.circuit._gates.append(first.circuit._gates[0])  # user mutation
        second = compiler.compile(ring_graph(6))
        assert second.circuit.num_gates == num_gates  # cache entry unharmed
