"""Tests for the benchmark graph generators."""

from __future__ import annotations

import pytest

from repro.graphs.generators import (
    benchmark_graph,
    complete_graph,
    lattice_graph,
    linear_cluster,
    random_tree,
    repeater_graph_state,
    ring_graph,
    star_graph,
    tree_graph,
    waxman_graph,
)


class TestLattice:
    def test_dimensions_and_edge_count(self):
        graph = lattice_graph(3, 4)
        assert graph.num_vertices == 12
        # Grid edges: rows*(cols-1) + cols*(rows-1).
        assert graph.num_edges == 3 * 3 + 4 * 2

    def test_degree_bounds(self):
        graph = lattice_graph(4, 4)
        degrees = [graph.degree(v) for v in graph.vertices()]
        assert min(degrees) == 2 and max(degrees) == 4

    def test_single_row_is_a_path(self):
        graph = lattice_graph(1, 5)
        assert graph.num_edges == 4

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            lattice_graph(0, 3)


class TestTrees:
    def test_complete_binary_tree(self):
        graph = tree_graph(depth=3, branching=2)
        assert graph.num_vertices == 15
        assert graph.num_edges == 14
        assert graph.is_connected()

    def test_depth_zero_is_single_vertex(self):
        graph = tree_graph(depth=0, branching=3)
        assert graph.num_vertices == 1

    def test_tree_rejects_negative_depth(self):
        with pytest.raises(ValueError):
            tree_graph(depth=-1, branching=2)

    @pytest.mark.parametrize("n", [1, 2, 3, 10, 25])
    def test_random_tree_is_a_tree(self, n):
        graph = random_tree(n, seed=5)
        assert graph.num_vertices == n
        assert graph.num_edges == max(0, n - 1)
        assert graph.is_connected()

    def test_random_tree_deterministic_for_seed(self):
        assert random_tree(12, seed=9) == random_tree(12, seed=9)


class TestWaxman:
    def test_connectivity_enforced(self):
        graph = waxman_graph(20, seed=1)
        assert graph.is_connected()

    def test_deterministic_for_seed(self):
        assert waxman_graph(15, seed=3) == waxman_graph(15, seed=3)

    def test_different_seeds_differ(self):
        assert waxman_graph(15, seed=3) != waxman_graph(15, seed=4)

    def test_density_increases_with_alpha(self):
        sparse = waxman_graph(25, alpha=0.2, beta=0.2, seed=7, ensure_connected=False)
        dense = waxman_graph(25, alpha=0.9, beta=0.5, seed=7, ensure_connected=False)
        assert dense.num_edges >= sparse.num_edges

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            waxman_graph(10, alpha=0.0)
        with pytest.raises(ValueError):
            waxman_graph(10, beta=1.5)
        with pytest.raises(ValueError):
            waxman_graph(0)


class TestSimpleFamilies:
    def test_linear_cluster(self):
        graph = linear_cluster(6)
        assert graph.num_edges == 5
        assert max(graph.degree(v) for v in graph.vertices()) == 2

    def test_ring(self):
        graph = ring_graph(5)
        assert graph.num_edges == 5
        assert all(graph.degree(v) == 2 for v in graph.vertices())
        with pytest.raises(ValueError):
            ring_graph(2)

    def test_star(self):
        graph = star_graph(6)
        assert graph.degree(0) == 5
        assert graph.num_edges == 5

    def test_complete(self):
        graph = complete_graph(5)
        assert graph.num_edges == 10

    def test_repeater_graph_state(self):
        graph = repeater_graph_state(4)
        assert graph.num_vertices == 8
        # Inner clique (6 edges) plus 4 arms.
        assert graph.num_edges == 6 + 4
        inner_degrees = [graph.degree(v) for v in range(4)]
        outer_degrees = [graph.degree(v) for v in range(4, 8)]
        assert all(d == 4 for d in inner_degrees)
        assert all(d == 1 for d in outer_degrees)


class TestBenchmarkDispatch:
    @pytest.mark.parametrize("family", ["lattice", "tree", "random"])
    def test_families_dispatch(self, family):
        graph = benchmark_graph(family, 16, seed=2)
        assert graph.num_vertices >= 12
        assert graph.is_connected()

    def test_lattice_size_is_rounded(self):
        graph = benchmark_graph("lattice", 20, seed=0)
        assert 16 <= graph.num_vertices <= 20

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError):
            benchmark_graph("hypercube", 10)
