"""Tests for the benchmark graph generators."""

from __future__ import annotations

import pytest

from repro.graphs.entanglement import minimum_emitters
from repro.graphs.generators import (
    benchmark_graph,
    complete_graph,
    erdos_renyi_graph,
    ghz_graph,
    lattice_graph,
    linear_cluster,
    percolated_lattice,
    random_regular_graph,
    random_tree,
    repeater_graph_state,
    ring_graph,
    rotated_surface_code_graph,
    star_graph,
    steane_code_graph,
    tree_graph,
    watts_strogatz_graph,
    waxman_graph,
)
from repro.utils.backend import use_backend


def assert_emitters_match_dense_oracle(graph) -> int:
    """Emitter count of ``graph`` on the packed path, checked against dense."""
    with use_backend("packed"):
        packed = minimum_emitters(graph)
    with use_backend("dense"):
        dense = minimum_emitters(graph)
    assert packed == dense
    return packed


class TestLattice:
    def test_dimensions_and_edge_count(self):
        graph = lattice_graph(3, 4)
        assert graph.num_vertices == 12
        # Grid edges: rows*(cols-1) + cols*(rows-1).
        assert graph.num_edges == 3 * 3 + 4 * 2

    def test_degree_bounds(self):
        graph = lattice_graph(4, 4)
        degrees = [graph.degree(v) for v in graph.vertices()]
        assert min(degrees) == 2 and max(degrees) == 4

    def test_single_row_is_a_path(self):
        graph = lattice_graph(1, 5)
        assert graph.num_edges == 4

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            lattice_graph(0, 3)


class TestTrees:
    def test_complete_binary_tree(self):
        graph = tree_graph(depth=3, branching=2)
        assert graph.num_vertices == 15
        assert graph.num_edges == 14
        assert graph.is_connected()

    def test_depth_zero_is_single_vertex(self):
        graph = tree_graph(depth=0, branching=3)
        assert graph.num_vertices == 1

    def test_tree_rejects_negative_depth(self):
        with pytest.raises(ValueError):
            tree_graph(depth=-1, branching=2)

    @pytest.mark.parametrize("n", [1, 2, 3, 10, 25])
    def test_random_tree_is_a_tree(self, n):
        graph = random_tree(n, seed=5)
        assert graph.num_vertices == n
        assert graph.num_edges == max(0, n - 1)
        assert graph.is_connected()

    def test_random_tree_deterministic_for_seed(self):
        assert random_tree(12, seed=9) == random_tree(12, seed=9)


class TestWaxman:
    def test_connectivity_enforced(self):
        graph = waxman_graph(20, seed=1)
        assert graph.is_connected()

    def test_deterministic_for_seed(self):
        assert waxman_graph(15, seed=3) == waxman_graph(15, seed=3)

    def test_different_seeds_differ(self):
        assert waxman_graph(15, seed=3) != waxman_graph(15, seed=4)

    def test_density_increases_with_alpha(self):
        sparse = waxman_graph(25, alpha=0.2, beta=0.2, seed=7, ensure_connected=False)
        dense = waxman_graph(25, alpha=0.9, beta=0.5, seed=7, ensure_connected=False)
        assert dense.num_edges >= sparse.num_edges

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            waxman_graph(10, alpha=0.0)
        with pytest.raises(ValueError):
            waxman_graph(10, beta=1.5)
        with pytest.raises(ValueError):
            waxman_graph(0)


class TestSimpleFamilies:
    def test_linear_cluster(self):
        graph = linear_cluster(6)
        assert graph.num_edges == 5
        assert max(graph.degree(v) for v in graph.vertices()) == 2

    def test_ring(self):
        graph = ring_graph(5)
        assert graph.num_edges == 5
        assert all(graph.degree(v) == 2 for v in graph.vertices())
        with pytest.raises(ValueError):
            ring_graph(2)

    def test_star(self):
        graph = star_graph(6)
        assert graph.degree(0) == 5
        assert graph.num_edges == 5

    def test_complete(self):
        graph = complete_graph(5)
        assert graph.num_edges == 10

    def test_repeater_graph_state(self):
        graph = repeater_graph_state(4)
        assert graph.num_vertices == 8
        # Inner clique (6 edges) plus 4 arms.
        assert graph.num_edges == 6 + 4
        inner_degrees = [graph.degree(v) for v in range(4)]
        outer_degrees = [graph.degree(v) for v in range(4, 8)]
        assert all(d == 4 for d in inner_degrees)
        assert all(d == 1 for d in outer_degrees)


class TestRandomRegular:
    def test_regularity_and_connectivity(self):
        graph = random_regular_graph(12, degree=3, seed=4)
        assert graph.num_vertices == 12
        assert all(graph.degree(v) == 3 for v in graph.vertices())
        assert graph.is_connected()
        assert assert_emitters_match_dense_oracle(graph) >= 1

    def test_deterministic_for_seed(self):
        assert random_regular_graph(10, seed=7) == random_regular_graph(10, seed=7)
        assert random_regular_graph(10, seed=7) != random_regular_graph(10, seed=8)

    def test_degree_zero_is_edgeless(self):
        graph = random_regular_graph(5, degree=0, seed=1)
        assert graph.num_edges == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            random_regular_graph(9, degree=3)  # odd degree sum
        with pytest.raises(ValueError):
            random_regular_graph(4, degree=4)  # degree >= n


class TestWattsStrogatz:
    def test_structure_and_connectivity(self):
        graph = watts_strogatz_graph(16, k=4, rewire_probability=0.2, seed=6)
        assert graph.num_vertices == 16
        # Rewiring preserves the edge count of the ring lattice: n * k / 2.
        assert graph.num_edges == 16 * 4 // 2
        assert graph.is_connected()
        assert_emitters_match_dense_oracle(graph)

    def test_deterministic_for_seed(self):
        assert watts_strogatz_graph(12, seed=3) == watts_strogatz_graph(12, seed=3)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            watts_strogatz_graph(2)
        with pytest.raises(ValueError):
            watts_strogatz_graph(10, k=1)
        with pytest.raises(ValueError):
            watts_strogatz_graph(10, rewire_probability=1.5)


class TestErdosRenyi:
    def test_default_probability_is_connected(self):
        graph = erdos_renyi_graph(20, seed=1)
        assert graph.num_vertices == 20
        assert graph.is_connected()
        assert_emitters_match_dense_oracle(graph)

    def test_density_scales_with_probability(self):
        sparse = erdos_renyi_graph(20, 0.1, seed=5, ensure_connected=False)
        dense = erdos_renyi_graph(20, 0.8, seed=5, ensure_connected=False)
        assert dense.num_edges > sparse.num_edges

    def test_deterministic_for_seed(self):
        assert erdos_renyi_graph(15, seed=9) == erdos_renyi_graph(15, seed=9)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, edge_probability=1.5)


class TestPercolatedLattice:
    def test_subgraph_of_the_full_lattice_and_connected(self):
        full = lattice_graph(5, 5)
        graph = percolated_lattice(5, 5, survival=0.7, seed=2)
        assert graph.num_vertices == full.num_vertices
        assert set(graph.edges()) <= set(full.edges())
        assert graph.is_connected()
        assert_emitters_match_dense_oracle(graph)

    def test_survival_one_is_the_perfect_lattice(self):
        assert percolated_lattice(4, 4, survival=1.0, seed=0) == lattice_graph(4, 4)

    def test_drops_edges_below_survival_one(self):
        graph = percolated_lattice(6, 6, survival=0.5, seed=3, ensure_connected=False)
        assert graph.num_edges < lattice_graph(6, 6).num_edges

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            percolated_lattice(4, 4, survival=0.0)


class TestQECFlavouredStates:
    def test_ghz_star_and_complete_representations(self):
        star = ghz_graph(8)
        assert star.num_edges == 7 and star.degree(0) == 7
        complete = ghz_graph(5, representation="complete")
        assert complete.num_edges == 10
        with pytest.raises(ValueError):
            ghz_graph(5, representation="w")
        # Star and complete are LC-equivalent, so emitter counts agree.
        assert assert_emitters_match_dense_oracle(star) >= 1

    def test_steane_code_graph_structure(self):
        graph = steane_code_graph()
        assert graph.num_vertices == 7
        assert graph.num_edges == 9
        assert graph.is_connected()
        # Bipartite: 4 data vertices, 3 weight-3 check vertices.
        assert sorted(graph.degree(v) for v in range(4, 7)) == [3, 3, 3]
        assert_emitters_match_dense_oracle(graph)

    @pytest.mark.parametrize("distance", [3, 5])
    def test_rotated_surface_code_counts(self, distance):
        graph = rotated_surface_code_graph(distance)
        data = distance**2
        checks = (distance**2 - 1) // 2
        assert graph.num_vertices == data + checks
        assert graph.is_connected()
        # Check vertices touch 2 (boundary) or 4 (bulk) data qubits.
        check_degrees = [graph.degree(v) for v in range(data, data + checks)]
        assert set(check_degrees) <= {2, 4}
        assert_emitters_match_dense_oracle(graph)

    def test_surface_code_rejects_even_or_small_distance(self):
        with pytest.raises(ValueError):
            rotated_surface_code_graph(2)
        with pytest.raises(ValueError):
            rotated_surface_code_graph(1)


class TestBenchmarkDispatch:
    @pytest.mark.parametrize("family", ["lattice", "tree", "random"])
    def test_families_dispatch(self, family):
        graph = benchmark_graph(family, 16, seed=2)
        assert graph.num_vertices >= 12
        assert graph.is_connected()

    def test_lattice_size_is_rounded(self):
        graph = benchmark_graph("lattice", 20, seed=0)
        assert 16 <= graph.num_vertices <= 20

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError):
            benchmark_graph("hypercube", 10)
