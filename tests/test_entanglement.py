"""Tests for cut rank, height function and the minimal-emitter bound."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.entanglement import cut_rank, height_function, minimum_emitters
from repro.graphs.generators import (
    complete_graph,
    lattice_graph,
    linear_cluster,
    star_graph,
    waxman_graph,
)
from repro.graphs.graph_state import GraphState


class TestCutRank:
    def test_empty_subset(self):
        graph = linear_cluster(4)
        assert cut_rank(graph, []) == 0

    def test_full_subset(self):
        graph = linear_cluster(4)
        assert cut_rank(graph, graph.vertices()) == 0

    def test_single_vertex_of_path(self):
        graph = linear_cluster(4)
        assert cut_rank(graph, [0]) == 1

    def test_path_middle_cut(self):
        graph = linear_cluster(6)
        assert cut_rank(graph, [0, 1, 2]) == 1

    def test_star_any_leaf_subset(self):
        graph = star_graph(6)
        assert cut_rank(graph, [1, 2, 3]) == 1

    def test_complete_graph_cut_rank_is_one(self):
        # K_n adjacency across any cut has rank 1 over GF(2) (all-ones block).
        graph = complete_graph(6)
        assert cut_rank(graph, [0, 1, 2]) == 1

    def test_lattice_column_cut(self):
        graph = lattice_graph(3, 4)
        first_column = [0, 4, 8]
        assert cut_rank(graph, first_column) == 3

    def test_unknown_vertex_raises(self):
        with pytest.raises(KeyError):
            cut_rank(linear_cluster(3), [99])

    @given(st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_cut_rank_symmetry_and_bounds(self, seed):
        graph = waxman_graph(8, seed=seed)
        subset = graph.vertices()[:3]
        complement = graph.vertices()[3:]
        rank = cut_rank(graph, subset)
        assert rank == cut_rank(graph, complement)
        assert 0 <= rank <= min(len(subset), len(complement))


class TestHeightFunctionAndEmitters:
    def test_height_endpoints_are_zero(self):
        graph = lattice_graph(2, 3)
        heights = height_function(graph)
        assert heights[0] == 0
        assert heights[-1] == 0
        assert len(heights) == graph.num_vertices + 1

    def test_linear_cluster_needs_one_emitter(self):
        assert minimum_emitters(linear_cluster(10)) == 1

    def test_star_needs_one_emitter(self):
        assert minimum_emitters(star_graph(8)) == 1

    def test_lattice_needs_width_emitters(self):
        # A rows x cols lattice emitted row by row needs `cols` emitters.
        assert minimum_emitters(lattice_graph(3, 3)) == 3
        assert minimum_emitters(lattice_graph(4, 5)) == 5

    def test_isolated_vertices_still_need_one_emitter(self):
        graph = GraphState(vertices=[0, 1, 2])
        assert minimum_emitters(graph) == 1

    def test_empty_graph_needs_no_emitters(self):
        assert minimum_emitters(GraphState()) == 0

    def test_ordering_changes_the_bound(self):
        graph = lattice_graph(2, 4)
        natural = minimum_emitters(graph)
        # Column-major emission of a 2 x 4 lattice keeps the frontier at 2.
        column_major = [0, 4, 1, 5, 2, 6, 3, 7]
        assert minimum_emitters(graph, ordering=column_major) <= natural

    def test_invalid_ordering_raises(self):
        graph = linear_cluster(3)
        with pytest.raises(ValueError):
            height_function(graph, ordering=[0, 1])
        with pytest.raises(ValueError):
            height_function(graph, ordering=[0, 1, 1])

    @given(st.integers(0, 300))
    @settings(max_examples=20, deadline=None)
    def test_minimum_emitters_at_most_vertices(self, seed):
        graph = waxman_graph(7, seed=seed)
        assert 1 <= minimum_emitters(graph) <= graph.num_vertices
