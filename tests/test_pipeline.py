"""Batch-compilation pipeline: jobs, caching, parallelism and the CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.evaluation.experiments import run_comparison, sweep_jobs
from repro.evaluation.figures import figure10_cnot, runtime_scaling
from repro.pipeline.cache import ResultCache
from repro.pipeline.jobs import BatchJob, GraphSpec, run_job
from repro.pipeline.runner import BatchRunner


class TestGraphSpec:
    def test_builds_benchmark_families(self):
        for family, size in (("lattice", 9), ("tree", 8), ("random", 8), ("linear", 6)):
            graph = GraphSpec(family=family, size=size, seed=3).build()
            assert graph.num_vertices >= 2

    def test_rejects_unknown_family_and_size(self):
        with pytest.raises(ValueError):
            GraphSpec(family="hypercube", size=8)
        with pytest.raises(ValueError):
            GraphSpec(family="lattice", size=0)

    def test_builds_every_zoo_family(self):
        for family, size in (
            ("regular", 10),
            ("smallworld", 10),
            ("erdos", 10),
            ("percolated", 10),
            ("ghz", 10),
            ("steane", 7),
            ("surface", 3),
        ):
            graph = GraphSpec(family=family, size=size, seed=5).build()
            assert graph.num_vertices >= 4
            assert graph.is_connected()

    def test_zoo_structural_constraints(self):
        with pytest.raises(ValueError):
            GraphSpec(family="steane", size=8)  # the code is fixed at 7
        with pytest.raises(ValueError):
            GraphSpec(family="surface", size=4)  # distance must be odd
        with pytest.raises(ValueError):
            GraphSpec(family="regular", size=3)  # too small for degree 3/4

    def test_zoo_families_compile_through_the_batch_runner(self):
        jobs = [
            BatchJob(graph=GraphSpec(family, size, seed=5), kind="compile")
            for family, size in (
                ("regular", 8),
                ("smallworld", 8),
                ("erdos", 8),
                ("percolated", 8),
                ("ghz", 8),
                ("steane", 7),
                ("surface", 3),
            )
        ]
        report = BatchRunner().run(jobs)
        assert report.num_errors == 0
        for outcome in report.outcomes:
            assert outcome.result["ours"]["num_emitters"] >= 1


class TestBatchJob:
    def test_content_hash_is_stable_and_sensitive(self):
        job = BatchJob(graph=GraphSpec("lattice", 9, 3))
        same = BatchJob(graph=GraphSpec("lattice", 9, 3))
        other = BatchJob(graph=GraphSpec("lattice", 9, 4))
        assert job.content_hash == same.content_hash
        assert job.content_hash != other.content_hash
        assert job.content_hash != job.with_overrides(kind="compile").content_hash

    def test_rejects_bad_kind_backend_hardware(self):
        spec = GraphSpec("lattice", 9, 3)
        with pytest.raises(ValueError):
            BatchJob(graph=spec, kind="profile")
        with pytest.raises(ValueError):
            BatchJob(graph=spec, backend="simd")
        with pytest.raises(ValueError):
            BatchJob(graph=spec, hardware="abacus")

    def test_from_dict_roundtrips_as_dict(self):
        job = BatchJob(
            graph=GraphSpec("surface", 3, seed=2),
            kind="compile",
            emitter_limit_factor=2.0,
            backend="dense",
            config_overrides=(("lc_budget", 0),),
        )
        rebuilt = BatchJob.from_dict(json.loads(json.dumps(job.as_dict())))
        assert rebuilt == job
        assert rebuilt.content_hash == job.content_hash

    def test_from_dict_accepts_flat_graph_keys(self):
        job = BatchJob.from_dict({"family": "lattice", "size": 9, "kind": "compile"})
        assert job.graph == GraphSpec("lattice", 9)
        assert job.kind == "compile"

    def test_from_dict_accepts_mapping_config_overrides(self):
        job = BatchJob.from_dict(
            {"family": "lattice", "size": 9, "config_overrides": {"lc_budget": 0}}
        )
        assert job.config_overrides == (("lc_budget", 0),)

    def test_from_dict_rejects_unknown_keys_and_missing_graph(self):
        with pytest.raises(ValueError):
            BatchJob.from_dict({"family": "lattice", "size": 9, "sizee": 2})
        with pytest.raises(ValueError):
            BatchJob.from_dict({"kind": "compile"})
        with pytest.raises(ValueError):
            BatchJob.from_dict({"graph": {"family": "lattice", "size": 9, "x": 1}})
        with pytest.raises(ValueError):
            BatchJob.from_dict("not-a-mapping")

    def test_job_description_is_json_serialisable(self):
        job = BatchJob(
            graph=GraphSpec("tree", 7, 2), config_overrides=(("lc_budget", 4),)
        )
        encoded = json.dumps(job.as_dict(), sort_keys=True)
        assert "lc_budget" in encoded


class TestRunJob:
    def test_comparison_matches_run_comparison(self):
        spec = GraphSpec("lattice", 9, 11)
        record = run_job(BatchJob(graph=spec))
        point = run_comparison(spec.build())
        assert record["ours"]["num_emitter_emitter_cnots"] == point.ours_cnots
        assert record["baseline"]["num_emitter_emitter_cnots"] == point.baseline_cnots
        assert record["num_qubits"] == point.num_qubits
        assert record["seconds_ours"] > 0

    def test_lc_stem_edges_record(self):
        record = run_job(
            BatchJob(
                graph=GraphSpec("waxman", 10, 11),
                kind="lc_stem_edges",
                config_overrides=(("lc_budget", 15),),
            )
        )
        assert record["stem_edge_reduction"] == (
            record["stem_edges_no_lc"] - record["stem_edges_with_lc"]
        )

    def test_backends_produce_identical_metrics(self):
        spec = GraphSpec("lattice", 9, 5)
        dense = run_job(BatchJob(graph=spec, backend="dense", verify=True))
        packed = run_job(BatchJob(graph=spec, backend="packed", verify=True))
        for key in ("num_emitter_emitter_cnots", "duration", "photon_loss_probability"):
            assert dense["ours"][key] == packed["ours"][key]
            assert dense["baseline"][key] == packed["baseline"][key]


class TestResultCache:
    def test_roundtrip_and_stats(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("deadbeef") is None
        cache.put("deadbeef", {"value": 3})
        assert cache.get("deadbeef") == {"value": 3}
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1

    def test_rejects_path_traversal_keys(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError):
            cache.get("../escape")

    def test_corrupt_entry_counts_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("key", {"value": 1})
        (tmp_path / "key.json").write_text("{not json")
        assert cache.get("key") is None


class TestBatchRunner:
    def _jobs(self, sizes=(8, 9, 10)):
        return sweep_jobs("lattice", sizes, seed=11)

    def test_serial_run_collects_all_results(self):
        report = BatchRunner().run(self._jobs())
        assert report.num_jobs == 3
        assert report.num_errors == 0
        assert report.num_cache_hits == 0
        assert all(record is not None for record in report.results)

    def test_second_run_hits_cache(self, tmp_path):
        runner = BatchRunner(cache_dir=tmp_path / "cache")
        jobs = self._jobs()
        first = runner.run(jobs)
        second = runner.run(jobs)
        assert first.num_cache_hits == 0
        assert second.num_cache_hits == len(jobs)
        assert second.summary()["compute_seconds"] == 0.0
        for fresh, cached in zip(first.results, second.results):
            assert fresh["ours"] == cached["ours"]

    def test_parallel_matches_serial(self, tmp_path):
        def metrics(record):
            # Wall-clock fields are nondeterministic by nature; everything
            # else must agree exactly between execution modes.
            return {
                key: value
                for key, value in record["ours"].items()
                if key != "compile_time_seconds"
            }

        jobs = self._jobs((8, 9, 10, 12))
        serial = BatchRunner(max_workers=1).run(jobs)
        parallel = BatchRunner(max_workers=3).run(jobs)
        assert parallel.num_errors == 0
        for left, right in zip(serial.results, parallel.results):
            assert metrics(left) == metrics(right)
            assert left["baseline"] == right["baseline"]

    def test_identical_jobs_in_one_batch_are_coalesced(self):
        job = BatchJob(graph=GraphSpec("linear", 7), kind="compile")
        report = BatchRunner().run([job, job, job])
        assert report.num_errors == 0
        # cache_hit stays reserved for the persistent cache (none here).
        assert [o.cache_hit for o in report.outcomes] == [False, False, False]
        assert [o.coalesced for o in report.outcomes] == [False, True, True]
        assert report.num_coalesced == 2
        assert report.outcomes[1].result == report.outcomes[0].result
        # Duplicates cost nothing: total compute equals the single run.
        assert report.summary()["compute_seconds"] == pytest.approx(
            report.outcomes[0].elapsed_seconds
        )

    def test_job_error_is_captured_not_raised(self):
        # A repeater spec needs >= 2 arms to mean anything; size 1 yields a
        # 2-vertex graph, so force a failure via an invalid config override.
        bad = BatchJob(
            graph=GraphSpec("lattice", 8, 1),
            config_overrides=(("max_subgraph_size", 0),),
        )
        good = BatchJob(graph=GraphSpec("lattice", 8, 1))
        report = BatchRunner().run([bad, good])
        assert report.num_errors == 1
        assert report.outcomes[0].error is not None
        assert report.outcomes[1].ok
        with pytest.raises(RuntimeError):
            report.raise_first_error()


class TestFigureSweepsThroughPipeline:
    def test_figure10_cnot_uses_cache(self, tmp_path):
        runner = BatchRunner(cache_dir=tmp_path / "cache")
        first = figure10_cnot("lattice", sizes=(9, 12), runner=runner)
        second = figure10_cnot("lattice", sizes=(9, 12), runner=runner)
        assert first.rows == second.rows
        assert runner.cache.hits >= 2

    def test_figure_matches_unpiped_results(self, tmp_path):
        piped = figure10_cnot("lattice", sizes=(9, 12))
        cached = figure10_cnot(
            "lattice", sizes=(9, 12), runner=BatchRunner(cache_dir=tmp_path)
        )
        assert piped.rows == cached.rows

    def test_runtime_scaling_rows(self):
        data = runtime_scaling(sizes=(6, 8))
        assert len(data.rows) == 2
        assert data.summary["max_ours_seconds"] > 0


class TestBatchCLI:
    def test_batch_subcommand_with_cache_and_json(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        json_path = tmp_path / "out.json"
        argv = [
            "batch",
            "--families", "lattice",
            "--sizes", "8", "9",
            "--cache-dir", str(cache_dir),
            "--json", str(json_path),
        ]
        assert cli_main(argv) == 0
        first = capsys.readouterr().out
        assert "cache hits: 0" in first
        assert cli_main(argv) == 0
        second = capsys.readouterr().out
        assert "cache hits: 2" in second
        payload = json.loads(json_path.read_text())
        assert payload["summary"]["num_jobs"] == 2
        assert all(job["cache_hit"] for job in payload["jobs"])

    def test_batch_propagates_job_errors_via_exit_code(self, capsys):
        # star graphs need >= 1 vertex; an unknown hardware name fails at
        # job-construction time, so use a failing compile instead: lattice of
        # size 2 is below the 2x2 minimum and raises inside the worker.
        argv = ["batch", "--families", "repeater", "--sizes", "1", "--kind", "duration"]
        exit_code = cli_main(argv)
        out = capsys.readouterr().out
        # Job errors surface as the batch-specific exit code (5), clean runs as 0.
        assert exit_code in (0, 5)
        assert "jobs: 1" in out
