"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compile_defaults(self):
        args = build_parser().parse_args(["compile"])
        assert args.family == "lattice"
        assert args.size == 20
        assert args.emitter_factor == pytest.approx(1.5)

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig10a", "--sizes", "10", "12"])
        assert args.figure == "fig10a"
        assert args.sizes == [10, 12]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestExecution:
    def test_compile_command_prints_metrics(self, capsys):
        exit_code = main(
            ["compile", "--family", "tree", "--size", "8", "--seed", "3", "--baseline"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "framework result:" in captured
        assert "baseline result:" in captured
        assert "num_emitter_emitter_cnots" in captured

    def test_compile_command_with_circuit_listing(self, capsys):
        exit_code = main(
            ["compile", "--family", "lattice", "--size", "9", "--show-circuit"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "EMIT" in captured

    def test_figure_command(self, capsys):
        exit_code = main(["figure", "fig10b", "--sizes", "8", "10"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "fig10_cnot_tree" in captured
        assert "reduction" in captured
