"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro import __version__
from repro.cli import (
    EXIT_BATCH,
    EXIT_COMPILE,
    EXIT_FIGURE,
    EXIT_LOADGEN,
    EXIT_OK,
    build_parser,
    main,
)


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_serve_and_loadgen_are_registered_with_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "serve" in out and "loadgen" in out

        args = build_parser().parse_args(["serve", "--port", "0"])
        assert args.command == "serve"
        assert args.port == 0
        assert args.batch_window_ms == pytest.approx(20.0)

        args = build_parser().parse_args(
            ["loadgen", "--self-serve", "--requests", "5", "--min-cache-hit-rate", "0.9"]
        )
        assert args.self_serve is True
        assert args.min_cache_hit_rate == pytest.approx(0.9)

    def test_subgraph_cache_flags(self):
        args = build_parser().parse_args(
            ["serve", "--subgraph-cache-dir", ".sg-cache"]
        )
        assert args.subgraph_cache_dir == ".sg-cache"
        assert build_parser().parse_args(["serve"]).subgraph_cache_dir is None

        args = build_parser().parse_args(["bench", "--cache-sizes", "16", "32"])
        assert args.cache_sizes == [16, 32]
        assert build_parser().parse_args(["bench"]).cache_sizes is None
        assert build_parser().parse_args(["bench", "--cache-sizes"]).cache_sizes == []

    def test_compile_defaults(self):
        args = build_parser().parse_args(["compile"])
        assert args.family == "lattice"
        assert args.size == 20
        assert args.emitter_factor == pytest.approx(1.5)

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig10a", "--sizes", "10", "12"])
        assert args.figure == "fig10a"
        assert args.sizes == [10, 12]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestExecution:
    def test_compile_command_prints_metrics(self, capsys):
        exit_code = main(
            ["compile", "--family", "tree", "--size", "8", "--seed", "3", "--baseline"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "framework result:" in captured
        assert "baseline result:" in captured
        assert "num_emitter_emitter_cnots" in captured

    def test_compile_command_with_circuit_listing(self, capsys):
        exit_code = main(
            ["compile", "--family", "lattice", "--size", "9", "--show-circuit"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "EMIT" in captured

    def test_figure_command(self, capsys):
        exit_code = main(["figure", "fig10b", "--sizes", "8", "10"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "fig10_cnot_tree" in captured
        assert "reduction" in captured

    def test_zoo_figure_command(self, capsys):
        exit_code = main(["figure", "zoo"])
        captured = capsys.readouterr().out
        assert exit_code == EXIT_OK
        assert "scenario_zoo" in captured
        for family in ("steane", "surface", "smallworld", "percolated"):
            assert family in captured

    def test_zoo_figure_rejects_multiple_sizes(self, capsys):
        exit_code = main(["figure", "zoo", "--sizes", "9", "12"])
        assert exit_code == EXIT_FIGURE
        assert "single size point" in capsys.readouterr().err


class TestExitCodes:
    def test_compile_failure_is_distinct(self, capsys):
        # Size 0 is rejected by the generator and surfaces as the compile code.
        exit_code = main(["compile", "--family", "lattice", "--size", "0"])
        assert exit_code == EXIT_COMPILE
        assert "repro compile:" in capsys.readouterr().err

    def test_figure_failure_is_distinct(self, capsys, monkeypatch):
        from repro.evaluation import figures

        def boom(*args, **kwargs):
            raise RuntimeError("synthetic figure failure")

        monkeypatch.setattr(figures, "figure5_emitter_usage", boom)
        exit_code = main(["figure", "fig5"])
        assert exit_code == EXIT_FIGURE
        assert "synthetic figure failure" in capsys.readouterr().err

    def test_batch_usage_failure_is_distinct(self, capsys, monkeypatch):
        from repro.pipeline.runner import BatchRunner

        def boom(self, jobs):
            raise RuntimeError("synthetic batch failure")

        monkeypatch.setattr(BatchRunner, "run", boom)
        exit_code = main(["batch", "--families", "lattice", "--sizes", "8"])
        assert exit_code == EXIT_BATCH
        assert "synthetic batch failure" in capsys.readouterr().err

    def test_loadgen_requires_exactly_one_target(self, capsys):
        assert main(["loadgen"]) == EXIT_LOADGEN
        assert "exactly one of" in capsys.readouterr().err


class TestLoadgenSelfServe:
    def test_self_serve_round_trip_prints_percentiles(self, tmp_path, capsys):
        argv = [
            "loadgen",
            "--self-serve",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--families",
            "linear",
            "--sizes",
            "6",
            "--requests",
            "6",
            "--concurrency",
            "2",
        ]
        assert main(argv) == EXIT_OK
        capsys.readouterr()
        # A second identical run must be served (almost) entirely from cache.
        assert main(argv + ["--min-cache-hit-rate", "0.9"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "latency p50" in out and "latency p95" in out
        assert "100.0%" in out
