"""Canonical forms and exact equality tests for stabilizer states.

Two stabilizer states are identical (as quantum states, up to global phase)
if and only if their stabilizer groups coincide, *including generator signs*.
The functions here bring a set of signed Pauli generators into a unique
reduced row echelon form under row multiplication (which is what "adding"
rows means for Pauli groups), so equality becomes an array comparison.
"""

from __future__ import annotations

import numpy as np

from repro.stabilizer.tableau import StabilizerState

__all__ = ["canonical_stabilizer_matrix", "states_equal"]


def _multiply_rows(
    x: np.ndarray, z: np.ndarray, r: np.ndarray, target: int, source: int
) -> None:
    """Multiply Pauli row ``target`` by row ``source`` in place (sign-tracked)."""
    n = x.shape[1]
    phase = 2 * int(r[target]) + 2 * int(r[source])
    for j in range(n):
        phase += StabilizerState._phase_exponent(
            int(x[source, j]), int(z[source, j]), int(x[target, j]), int(z[target, j])
        )
    phase %= 4
    r[target] = 1 if phase == 2 else 0
    x[target] ^= x[source]
    z[target] ^= z[source]


def canonical_stabilizer_matrix(state: StabilizerState) -> np.ndarray:
    """Return the canonical ``(n, 2n + 1)`` generator matrix of ``state``.

    The canonicalisation performs Gauss–Jordan elimination over the symplectic
    representation with the column order ``X_0..X_{n-1}, Z_0..Z_{n-1}``, using
    Pauli row multiplication so that the signs stay consistent.  The output is
    unique for a given stabilizer group, which makes it usable as a state
    fingerprint.
    """
    n = state.num_qubits
    x = state.x[n:].copy()
    z = state.z[n:].copy()
    r = state.r[n:].copy()

    columns = [("x", j) for j in range(n)] + [("z", j) for j in range(n)]

    def column_bit(row: int, col: tuple[str, int]) -> int:
        kind, j = col
        return int(x[row, j]) if kind == "x" else int(z[row, j])

    pivot_row = 0
    for col in columns:
        if pivot_row >= n:
            break
        pivot = None
        for row in range(pivot_row, n):
            if column_bit(row, col):
                pivot = row
                break
        if pivot is None:
            continue
        if pivot != pivot_row:
            x[[pivot_row, pivot]] = x[[pivot, pivot_row]]
            z[[pivot_row, pivot]] = z[[pivot, pivot_row]]
            r[[pivot_row, pivot]] = r[[pivot, pivot_row]]
        for row in range(n):
            if row != pivot_row and column_bit(row, col):
                _multiply_rows(x, z, r, row, pivot_row)
        pivot_row += 1

    return np.concatenate([x, z, r.reshape(-1, 1)], axis=1).astype(np.uint8)


def states_equal(state_a: StabilizerState, state_b: StabilizerState) -> bool:
    """Exact equality of two stabilizer states (up to global phase).

    Raises:
        ValueError: when the states have different qubit counts.
    """
    if state_a.num_qubits != state_b.num_qubits:
        raise ValueError(
            "cannot compare states with different qubit counts: "
            f"{state_a.num_qubits} vs {state_b.num_qubits}"
        )
    return bool(
        np.array_equal(
            canonical_stabilizer_matrix(state_a),
            canonical_stabilizer_matrix(state_b),
        )
    )
