"""Canonical forms and exact equality tests for stabilizer states.

Two stabilizer states are identical (as quantum states, up to global phase)
if and only if their stabilizer groups coincide, *including generator signs*.
The functions here bring a set of signed Pauli generators into a unique
reduced row echelon form under row multiplication (which is what "adding"
rows means for Pauli groups), so equality becomes an array comparison.

The canonicalisation runs on either GF(2) backend (see
:mod:`repro.utils.backend`): the dense path mirrors the original
``uint8``-matrix Gauss–Jordan elimination with a Python sign loop per row
multiplication, while the packed path works on ``np.uint64`` words and
multiplies all rows of a pivot column at once with popcount-based sign
bookkeeping.  Both produce the identical canonical matrix.
"""

from __future__ import annotations

import numpy as np

from repro.stabilizer.tableau import StabilizerState
from repro.utils.backend import DENSE, resolve_backend
from repro.utils.gf2_packed import pauli_phase_terms, unpack_matrix

__all__ = ["canonical_stabilizer_matrix", "states_equal"]


def _multiply_rows(
    x: np.ndarray, z: np.ndarray, r: np.ndarray, target: int, source: int
) -> None:
    """Multiply Pauli row ``target`` by row ``source`` in place (sign-tracked)."""
    n = x.shape[1]
    phase = 2 * int(r[target]) + 2 * int(r[source])
    for j in range(n):
        phase += StabilizerState._phase_exponent(
            int(x[source, j]), int(z[source, j]), int(x[target, j]), int(z[target, j])
        )
    phase %= 4
    r[target] = 1 if phase == 2 else 0
    x[target] ^= x[source]
    z[target] ^= z[source]


def _canonicalise_dense(state: StabilizerState) -> np.ndarray:
    n = state.num_qubits
    x = state.x[n:].copy()
    z = state.z[n:].copy()
    r = state.r[n:].copy()

    columns = [("x", j) for j in range(n)] + [("z", j) for j in range(n)]

    def column_bit(row: int, col: tuple[str, int]) -> int:
        """The X- or Z-part bit of ``row`` in logical column ``col``."""
        kind, j = col
        return int(x[row, j]) if kind == "x" else int(z[row, j])

    pivot_row = 0
    for col in columns:
        if pivot_row >= n:
            break
        pivot = None
        for row in range(pivot_row, n):
            if column_bit(row, col):
                pivot = row
                break
        if pivot is None:
            continue
        if pivot != pivot_row:
            x[[pivot_row, pivot]] = x[[pivot, pivot_row]]
            z[[pivot_row, pivot]] = z[[pivot, pivot_row]]
            r[[pivot_row, pivot]] = r[[pivot, pivot_row]]
        for row in range(n):
            if row != pivot_row and column_bit(row, col):
                _multiply_rows(x, z, r, row, pivot_row)
        pivot_row += 1

    return np.concatenate([x, z, r.reshape(-1, 1)], axis=1).astype(np.uint8)


def _multiply_rows_packed(
    x_words: np.ndarray,
    z_words: np.ndarray,
    r: np.ndarray,
    targets: np.ndarray,
    source: int,
) -> None:
    """Multiply every Pauli row in ``targets`` by row ``source`` in place."""
    phases = (
        2 * r[targets].astype(np.int64)
        + 2 * int(r[source])
        + pauli_phase_terms(
            x_words[source], z_words[source], x_words[targets], z_words[targets]
        )
    ) % 4
    r[targets] = (phases == 2).astype(np.uint8)
    x_words[targets] ^= x_words[source]
    z_words[targets] ^= z_words[source]


def _canonicalise_packed(state: StabilizerState) -> np.ndarray:
    n = state.num_qubits
    x_words, z_words, r = state.packed_stabilizer_rows()

    pivot_row = 0
    for col in range(2 * n):
        if pivot_row >= n:
            break
        words = x_words if col < n else z_words
        word, bit = divmod(col % n, 64)
        column = ((words[:, word] >> np.uint64(bit)) & np.uint64(1)).astype(np.uint8)
        candidates = np.nonzero(column[pivot_row:])[0]
        if candidates.size == 0:
            continue
        pivot = pivot_row + int(candidates[0])
        if pivot != pivot_row:
            x_words[[pivot_row, pivot]] = x_words[[pivot, pivot_row]]
            z_words[[pivot_row, pivot]] = z_words[[pivot, pivot_row]]
            r[[pivot_row, pivot]] = r[[pivot, pivot_row]]
            column[[pivot_row, pivot]] = column[[pivot, pivot_row]]
        targets = np.nonzero(column)[0]
        targets = targets[targets != pivot_row]
        if targets.size:
            _multiply_rows_packed(x_words, z_words, r, targets, pivot_row)
        pivot_row += 1

    return np.concatenate(
        [
            unpack_matrix(x_words, n),
            unpack_matrix(z_words, n),
            r.reshape(-1, 1),
        ],
        axis=1,
    ).astype(np.uint8)


def canonical_stabilizer_matrix(
    state: StabilizerState, backend: str | None = None
) -> np.ndarray:
    """Return the canonical ``(n, 2n + 1)`` generator matrix of ``state``.

    The canonicalisation performs Gauss–Jordan elimination over the symplectic
    representation with the column order ``X_0..X_{n-1}, Z_0..Z_{n-1}``, using
    Pauli row multiplication so that the signs stay consistent.  The output is
    unique for a given stabilizer group, which makes it usable as a state
    fingerprint.

    ``backend=None`` follows the backend of ``state`` itself, so packed states
    are canonicalised without ever unpacking their tableau.
    """
    chosen = resolve_backend(backend if backend is not None else state.backend)
    if chosen != DENSE:
        return _canonicalise_packed(state)
    return _canonicalise_dense(state)


def states_equal(
    state_a: StabilizerState,
    state_b: StabilizerState,
    backend: str | None = None,
) -> bool:
    """Exact equality of two stabilizer states (up to global phase).

    The states may live on different tableau backends; canonical matrices are
    backend-independent, so the comparison is still exact.

    Raises:
        ValueError: when the states have different qubit counts.
    """
    if state_a.num_qubits != state_b.num_qubits:
        raise ValueError(
            "cannot compare states with different qubit counts: "
            f"{state_a.num_qubits} vs {state_b.num_qubits}"
        )
    return bool(
        np.array_equal(
            canonical_stabilizer_matrix(state_a, backend=backend),
            canonical_stabilizer_matrix(state_b, backend=backend),
        )
    )
