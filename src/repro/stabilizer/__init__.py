"""Stabilizer-formalism substrate.

The compiler never *needs* amplitude-level simulation: every state appearing
in emitter-based graph-state generation is a stabilizer state, and every gate
is Clifford (plus Pauli measurements with feed-forward).  This subpackage
provides an exact, self-contained CHP-style tableau simulator used to

* verify end to end that a compiled circuit maps ``|0...0>`` to the target
  photonic graph state with all emitters returned to ``|0>``;
* unit-test the graph rewrite rules of the reduction engine against the
  actual quantum-mechanical transformations they claim to implement.

Public API:

* :class:`repro.stabilizer.tableau.StabilizerState` — the simulator.
* :func:`repro.stabilizer.canonical.canonical_stabilizer_matrix` and
  :func:`repro.stabilizer.canonical.states_equal` — exact state comparison.
"""

from repro.stabilizer.tableau import StabilizerState
from repro.stabilizer.canonical import (
    canonical_stabilizer_matrix,
    states_equal,
)

__all__ = [
    "StabilizerState",
    "canonical_stabilizer_matrix",
    "states_equal",
]
