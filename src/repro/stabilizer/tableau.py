"""CHP-style stabilizer tableau simulator (Aaronson & Gottesman 2004).

The :class:`StabilizerState` tracks ``2n`` Pauli rows (``n`` destabilizers and
``n`` stabilizers) over ``n`` qubits together with their signs.  Supported
operations cover everything the emitter compiler emits:

* single-qubit Cliffords: ``h``, ``s``, ``sdg``, ``x``, ``y``, ``z``,
  ``sqrt_x`` (= e^{-i pi/4 X}) and ``sqrt_x_dag``;
* two-qubit Cliffords: ``cnot`` and ``cz``;
* computational-basis measurement (``measure_z``) with either random or
  forced outcomes, and ``reset`` to ``|0>``.

All operations are exact; the class is pure Python + numpy and has no
dependency on the rest of the package beyond :mod:`repro.utils`, so it can
serve as an independent oracle in tests.

Two storage backends implement the same tableau:

* ``backend="dense"`` — ``uint8`` matrices ``x`` and ``z`` of shape
  ``(2n, n)``, with the row-multiplication sign bookkeeping done by a Python
  loop over qubits.  This is the original implementation and the oracle.
* ``backend="packed"`` — the same rows packed into ``np.uint64`` words
  (:mod:`repro.utils.gf2_packed`), with sign bookkeeping done by bitwise
  masks and popcounts.  Row multiplication drops from ``O(n)`` Python
  iterations to ``O(n / 64)`` word operations, which is what makes
  verification of multi-hundred-qubit circuits practical.

Both backends produce bit-identical tableaus, signs and measurement outcomes
for the same seed.  ``x``, ``z`` and ``r`` are always readable; on the packed
backend ``x`` and ``z`` are unpacked *snapshots* (mutate the state through
its methods, not through these views).
"""

from __future__ import annotations

import numpy as np

from repro.utils.backend import DENSE, resolve_backend
from repro.utils.gf2_packed import (
    pack_matrix,
    pauli_phase_terms,
    unpack_matrix,
    words_per_row,
)
from repro.utils.misc import make_rng

__all__ = ["StabilizerState"]

_ONE = np.uint64(1)


class StabilizerState:
    """An ``n``-qubit stabilizer state in the Aaronson–Gottesman tableau form.

    The tableau holds boolean matrices ``x`` and ``z`` of shape ``(2n, n)``
    and a sign vector ``r`` of length ``2n``.  Rows ``0..n-1`` are the
    destabilizer generators and rows ``n..2n-1`` the stabilizer generators.
    A row with bits ``(x, z)`` and sign ``r`` represents the Pauli
    ``(-1)^r * prod_j X_j^{x_j} Z_j^{z_j}`` (with the usual ``Y = iXZ``
    bookkeeping handled by the row-multiplication phase function).

    The state starts as ``|0>^{⊗n}``.
    """

    def __init__(
        self,
        num_qubits: int,
        seed: int | np.random.Generator | None = None,
        backend: str | None = None,
    ):
        if num_qubits <= 0:
            raise ValueError(f"num_qubits must be positive, got {num_qubits}")
        self.num_qubits = int(num_qubits)
        self.backend = resolve_backend(backend)
        # The arena backend shares the word-packed tableau fast path.
        self._packed = self.backend != DENSE
        n = self.num_qubits
        self.r = np.zeros(2 * n, dtype=np.uint8)
        if self._packed:
            n_words = words_per_row(n)
            self._num_words = n_words
            self._xw = np.zeros((2 * n, n_words), dtype=np.uint64)
            self._zw = np.zeros((2 * n, n_words), dtype=np.uint64)
            # Destabilizer i = X_i, stabilizer i = Z_i.
            for i in range(n):
                word, bit = divmod(i, 64)
                self._xw[i, word] |= _ONE << np.uint64(bit)
                self._zw[n + i, word] |= _ONE << np.uint64(bit)
        else:
            self._x = np.zeros((2 * n, n), dtype=np.uint8)
            self._z = np.zeros((2 * n, n), dtype=np.uint8)
            for i in range(n):
                self._x[i, i] = 1
                self._z[n + i, i] = 1
        self._rng = make_rng(seed)

    # ------------------------------------------------------------------ #
    # Tableau views
    # ------------------------------------------------------------------ #

    @property
    def x(self) -> np.ndarray:
        """X bits of all ``2n`` Pauli rows (a snapshot on the packed backend)."""
        if self._packed:
            return unpack_matrix(self._xw, self.num_qubits)
        return self._x

    @x.setter
    def x(self, value: np.ndarray) -> None:
        if self._packed:
            self._xw = pack_matrix(value)
        else:
            self._x = np.array(value, dtype=np.uint8, copy=True)

    @property
    def z(self) -> np.ndarray:
        """Z bits of all ``2n`` Pauli rows (a snapshot on the packed backend)."""
        if self._packed:
            return unpack_matrix(self._zw, self.num_qubits)
        return self._z

    @z.setter
    def z(self, value: np.ndarray) -> None:
        if self._packed:
            self._zw = pack_matrix(value)
        else:
            self._z = np.array(value, dtype=np.uint8, copy=True)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_graph_edges(
        cls,
        num_qubits: int,
        edges: list[tuple[int, int]],
        seed: int | np.random.Generator | None = None,
        backend: str | None = None,
    ) -> "StabilizerState":
        """Build the graph state ``|G>`` on ``num_qubits`` qubits.

        The construction is operational (H on every qubit followed by a CZ per
        edge) and therefore exact by definition of the graph state.
        """
        state = cls(num_qubits, seed=seed, backend=backend)
        for q in range(num_qubits):
            state.h(q)
        for u, v in edges:
            state.cz(u, v)
        return state

    def copy(self) -> "StabilizerState":
        """Return an independent copy sharing nothing with ``self``."""
        clone = StabilizerState(self.num_qubits, backend=self.backend)
        if self._packed:
            clone._xw = self._xw.copy()
            clone._zw = self._zw.copy()
        else:
            clone._x = self._x.copy()
            clone._z = self._z.copy()
        clone.r = self.r.copy()
        clone._rng = self._rng
        return clone

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #

    def _check_qubit(self, qubit: int) -> None:
        if not 0 <= qubit < self.num_qubits:
            raise ValueError(
                f"qubit index {qubit} out of range for {self.num_qubits} qubits"
            )

    def _x_col(self, qubit: int) -> np.ndarray:
        """X bits of column ``qubit`` over all rows, as a uint8 vector."""
        if self._packed:
            word, bit = divmod(qubit, 64)
            return ((self._xw[:, word] >> np.uint64(bit)) & _ONE).astype(np.uint8)
        return self._x[:, qubit]

    def _z_col(self, qubit: int) -> np.ndarray:
        """Z bits of column ``qubit`` over all rows, as a uint8 vector."""
        if self._packed:
            word, bit = divmod(qubit, 64)
            return ((self._zw[:, word] >> np.uint64(bit)) & _ONE).astype(np.uint8)
        return self._z[:, qubit]

    @staticmethod
    def _phase_exponent(x1: int, z1: int, x2: int, z2: int) -> int:
        """Exponent of ``i`` produced when multiplying single-qubit Paulis.

        This is the ``g`` function of Aaronson & Gottesman: the power of ``i``
        (in ``{-1, 0, 1}``) picked up when the Pauli described by ``(x1, z1)``
        is multiplied on the right by the Pauli ``(x2, z2)``.
        """
        if x1 == 0 and z1 == 0:
            return 0
        if x1 == 1 and z1 == 1:
            return z2 - x2
        if x1 == 1 and z1 == 0:
            return z2 * (2 * x2 - 1)
        return x2 * (1 - 2 * z2)

    def _rowsum(self, target: int, source: int) -> None:
        """Multiply row ``target`` by row ``source`` (in place), tracking sign."""
        n = self.num_qubits
        if self._packed:
            phase = 2 * int(self.r[target]) + 2 * int(self.r[source])
            phase += int(
                pauli_phase_terms(
                    self._xw[source], self._zw[source],
                    self._xw[target], self._zw[target],
                )
            )
            phase %= 4
            self.r[target] = 1 if phase == 2 else 0
            self._xw[target] ^= self._xw[source]
            self._zw[target] ^= self._zw[source]
            return
        phase = 2 * int(self.r[target]) + 2 * int(self.r[source])
        for j in range(n):
            phase += self._phase_exponent(
                int(self._x[source, j]),
                int(self._z[source, j]),
                int(self._x[target, j]),
                int(self._z[target, j]),
            )
        phase %= 4
        # For valid tableaus the result is always 0 or 2 (never +/- i).
        self.r[target] = 1 if phase == 2 else 0
        self._x[target] ^= self._x[source]
        self._z[target] ^= self._z[source]

    def _rowsum_many(self, targets: np.ndarray, source: int) -> None:
        """Multiply every row in ``targets`` by row ``source``; packed only."""
        phases = (
            2 * self.r[targets].astype(np.int64)
            + 2 * int(self.r[source])
            + pauli_phase_terms(
                self._xw[source], self._zw[source],
                self._xw[targets], self._zw[targets],
            )
        ) % 4
        self.r[targets] = (phases == 2).astype(np.uint8)
        self._xw[targets] ^= self._xw[source]
        self._zw[targets] ^= self._zw[source]

    def _stabilizer_product_sign(self, selected: np.ndarray) -> int:
        """Sign of the product of the selected stabilizer generators.

        ``selected`` is a 0/1 vector of length ``n``; the product multiplies
        stabilizer rows ``n + i`` for every selected ``i`` in increasing
        order, starting from the identity, and the accumulated sign bit is
        returned (the bit pattern of the product itself is implied by the
        selection and not needed by callers).
        """
        n = self.num_qubits
        if self._packed:
            # The sequential left-fold satisfies
            # ``2 * sign_final == sum_k (2 * r_k + g_k)  (mod 4)`` (every
            # intermediate product is a valid Pauli, so each partial phase is
            # 0 or 2 mod 4), which lets the whole product be evaluated in one
            # batch: prefix-XOR the selected rows to obtain each step's
            # accumulated Pauli and sum the phase terms vectorised.
            rows = np.nonzero(np.asarray(selected[:n]) != 0)[0]
            if rows.size == 0:
                return 0
            sel_x = self._xw[n + rows]
            sel_z = self._zw[n + rows]
            prefix_x = np.zeros_like(sel_x)
            prefix_z = np.zeros_like(sel_z)
            if rows.size > 1:
                np.bitwise_xor.accumulate(sel_x[:-1], axis=0, out=prefix_x[1:])
                np.bitwise_xor.accumulate(sel_z[:-1], axis=0, out=prefix_z[1:])
            phase = 2 * int(self.r[n + rows].astype(np.int64).sum()) + int(
                pauli_phase_terms(sel_x, sel_z, prefix_x, prefix_z).sum()
            )
            return 1 if phase % 4 == 2 else 0
        scratch_x = np.zeros(n, dtype=np.uint8)
        scratch_z = np.zeros(n, dtype=np.uint8)
        scratch_r = 0
        for i in range(n):
            if selected[i]:
                phase = 2 * scratch_r + 2 * int(self.r[n + i])
                for j in range(n):
                    phase += self._phase_exponent(
                        int(self._x[n + i, j]),
                        int(self._z[n + i, j]),
                        int(scratch_x[j]),
                        int(scratch_z[j]),
                    )
                phase %= 4
                scratch_r = 1 if phase == 2 else 0
                scratch_x ^= self._x[n + i]
                scratch_z ^= self._z[n + i]
        return scratch_r

    # ------------------------------------------------------------------ #
    # Single-qubit gates
    # ------------------------------------------------------------------ #

    def h(self, qubit: int) -> None:
        """Apply a Hadamard gate: X<->Z, Y->-Y."""
        self._check_qubit(qubit)
        q = qubit
        if self._packed:
            word, bit = divmod(q, 64)
            x_col = (self._xw[:, word] >> np.uint64(bit)) & _ONE
            z_col = (self._zw[:, word] >> np.uint64(bit)) & _ONE
            self.r ^= (x_col & z_col).astype(np.uint8)
            swap_mask = (x_col ^ z_col) << np.uint64(bit)
            self._xw[:, word] ^= swap_mask
            self._zw[:, word] ^= swap_mask
            return
        self.r ^= self._x[:, q] & self._z[:, q]
        self._x[:, q], self._z[:, q] = self._z[:, q].copy(), self._x[:, q].copy()

    def s(self, qubit: int) -> None:
        """Apply the phase gate S = diag(1, i): X->Y, Y->-X, Z->Z."""
        self._check_qubit(qubit)
        q = qubit
        if self._packed:
            word, bit = divmod(q, 64)
            x_col = (self._xw[:, word] >> np.uint64(bit)) & _ONE
            z_col = (self._zw[:, word] >> np.uint64(bit)) & _ONE
            self.r ^= (x_col & z_col).astype(np.uint8)
            self._zw[:, word] ^= x_col << np.uint64(bit)
            return
        self.r ^= self._x[:, q] & self._z[:, q]
        self._z[:, q] ^= self._x[:, q]

    def sdg(self, qubit: int) -> None:
        """Apply S-dagger: X->-Y, Y->X, Z->Z."""
        self._check_qubit(qubit)
        q = qubit
        if self._packed:
            word, bit = divmod(q, 64)
            x_col = (self._xw[:, word] >> np.uint64(bit)) & _ONE
            z_col = (self._zw[:, word] >> np.uint64(bit)) & _ONE
            self.r ^= (x_col & (z_col ^ _ONE)).astype(np.uint8)
            self._zw[:, word] ^= x_col << np.uint64(bit)
            return
        self.r ^= self._x[:, q] & (1 - self._z[:, q])
        self._z[:, q] ^= self._x[:, q]

    def x_gate(self, qubit: int) -> None:
        """Apply Pauli X (bit flip): Z->-Z, Y->-Y."""
        self._check_qubit(qubit)
        self.r ^= self._z_col(qubit)

    def z_gate(self, qubit: int) -> None:
        """Apply Pauli Z (phase flip): X->-X, Y->-Y."""
        self._check_qubit(qubit)
        self.r ^= self._x_col(qubit)

    def y_gate(self, qubit: int) -> None:
        """Apply Pauli Y: X->-X, Z->-Z."""
        self._check_qubit(qubit)
        self.r ^= self._x_col(qubit) ^ self._z_col(qubit)

    def sqrt_x(self, qubit: int) -> None:
        """Apply e^{-i pi/4 X} (a square root of X): Z->-Y, X->X.

        Implemented as the composition H, S, H which has the identical
        conjugation action (the two unitaries differ only by a global phase,
        which is irrelevant for stabilizer states).
        """
        self.h(qubit)
        self.s(qubit)
        self.h(qubit)

    def sqrt_x_dag(self, qubit: int) -> None:
        """Apply e^{+i pi/4 X}: Z->Y, X->X (inverse of :meth:`sqrt_x`)."""
        self.h(qubit)
        self.sdg(qubit)
        self.h(qubit)

    # ------------------------------------------------------------------ #
    # Two-qubit gates
    # ------------------------------------------------------------------ #

    def cnot(self, control: int, target: int) -> None:
        """Apply CNOT with the given control and target qubits."""
        self._check_qubit(control)
        self._check_qubit(target)
        if control == target:
            raise ValueError("control and target must differ")
        c, t = control, target
        if self._packed:
            word_c, bit_c = divmod(c, 64)
            word_t, bit_t = divmod(t, 64)
            x_c = (self._xw[:, word_c] >> np.uint64(bit_c)) & _ONE
            z_c = (self._zw[:, word_c] >> np.uint64(bit_c)) & _ONE
            x_t = (self._xw[:, word_t] >> np.uint64(bit_t)) & _ONE
            z_t = (self._zw[:, word_t] >> np.uint64(bit_t)) & _ONE
            self.r ^= (x_c & z_t & (x_t ^ z_c ^ _ONE)).astype(np.uint8)
            self._xw[:, word_t] ^= x_c << np.uint64(bit_t)
            self._zw[:, word_c] ^= z_t << np.uint64(bit_c)
            return
        self.r ^= (
            self._x[:, c]
            & self._z[:, t]
            & (self._x[:, t] ^ self._z[:, c] ^ 1)
        )
        self._x[:, t] ^= self._x[:, c]
        self._z[:, c] ^= self._z[:, t]

    def cz(self, qubit_a: int, qubit_b: int) -> None:
        """Apply a controlled-Z gate (symmetric in its arguments)."""
        self.h(qubit_b)
        self.cnot(qubit_a, qubit_b)
        self.h(qubit_b)

    # ------------------------------------------------------------------ #
    # Measurement and reset
    # ------------------------------------------------------------------ #

    def measure_z(self, qubit: int, forced_outcome: int | None = None) -> int:
        """Measure ``qubit`` in the computational (Z) basis.

        Args:
            qubit: index of the measured qubit.
            forced_outcome: when the outcome is *random* (the qubit is in a
                superposition), force it to this value (0 or 1) instead of
                sampling.  Ignored for deterministic outcomes.

        Returns:
            The measurement outcome, 0 or 1.
        """
        self._check_qubit(qubit)
        n = self.num_qubits
        q = qubit
        x_col = self._x_col(q)
        stab_rows_with_x = np.nonzero(x_col[n:])[0]
        if stab_rows_with_x.size:
            # Random outcome.
            pivot = n + int(stab_rows_with_x[0])
            if forced_outcome is None:
                outcome = int(self._rng.integers(0, 2))
            else:
                outcome = int(forced_outcome) & 1
            other_rows = np.nonzero(x_col)[0]
            other_rows = other_rows[other_rows != pivot]
            if self._packed:
                if other_rows.size:
                    self._rowsum_many(other_rows, pivot)
                # The old stabilizer becomes the destabilizer.
                self._xw[pivot - n] = self._xw[pivot]
                self._zw[pivot - n] = self._zw[pivot]
                self.r[pivot - n] = self.r[pivot]
                self._xw[pivot] = 0
                self._zw[pivot] = 0
                word, bit = divmod(q, 64)
                self._zw[pivot, word] = _ONE << np.uint64(bit)
                self.r[pivot] = outcome
                return outcome
            for row in other_rows:
                self._rowsum(int(row), pivot)
            # The old stabilizer becomes the destabilizer.
            self._x[pivot - n] = self._x[pivot].copy()
            self._z[pivot - n] = self._z[pivot].copy()
            self.r[pivot - n] = self.r[pivot]
            self._x[pivot] = 0
            self._z[pivot] = 0
            self._z[pivot, q] = 1
            self.r[pivot] = outcome
            return outcome
        # Deterministic outcome: the sign of Z_q within the stabilizer group
        # is the sign of the product of the stabilizer generators selected by
        # the destabilizer X bits of column q.
        return self._stabilizer_product_sign(x_col[:n])

    def reset(self, qubit: int) -> None:
        """Project ``qubit`` onto the Z basis and flip it to ``|0>``."""
        outcome = self.measure_z(qubit)
        if outcome == 1:
            self.x_gate(qubit)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def stabilizer_matrix(self) -> np.ndarray:
        """Return the stabilizer block as an ``(n, 2n + 1)`` binary matrix.

        Columns ``0..n-1`` are the X bits, ``n..2n-1`` the Z bits and the last
        column the sign bit.  The rows generate the stabilizer group but are
        not in canonical form; see :mod:`repro.stabilizer.canonical`.
        """
        n = self.num_qubits
        return np.concatenate(
            [self.x[n:], self.z[n:], self.r[n:].reshape(-1, 1)], axis=1
        ).astype(np.uint8)

    def packed_stabilizer_rows(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Word-packed copies ``(x_words, z_words, signs)`` of the stabilizer block."""
        n = self.num_qubits
        if self._packed:
            return self._xw[n:].copy(), self._zw[n:].copy(), self.r[n:].copy()
        return (
            pack_matrix(self._x[n:]),
            pack_matrix(self._z[n:]),
            self.r[n:].copy(),
        )

    def contains_pauli(
        self, x_bits: np.ndarray, z_bits: np.ndarray, sign: int = 0
    ) -> bool:
        """Check whether ``(-1)^sign * P`` is in the stabilizer group.

        ``P`` is described by its X/Z bit vectors.  The test expresses the
        candidate as a GF(2) combination of the generators and then verifies
        the accumulated sign.
        """
        n = self.num_qubits
        x_bits = np.asarray(x_bits, dtype=np.uint8) % 2
        z_bits = np.asarray(z_bits, dtype=np.uint8) % 2
        if x_bits.shape != (n,) or z_bits.shape != (n,):
            raise ValueError("pauli bit vectors must have length num_qubits")
        from repro.utils.gf2 import gf2_solve

        generator_matrix = np.concatenate([self.x[n:], self.z[n:]], axis=1).T
        target = np.concatenate([x_bits, z_bits])
        combo = gf2_solve(generator_matrix, target, backend=self.backend)
        if combo is None:
            return False
        return self._stabilizer_product_sign(combo) == (int(sign) & 1)

    def qubit_is_zero(self, qubit: int) -> bool:
        """Return True when ``qubit`` is exactly in ``|0>`` (and unentangled)."""
        self._check_qubit(qubit)
        n = self.num_qubits
        x_bits = np.zeros(n, dtype=np.uint8)
        z_bits = np.zeros(n, dtype=np.uint8)
        z_bits[qubit] = 1
        return self.contains_pauli(x_bits, z_bits, sign=0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StabilizerState(num_qubits={self.num_qubits}, "
            f"backend={self.backend!r})"
        )
