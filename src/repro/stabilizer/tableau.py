"""CHP-style stabilizer tableau simulator (Aaronson & Gottesman 2004).

The :class:`StabilizerState` tracks ``2n`` Pauli rows (``n`` destabilizers and
``n`` stabilizers) over ``n`` qubits together with their signs.  Supported
operations cover everything the emitter compiler emits:

* single-qubit Cliffords: ``h``, ``s``, ``sdg``, ``x``, ``y``, ``z``,
  ``sqrt_x`` (= e^{-i pi/4 X}) and ``sqrt_x_dag``;
* two-qubit Cliffords: ``cnot`` and ``cz``;
* computational-basis measurement (``measure_z``) with either random or
  forced outcomes, and ``reset`` to ``|0>``.

All operations are exact; the class is pure Python + numpy and has no
dependency on the rest of the package, so it can serve as an independent
oracle in tests.
"""

from __future__ import annotations

import numpy as np

from repro.utils.misc import make_rng

__all__ = ["StabilizerState"]


class StabilizerState:
    """An ``n``-qubit stabilizer state in the Aaronson–Gottesman tableau form.

    The tableau holds boolean matrices ``x`` and ``z`` of shape ``(2n, n)``
    and a sign vector ``r`` of length ``2n``.  Rows ``0..n-1`` are the
    destabilizer generators and rows ``n..2n-1`` the stabilizer generators.
    A row with bits ``(x, z)`` and sign ``r`` represents the Pauli
    ``(-1)^r * prod_j X_j^{x_j} Z_j^{z_j}`` (with the usual ``Y = iXZ``
    bookkeeping handled by the row-multiplication phase function).

    The state starts as ``|0>^{⊗n}``.
    """

    def __init__(self, num_qubits: int, seed: int | np.random.Generator | None = None):
        if num_qubits <= 0:
            raise ValueError(f"num_qubits must be positive, got {num_qubits}")
        self.num_qubits = int(num_qubits)
        n = self.num_qubits
        self.x = np.zeros((2 * n, n), dtype=np.uint8)
        self.z = np.zeros((2 * n, n), dtype=np.uint8)
        self.r = np.zeros(2 * n, dtype=np.uint8)
        # Destabilizer i = X_i, stabilizer i = Z_i.
        for i in range(n):
            self.x[i, i] = 1
            self.z[n + i, i] = 1
        self._rng = make_rng(seed)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_graph_edges(
        cls,
        num_qubits: int,
        edges: list[tuple[int, int]],
        seed: int | np.random.Generator | None = None,
    ) -> "StabilizerState":
        """Build the graph state ``|G>`` on ``num_qubits`` qubits.

        The construction is operational (H on every qubit followed by a CZ per
        edge) and therefore exact by definition of the graph state.
        """
        state = cls(num_qubits, seed=seed)
        for q in range(num_qubits):
            state.h(q)
        for u, v in edges:
            state.cz(u, v)
        return state

    def copy(self) -> "StabilizerState":
        """Return an independent copy sharing nothing with ``self``."""
        clone = StabilizerState(self.num_qubits)
        clone.x = self.x.copy()
        clone.z = self.z.copy()
        clone.r = self.r.copy()
        clone._rng = self._rng
        return clone

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #

    def _check_qubit(self, qubit: int) -> None:
        if not 0 <= qubit < self.num_qubits:
            raise ValueError(
                f"qubit index {qubit} out of range for {self.num_qubits} qubits"
            )

    @staticmethod
    def _phase_exponent(x1: int, z1: int, x2: int, z2: int) -> int:
        """Exponent of ``i`` produced when multiplying single-qubit Paulis.

        This is the ``g`` function of Aaronson & Gottesman: the power of ``i``
        (in ``{-1, 0, 1}``) picked up when the Pauli described by ``(x1, z1)``
        is multiplied on the right by the Pauli ``(x2, z2)``.
        """
        if x1 == 0 and z1 == 0:
            return 0
        if x1 == 1 and z1 == 1:
            return z2 - x2
        if x1 == 1 and z1 == 0:
            return z2 * (2 * x2 - 1)
        return x2 * (1 - 2 * z2)

    def _rowsum(self, target: int, source: int) -> None:
        """Multiply row ``target`` by row ``source`` (in place), tracking sign."""
        n = self.num_qubits
        phase = 2 * int(self.r[target]) + 2 * int(self.r[source])
        for j in range(n):
            phase += self._phase_exponent(
                int(self.x[source, j]),
                int(self.z[source, j]),
                int(self.x[target, j]),
                int(self.z[target, j]),
            )
        phase %= 4
        # For valid tableaus the result is always 0 or 2 (never +/- i).
        self.r[target] = 1 if phase == 2 else 0
        self.x[target] ^= self.x[source]
        self.z[target] ^= self.z[source]

    # ------------------------------------------------------------------ #
    # Single-qubit gates
    # ------------------------------------------------------------------ #

    def h(self, qubit: int) -> None:
        """Apply a Hadamard gate: X<->Z, Y->-Y."""
        self._check_qubit(qubit)
        q = qubit
        self.r ^= self.x[:, q] & self.z[:, q]
        self.x[:, q], self.z[:, q] = self.z[:, q].copy(), self.x[:, q].copy()

    def s(self, qubit: int) -> None:
        """Apply the phase gate S = diag(1, i): X->Y, Y->-X, Z->Z."""
        self._check_qubit(qubit)
        q = qubit
        self.r ^= self.x[:, q] & self.z[:, q]
        self.z[:, q] ^= self.x[:, q]

    def sdg(self, qubit: int) -> None:
        """Apply S-dagger: X->-Y, Y->X, Z->Z."""
        self._check_qubit(qubit)
        q = qubit
        self.r ^= self.x[:, q] & (1 - self.z[:, q])
        self.z[:, q] ^= self.x[:, q]

    def x_gate(self, qubit: int) -> None:
        """Apply Pauli X (bit flip): Z->-Z, Y->-Y."""
        self._check_qubit(qubit)
        self.r ^= self.z[:, qubit]

    def z_gate(self, qubit: int) -> None:
        """Apply Pauli Z (phase flip): X->-X, Y->-Y."""
        self._check_qubit(qubit)
        self.r ^= self.x[:, qubit]

    def y_gate(self, qubit: int) -> None:
        """Apply Pauli Y: X->-X, Z->-Z."""
        self._check_qubit(qubit)
        self.r ^= self.x[:, qubit] ^ self.z[:, qubit]

    def sqrt_x(self, qubit: int) -> None:
        """Apply e^{-i pi/4 X} (a square root of X): Z->-Y, X->X.

        Implemented as the composition H, S, H which has the identical
        conjugation action (the two unitaries differ only by a global phase,
        which is irrelevant for stabilizer states).
        """
        self.h(qubit)
        self.s(qubit)
        self.h(qubit)

    def sqrt_x_dag(self, qubit: int) -> None:
        """Apply e^{+i pi/4 X}: Z->Y, X->X (inverse of :meth:`sqrt_x`)."""
        self.h(qubit)
        self.sdg(qubit)
        self.h(qubit)

    # ------------------------------------------------------------------ #
    # Two-qubit gates
    # ------------------------------------------------------------------ #

    def cnot(self, control: int, target: int) -> None:
        """Apply CNOT with the given control and target qubits."""
        self._check_qubit(control)
        self._check_qubit(target)
        if control == target:
            raise ValueError("control and target must differ")
        c, t = control, target
        self.r ^= (
            self.x[:, c]
            & self.z[:, t]
            & (self.x[:, t] ^ self.z[:, c] ^ 1)
        )
        self.x[:, t] ^= self.x[:, c]
        self.z[:, c] ^= self.z[:, t]

    def cz(self, qubit_a: int, qubit_b: int) -> None:
        """Apply a controlled-Z gate (symmetric in its arguments)."""
        self.h(qubit_b)
        self.cnot(qubit_a, qubit_b)
        self.h(qubit_b)

    # ------------------------------------------------------------------ #
    # Measurement and reset
    # ------------------------------------------------------------------ #

    def measure_z(self, qubit: int, forced_outcome: int | None = None) -> int:
        """Measure ``qubit`` in the computational (Z) basis.

        Args:
            qubit: index of the measured qubit.
            forced_outcome: when the outcome is *random* (the qubit is in a
                superposition), force it to this value (0 or 1) instead of
                sampling.  Ignored for deterministic outcomes.

        Returns:
            The measurement outcome, 0 or 1.
        """
        self._check_qubit(qubit)
        n = self.num_qubits
        q = qubit
        stab_rows_with_x = [
            n + i for i in range(n) if self.x[n + i, q]
        ]
        if stab_rows_with_x:
            # Random outcome.
            pivot = stab_rows_with_x[0]
            if forced_outcome is None:
                outcome = int(self._rng.integers(0, 2))
            else:
                outcome = int(forced_outcome) & 1
            for row in range(2 * n):
                if row != pivot and self.x[row, q]:
                    self._rowsum(row, pivot)
            # The old stabilizer becomes the destabilizer.
            self.x[pivot - n] = self.x[pivot].copy()
            self.z[pivot - n] = self.z[pivot].copy()
            self.r[pivot - n] = self.r[pivot]
            self.x[pivot] = 0
            self.z[pivot] = 0
            self.z[pivot, q] = 1
            self.r[pivot] = outcome
            return outcome
        # Deterministic outcome: compute the sign of Z_q in the stabilizer
        # group using a scratch row (index 2n is emulated with temporaries).
        scratch_x = np.zeros(n, dtype=np.uint8)
        scratch_z = np.zeros(n, dtype=np.uint8)
        scratch_r = 0
        for i in range(n):
            if self.x[i, q]:
                # Multiply scratch by stabilizer row n + i.
                phase = 2 * scratch_r + 2 * int(self.r[n + i])
                for j in range(n):
                    phase += self._phase_exponent(
                        int(self.x[n + i, j]),
                        int(self.z[n + i, j]),
                        int(scratch_x[j]),
                        int(scratch_z[j]),
                    )
                phase %= 4
                scratch_r = 1 if phase == 2 else 0
                scratch_x ^= self.x[n + i]
                scratch_z ^= self.z[n + i]
        return int(scratch_r)

    def reset(self, qubit: int) -> None:
        """Project ``qubit`` onto the Z basis and flip it to ``|0>``."""
        outcome = self.measure_z(qubit)
        if outcome == 1:
            self.x_gate(qubit)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def stabilizer_matrix(self) -> np.ndarray:
        """Return the stabilizer block as an ``(n, 2n + 1)`` binary matrix.

        Columns ``0..n-1`` are the X bits, ``n..2n-1`` the Z bits and the last
        column the sign bit.  The rows generate the stabilizer group but are
        not in canonical form; see :mod:`repro.stabilizer.canonical`.
        """
        n = self.num_qubits
        return np.concatenate(
            [self.x[n:], self.z[n:], self.r[n:].reshape(-1, 1)], axis=1
        ).astype(np.uint8)

    def contains_pauli(
        self, x_bits: np.ndarray, z_bits: np.ndarray, sign: int = 0
    ) -> bool:
        """Check whether ``(-1)^sign * P`` is in the stabilizer group.

        ``P`` is described by its X/Z bit vectors.  The test expresses the
        candidate as a GF(2) combination of the generators and then verifies
        the accumulated sign.
        """
        n = self.num_qubits
        x_bits = np.asarray(x_bits, dtype=np.uint8) % 2
        z_bits = np.asarray(z_bits, dtype=np.uint8) % 2
        if x_bits.shape != (n,) or z_bits.shape != (n,):
            raise ValueError("pauli bit vectors must have length num_qubits")
        from repro.utils.gf2 import gf2_solve

        generator_matrix = np.concatenate([self.x[n:], self.z[n:]], axis=1).T
        target = np.concatenate([x_bits, z_bits])
        combo = gf2_solve(generator_matrix, target)
        if combo is None:
            return False
        scratch_x = np.zeros(n, dtype=np.uint8)
        scratch_z = np.zeros(n, dtype=np.uint8)
        scratch_r = 0
        for i in range(n):
            if combo[i]:
                phase = 2 * scratch_r + 2 * int(self.r[n + i])
                for j in range(n):
                    phase += self._phase_exponent(
                        int(self.x[n + i, j]),
                        int(self.z[n + i, j]),
                        int(scratch_x[j]),
                        int(scratch_z[j]),
                    )
                phase %= 4
                scratch_r = 1 if phase == 2 else 0
                scratch_x ^= self.x[n + i]
                scratch_z ^= self.z[n + i]
        return scratch_r == (int(sign) & 1)

    def qubit_is_zero(self, qubit: int) -> bool:
        """Return True when ``qubit`` is exactly in ``|0>`` (and unentangled)."""
        self._check_qubit(qubit)
        n = self.num_qubits
        x_bits = np.zeros(n, dtype=np.uint8)
        z_bits = np.zeros(n, dtype=np.uint8)
        z_bits[qubit] = 1
        return self.contains_pauli(x_bits, z_bits, sign=0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StabilizerState(num_qubits={self.num_qubits})"
