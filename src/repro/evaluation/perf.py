"""Perf-trajectory benchmark behind ``repro bench``.

Four sections pin the compiler's perf trajectory:

* **height function** — the naive from-scratch evaluation (one rank solve
  per prefix, the historical implementation) against the incremental
  :class:`repro.graphs.incremental.CutRankEngine` sweep, checking
  bit-identical heights;
* **end-to-end compile** — :func:`repro.core.compiler.compile_graph` on the
  ``dense`` backend (networkx reduction state, copy-based LC scoring — the
  historical path, kept as the oracle) against the ``packed`` backend
  (bitset reduction engine, LC delta scoring, op-sequence plan scoring),
  checking bit-identical circuits.  The subgraph compile cache is disabled
  here so the section keeps measuring the kernels themselves;
* **subgraph compile cache** — cold-vs-warm ``compile_graph`` on the
  repeated-leaf zoo families (lattice / rotated surface code / random
  regular): uncached, empty-cache and warm-cache timings plus the hit
  rate, checking that warm circuits are bit-identical to uncached ones and
  still verify on the stabilizer simulator;
* **anytime portfolio** — quality-vs-deadline curves of the
  :class:`repro.core.portfolio.PortfolioCompiler` across zoo families: each
  strategy rung timed once and replayed against a deadline grid (the curve
  is monotone by construction — the CI gate), plus live deadline-bounded
  compiles recording elapsed time and deadline misses;
* **arena kernels** — arena-vs-packed medians for the bulk GF(2)
  elimination kernels across matrix widths, with the measured crossover
  size (the figure the auto-selection threshold tracks) and a
  reduction/circuit comparison asserted bit-identical;
* **streaming compile** — bounded-window partition-compiles of >= 1e5-vertex
  lattice/GHZ families under ``tracemalloc``, with a sublinear-peak-memory
  guard and (at small sizes) bit-identity against the whole-graph oracle.

Every section also records its :mod:`tracemalloc` peak in
``peak_memory_bytes``.  ``repro bench`` writes the result to
``BENCH_emitters.json`` so future PRs (and the CI bench-smoke artifact) can
diff the numbers instead of guessing.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
import tracemalloc
from pathlib import Path
from typing import Callable, Hashable, Sequence

import numpy as np

from repro.core.ordering import optimize_emission_ordering
from repro.graphs.entanglement import cut_rank
from repro.graphs.graph_state import GraphState
from repro.graphs.incremental import CutRankEngine
from repro.utils.backend import get_default_backend, resolve_backend, use_backend

__all__ = [
    "CACHE_BENCH_FAMILIES",
    "DEFAULT_ARENA_SIZES",
    "DEFAULT_BENCH_SIZES",
    "DEFAULT_CACHE_SIZES",
    "DEFAULT_COMPILE_SIZES",
    "DEFAULT_PORTFOLIO_DEADLINES_MS",
    "DEFAULT_PORTFOLIO_SIZES",
    "DEFAULT_STREAM_SIZES",
    "PORTFOLIO_BENCH_FAMILIES",
    "STREAM_BENCH_FAMILIES",
    "bench_graph",
    "naive_height_function",
    "run_arena_bench",
    "run_cache_bench",
    "run_compile_bench",
    "run_emitter_bench",
    "run_portfolio_bench",
    "run_stream_bench",
    "write_bench_file",
]

Vertex = Hashable

#: Default sweep for ``repro bench``: the assertion threshold sits at 256;
#: 512 is the paper-scale point the trajectory targets (>= 10x incremental).
DEFAULT_BENCH_SIZES = (64, 128, 256, 512)

#: Default sweep for the end-to-end compile section (the dense comparator
#: compiles each size once per repeat, so the sweep stays modest).
DEFAULT_COMPILE_SIZES = (32, 64, 128, 256)

#: Default sweep for the subgraph-compile-cache section (vertex counts; the
#: surface family rounds to the closest odd code distance).
DEFAULT_CACHE_SIZES = (128, 256)

#: Repeated-leaf zoo families measured by the cache section: their
#: partitions emit the same small subgraphs over and over up to relabeling.
CACHE_BENCH_FAMILIES = ("lattice", "surface", "regular")

#: Default sweep for the anytime-portfolio section (vertex counts; small
#: enough that every rung — including the exact MIP — finishes quickly).
DEFAULT_PORTFOLIO_SIZES = (16, 24)

#: Default deadline grid for the anytime-portfolio section: from "barely
#: the natural rung" to "the whole portfolio".
DEFAULT_PORTFOLIO_DEADLINES_MS = (50.0, 200.0, 1000.0, 5000.0)

#: Zoo families swept by the portfolio section — a dense random family, a
#: structured rewired one, and a star-shaped family the selector halves the
#: anneal budget for.
PORTFOLIO_BENCH_FAMILIES = ("regular", "smallworld", "ghz")

#: Default matrix widths for the arena-vs-packed kernel section.  The sweep
#: straddles :data:`repro.utils.backend.DEFAULT_ARENA_THRESHOLD` so the
#: measured crossover lands inside it.
DEFAULT_ARENA_SIZES = (64, 128, 256, 512, 1024)

#: Vertex count of the arena-vs-packed reduction/circuit comparison (one
#: size: the point of the entry is bit-identity plus a representative pair
#: of medians, not a second sweep).
DEFAULT_ARENA_REDUCE_SIZE = 256

#: Default vertex counts for the streaming-compile section.  The top size is
#: the paper-scale >= 1e5-vertex point the tentpole targets; the 4x size
#: ratio against the lower point is what the sublinear-memory guard checks.
DEFAULT_STREAM_SIZES = (25_600, 102_400)

#: Families swept by the streaming section: the 2-D lattice (window =
#: O(sqrt(n)) for square grids) and the GHZ star (window = one leaf chunk
#: plus the pinned hub).
STREAM_BENCH_FAMILIES = ("lattice", "ghz")

#: Streamed compiles at or below this vertex count are additionally verified
#: bit-identical against ``greedy_reduce`` on the materialised graph.
STREAM_VERIFY_LIMIT = 2_500


def bench_graph(num_vertices: int, seed: int = 2025) -> GraphState:
    """The benchmark's random graph: ~6 random edges per vertex.

    Dense enough that cut ranks are non-trivial at every prefix, sparse
    enough to be realistic for photonic resource states.
    """
    rng = np.random.default_rng(seed)
    graph = GraphState(vertices=range(num_vertices))
    if num_vertices < 2:
        return graph
    for _ in range(6 * num_vertices):
        u, v = rng.choice(num_vertices, size=2, replace=False)
        graph.add_edge(int(u), int(v))
    return graph


def naive_height_function(
    graph: GraphState,
    ordering: Sequence[Vertex] | None = None,
    backend: str | None = None,
) -> list[int]:
    """The pre-incremental height function: one cut rank per prefix.

    Kept as the from-scratch comparator for the incremental engine — the
    same GF(2) kernel, but ``O(n)`` independent rank solves instead of one
    online sweep (``O(n^4 / w)`` vs ``O(n^3 / w)`` per ordering).
    """
    if ordering is None:
        ordering = graph.vertices()
    ordering = list(ordering)
    if set(ordering) != set(graph.vertices()) or len(ordering) != graph.num_vertices:
        raise ValueError("ordering must be a permutation of the graph's vertices")
    heights = [0]
    for i in range(1, len(ordering) + 1):
        heights.append(cut_rank(graph, ordering[:i], backend=backend))
    return heights


def _median_seconds(func: Callable[[], object], repeats: int) -> float:
    times = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        func()
        times.append(time.perf_counter() - start)
    return sorted(times)[len(times) // 2]


def _git_revision() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except OSError:  # pragma: no cover - git missing entirely
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


def run_compile_bench(
    sizes: Sequence[int] = DEFAULT_COMPILE_SIZES,
    repeats: int = 2,
    seed: int = 2025,
) -> list[dict]:
    """Measure end-to-end ``compile_graph`` on the dense vs packed backends.

    For every size the two backends are first checked to produce
    *bit-identical* circuits (the packed reduction engine is exact, not a
    heuristic), then timed; medians and the speedup are reported together
    with the compiled circuit's headline metrics.  The subgraph compile
    cache is disabled throughout so the section keeps measuring the GF(2)
    kernels rather than memoized leaf searches (the cache has its own
    section, :func:`run_cache_bench`).

    Parameters
    ----------
    sizes : Sequence[int], optional
        Graph sizes (vertices) to sweep.
    repeats : int, optional
        Timing repetitions per backend and size; the median is reported.
    seed : int, optional
        Graph-sampling seed.

    Returns
    -------
    list[dict]
        One JSON-serialisable entry per size.
    """
    from repro.core.compiler import compile_graph

    results = []
    for size in sizes:
        graph = bench_graph(int(size), seed=seed)
        packed_result = compile_graph(graph, gf2_backend="packed", subgraph_cache=False)
        dense_result = compile_graph(graph, gf2_backend="dense", subgraph_cache=False)
        if packed_result.circuit.gates != dense_result.circuit.gates:
            raise AssertionError(  # pragma: no cover - correctness guard
                f"packed compile diverges from the dense oracle at size {size}"
            )
        packed_median = _median_seconds(
            lambda g=graph: compile_graph(g, gf2_backend="packed", subgraph_cache=False),
            repeats,
        )
        dense_median = _median_seconds(
            lambda g=graph: compile_graph(g, gf2_backend="dense", subgraph_cache=False),
            repeats,
        )
        results.append(
            {
                "size": int(size),
                "num_edges": graph.num_edges,
                "naive_median_seconds": dense_median,
                "packed_median_seconds": packed_median,
                "speedup": (
                    dense_median / packed_median
                    if packed_median > 0
                    else float("inf")
                ),
                "num_emitter_emitter_cnots": (
                    packed_result.metrics.num_emitter_emitter_cnots
                ),
                "num_emitters": packed_result.metrics.num_emitters,
            }
        )
    return results


def _cache_bench_spec(family: str, size: int):
    """A :class:`repro.pipeline.jobs.GraphSpec` of roughly ``size`` vertices.

    The ``surface`` family is parameterised by code distance (``2 d^2 - 1``
    vertices), so the requested vertex count is rounded to the closest odd
    distance ``>= 3``.
    """
    from repro.pipeline.jobs import GraphSpec

    if family == "surface":
        import math

        distance = max(3, round(math.sqrt((size + 1) / 2)))
        if distance % 2 == 0:
            distance += 1
        return GraphSpec(family=family, size=distance)
    return GraphSpec(family=family, size=size)


def run_cache_bench(
    sizes: Sequence[int] = DEFAULT_CACHE_SIZES,
    repeats: int = 2,
    families: Sequence[str] = CACHE_BENCH_FAMILIES,
) -> list[dict]:
    """Cold-vs-warm ``compile_graph`` through the subgraph compile cache.

    For every ``(family, size)`` point three configurations are timed:

    * ``cold`` — ``subgraph_cache=False``: every leaf search runs, the
      historical (pre-cache) behaviour;
    * ``first_run`` — an *empty* process cache (isomorphic leaves within the
      one graph already coalesce, but every distinct leaf is searched once);
    * ``warm`` — the populated cache (every leaf is a hit).

    Warm circuits are asserted bit-identical to the cold compile and
    re-verified on the stabilizer simulator — the cache may only ever change
    *where* a result comes from, never what it is.

    Parameters
    ----------
    sizes : Sequence[int], optional
        Approximate vertex counts to sweep.
    repeats : int, optional
        Timing repetitions per configuration; the median is reported.
    families : Sequence[str], optional
        Zoo families to measure (default: the repeated-leaf trio).

    Returns
    -------
    list[dict]
        One JSON-serialisable entry per ``(family, size)`` point.
    """
    from repro.circuit.validation import verify_circuit_generates
    from repro.core.compile_cache import get_process_cache, reset_process_cache
    from repro.core.compiler import compile_graph

    results = []
    for size in sizes:
        for family in families:
            spec = _cache_bench_spec(family, int(size))
            graph = spec.build()

            cold_result = compile_graph(graph, subgraph_cache=False)
            cold_median = _median_seconds(
                lambda g=graph: compile_graph(g, subgraph_cache=False), repeats
            )

            first_run_times = []
            for _ in range(max(1, repeats)):
                # A first run must start from an empty cache every time.
                reset_process_cache()
                start = time.perf_counter()
                compile_graph(graph)
                first_run_times.append(time.perf_counter() - start)
            first_run_median = sorted(first_run_times)[len(first_run_times) // 2]

            cache = get_process_cache()
            stats_before = cache.stats.snapshot()
            warm_result = compile_graph(graph)
            warm_stats = cache.stats.delta(stats_before)
            warm_median = _median_seconds(lambda g=graph: compile_graph(g), repeats)
            reset_process_cache()

            if warm_result.circuit.gates != cold_result.circuit.gates:
                raise AssertionError(  # pragma: no cover - correctness guard
                    f"warm-cache compile diverges from the cold compile "
                    f"for {family} at size {size}"
                )
            if not verify_circuit_generates(
                warm_result.circuit,
                graph,
                photon_of_vertex=warm_result.sequence.photon_of_vertex,
            ):
                raise AssertionError(  # pragma: no cover - correctness guard
                    f"warm-cache circuit fails verification for {family} "
                    f"at size {size}"
                )

            results.append(
                {
                    "family": family,
                    "size": int(size),
                    "spec_size": spec.size,
                    "num_vertices": graph.num_vertices,
                    "num_edges": graph.num_edges,
                    "cold_median_seconds": cold_median,
                    "first_run_median_seconds": first_run_median,
                    "warm_median_seconds": warm_median,
                    "warm_speedup": (
                        cold_median / warm_median if warm_median > 0 else float("inf")
                    ),
                    "first_run_speedup": (
                        first_run_median / warm_median
                        if warm_median > 0
                        else float("inf")
                    ),
                    "warm_hit_rate": warm_stats["hit_rate"],
                    "warm_hits": warm_stats["hits"],
                    "warm_misses": warm_stats["misses"],
                    "num_emitter_emitter_cnots": (
                        warm_result.metrics.num_emitter_emitter_cnots
                    ),
                }
            )
    return results


def _quality_dict(quality) -> dict:
    """The portfolio quality triple as a keyed JSON object."""
    return {
        "num_emitter_emitter_cnots": quality[0],
        "average_photon_loss_duration": quality[1],
        "duration": quality[2],
    }


def run_portfolio_bench(
    sizes: Sequence[int] = DEFAULT_PORTFOLIO_SIZES,
    deadlines_ms: Sequence[float] = DEFAULT_PORTFOLIO_DEADLINES_MS,
    seed: int = 2025,
    families: Sequence[str] = PORTFOLIO_BENCH_FAMILIES,
) -> list[dict]:
    """Anytime-portfolio quality vs deadline across zoo families.

    For every ``(family, size)`` point the full portfolio is compiled once
    with every rung timed individually, then the per-rung timings are
    *replayed* against each deadline: a rung is counted as within budget
    when the cumulative rung time still fits (rung 0, the natural order,
    always runs — matching :class:`repro.core.portfolio.PortfolioCompiler`
    semantics).  Because larger deadlines admit a superset of rungs and the
    reported quality is the best over the admitted prefix, the replayed
    ``anytime_curve`` is monotonically non-degrading by construction —
    which is exactly the property the CI bench-smoke gate asserts, without
    the noise of live wall clocks.

    A second ``live`` sub-section then runs one *real* deadline-bounded
    compile per grid point, recording the elapsed time and whether the
    deadline was missed, so the record also shows actual anytime behaviour
    (p99 / miss-rate material for the tracked ``BENCH_emitters.json``).

    Parameters
    ----------
    sizes : Sequence[int], optional
        Approximate vertex counts to sweep.
    deadlines_ms : Sequence[float], optional
        Deadline grid in milliseconds (swept in increasing order).
    seed : int, optional
        Recorded for provenance (the zoo specs are seeded internally).
    families : Sequence[str], optional
        Zoo families to measure.

    Returns
    -------
    list[dict]
        One JSON-serialisable entry per ``(family, size)`` point with
        ``rungs``, ``anytime_curve`` and ``live`` sub-sections.
    """
    from repro.core.portfolio import PortfolioCompiler
    from repro.evaluation.experiments import fast_config

    grid = sorted(float(d) for d in deadlines_ms)
    results = []
    for size in sizes:
        for family in families:
            spec = _cache_bench_spec(family, int(size))
            graph = spec.build()
            config = fast_config()
            full = PortfolioCompiler(config).compile(graph, family=family)

            curve = []
            for deadline in grid:
                elapsed_ms = 0.0
                admitted = 0
                best = None
                for index, outcome in enumerate(full.outcomes):
                    cost_ms = outcome.seconds * 1000.0
                    if index > 0 and elapsed_ms + cost_ms > deadline:
                        break
                    elapsed_ms += cost_ms
                    admitted += 1
                    if best is None or outcome.quality < best:
                        best = outcome.quality
                curve.append(
                    {
                        "deadline_ms": deadline,
                        "rungs_run": admitted,
                        "replay_ms": elapsed_ms,
                        "quality": _quality_dict(best),
                    }
                )

            live = []
            for deadline in grid:
                run = PortfolioCompiler(config).compile(
                    graph, deadline_ms=deadline, family=family
                )
                live.append(
                    {
                        "deadline_ms": deadline,
                        "winner": run.winner,
                        "deadline_missed": run.deadline_missed,
                        "seconds_elapsed": run.elapsed_seconds,
                        "rungs_run": sum(
                            1 for o in run.outcomes if o.status == "ran"
                        ),
                        "quality": _quality_dict(run.quality),
                    }
                )

            results.append(
                {
                    "family": family,
                    "size": int(size),
                    "spec_size": spec.size,
                    "num_vertices": graph.num_vertices,
                    "num_edges": graph.num_edges,
                    "seed": int(seed),
                    "num_rungs": len(full.outcomes),
                    "winner": full.winner,
                    "rungs": [o.as_record() for o in full.outcomes],
                    "anytime_curve": curve,
                    "live": live,
                }
            )
    return results


def _traced_peak(func: Callable[[], object]) -> tuple[object, int]:
    """Run ``func`` and return ``(result, peak traced bytes)``.

    Uses :mod:`tracemalloc` so the figure is allocation truth, not RSS noise.
    Nest-safe: when tracing is already active the peak counter is reset
    instead of restarted, so sections can wrap sub-sections.
    """
    already = tracemalloc.is_tracing()
    if not already:
        tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        result = func()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not already:
            tracemalloc.stop()
    return result, int(peak)


def run_arena_bench(
    sizes: Sequence[int] = DEFAULT_ARENA_SIZES,
    repeats: int = 3,
    seed: int = 2025,
    reduce_size: int = DEFAULT_ARENA_REDUCE_SIZE,
) -> dict:
    """Arena-vs-packed GF(2) kernel medians and the measured crossover.

    Two sub-sections:

    * **kernel sweep** — square random matrices of every width in ``sizes``
      pushed through both implementations of the bulk Gauss–Jordan kernels
      (``rref``; ``rank`` is reported alongside as the roughly-at-parity
      comparator), results asserted bit-identical, medians recorded.  The
      ``crossover_size`` is the smallest swept width where the arena rref
      beats packed — the figure
      :data:`repro.utils.backend.DEFAULT_ARENA_THRESHOLD` tracks.
    * **reduction comparison** — one ``greedy_reduce`` plus one
      :class:`~repro.graphs.incremental.CutRankEngine` sweep at
      ``reduce_size`` vertices on each backend, with the operation sequences,
      the forward **circuits** and the height profiles asserted bit-identical
      before timing.  (Single-row online updates have nothing to batch, so
      packed is expected to lead here — the point of recording both is to
      keep the auto-selection boundary honest.)

    Returns
    -------
    dict
        JSON-serialisable record with ``kernel_results``, ``crossover_size``
        and the reduction/heights medians.
    """
    from repro.core.strategies import greedy_reduce
    from repro.utils import gf2_arena, gf2_packed
    from repro.utils.backend import DEFAULT_ARENA_THRESHOLD

    rng = np.random.default_rng(seed)
    kernel_results = []
    crossover = None
    for size in sizes:
        matrix = rng.integers(0, 2, size=(int(size), int(size)), dtype=np.uint8)
        packed_rref, packed_pivots = gf2_packed.packed_gf2_rref(matrix)
        arena_rref, arena_pivots = gf2_arena.arena_gf2_rref(matrix)
        if packed_pivots != arena_pivots or not np.array_equal(packed_rref, arena_rref):
            raise AssertionError(  # pragma: no cover - correctness guard
                f"arena rref diverges from the packed result at width {size}"
            )
        if gf2_packed.packed_gf2_rank(matrix) != gf2_arena.arena_gf2_rank(matrix):
            raise AssertionError(  # pragma: no cover - correctness guard
                f"arena rank diverges from the packed result at width {size}"
            )
        packed_rref_median = _median_seconds(
            lambda m=matrix: gf2_packed.packed_gf2_rref(m), repeats
        )
        arena_rref_median = _median_seconds(
            lambda m=matrix: gf2_arena.arena_gf2_rref(m), repeats
        )
        packed_rank_median = _median_seconds(
            lambda m=matrix: gf2_packed.packed_gf2_rank(m), repeats
        )
        arena_rank_median = _median_seconds(
            lambda m=matrix: gf2_arena.arena_gf2_rank(m), repeats
        )
        if crossover is None and arena_rref_median < packed_rref_median:
            crossover = int(size)
        kernel_results.append(
            {
                "size": int(size),
                "packed_rref_median_seconds": packed_rref_median,
                "arena_rref_median_seconds": arena_rref_median,
                "rref_speedup": (
                    packed_rref_median / arena_rref_median
                    if arena_rref_median > 0
                    else float("inf")
                ),
                "packed_rank_median_seconds": packed_rank_median,
                "arena_rank_median_seconds": arena_rank_median,
            }
        )

    graph = bench_graph(int(reduce_size), seed=seed)
    packed_seq = greedy_reduce(graph, backend="packed")
    arena_seq = greedy_reduce(graph, backend="arena")
    if packed_seq.operations != arena_seq.operations:
        raise AssertionError(  # pragma: no cover - correctness guard
            f"arena reduction diverges from packed at size {reduce_size}"
        )
    if packed_seq.to_circuit().gates != arena_seq.to_circuit().gates:
        raise AssertionError(  # pragma: no cover - correctness guard
            f"arena circuit diverges from packed at size {reduce_size}"
        )
    ordering = graph.vertices()
    packed_heights = CutRankEngine(graph, checkpoint=False, backend="packed").heights(
        ordering
    )
    arena_heights = CutRankEngine(graph, checkpoint=False, backend="arena").heights(
        ordering
    )
    if packed_heights != arena_heights:
        raise AssertionError(  # pragma: no cover - correctness guard
            f"arena heights diverge from packed at size {reduce_size}"
        )
    reduce_packed_median = _median_seconds(
        lambda g=graph: greedy_reduce(g, backend="packed"), repeats
    )
    reduce_arena_median = _median_seconds(
        lambda g=graph: greedy_reduce(g, backend="arena"), repeats
    )
    heights_packed_median = _median_seconds(
        lambda g=graph, o=ordering: CutRankEngine(
            g, checkpoint=False, backend="packed"
        ).heights(o),
        repeats,
    )
    heights_arena_median = _median_seconds(
        lambda g=graph, o=ordering: CutRankEngine(
            g, checkpoint=False, backend="arena"
        ).heights(o),
        repeats,
    )
    return {
        "sizes": [int(s) for s in sizes],
        "kernel_results": kernel_results,
        "crossover_size": crossover,
        "default_threshold": DEFAULT_ARENA_THRESHOLD,
        "reduce_size": int(reduce_size),
        "circuits_bit_identical": True,
        "reduce_packed_median_seconds": reduce_packed_median,
        "reduce_arena_median_seconds": reduce_arena_median,
        "heights_packed_median_seconds": heights_packed_median,
        "heights_arena_median_seconds": heights_arena_median,
    }


def run_stream_bench(
    sizes: Sequence[int] = DEFAULT_STREAM_SIZES,
    families: Sequence[str] = STREAM_BENCH_FAMILIES,
    seed: int = 2025,
    chunk: int | None = 1,
    verify_limit: int = STREAM_VERIFY_LIMIT,
) -> list[dict]:
    """Streaming partition-compiles with tracked (sublinear) peak memory.

    Every ``(family, size)`` point runs one :func:`repro.core.streaming.
    compile_stream` under :mod:`tracemalloc` and records the traced peak,
    the window statistics and the compile outcome.  Sizes at or below
    ``verify_limit`` are additionally compiled with operation collection and
    asserted **bit-identical** to ``greedy_reduce`` on the materialised
    graph — the CI smoke run drives this path with tiny sizes.

    After the sweep, every family whose largest/smallest size ratio is at
    least 4 must show a traced-peak ratio below three quarters of the size
    ratio — the sublinear-memory guard (square lattices scale the window as
    ``O(sqrt(n))``, the GHZ star as ``O(1)``, so real regressions trip it
    with a wide margin).  The guard only applies when the smallest swept
    size has at least 2048 vertices: below that, fixed per-compile
    overheads dominate the traced peak and the ratio is noise, so tiny CI
    sweeps rely on the absolute memory ceiling instead.

    Parameters
    ----------
    sizes : Sequence[int], optional
        Approximate vertex counts to sweep.
    families : Sequence[str], optional
        Streaming families (subset of
        :data:`repro.graphs.lazy.STREAM_FAMILIES`).
    seed : int, optional
        Spec seed (stochastic families only).
    chunk : int | None, optional
        Region size override (lattice rows per band / GHZ leaves per chunk);
        ``None`` keeps each family's default.  The default of 1 lattice row
        per band gives square grids their minimal ``O(sqrt(n))`` window.
    verify_limit : int, optional
        Largest size that is verified against the whole-graph oracle.

    Returns
    -------
    list[dict]
        One JSON-serialisable entry per ``(family, size)`` point.
    """
    from repro.core.strategies import greedy_reduce
    from repro.core.streaming import compile_stream
    from repro.graphs.lazy import make_stream_spec

    results = []
    for family in families:
        family_entries = []
        for size in sizes:
            spec = make_stream_spec(family, int(size), seed=seed, chunk=chunk)
            if spec.num_vertices <= verify_limit:
                streamed = compile_stream(spec, collect_operations=True)
                oracle = greedy_reduce(spec.materialize())
                if (
                    streamed.operations != oracle.operations
                    or streamed.num_emitters != oracle.num_emitters
                ):
                    raise AssertionError(  # pragma: no cover - correctness guard
                        f"streamed {family} compile diverges from the "
                        f"whole-graph oracle at size {size}"
                    )
            result, peak_bytes = _traced_peak(lambda s=spec: compile_stream(s))
            family_entries.append(
                {
                    "family": family,
                    "size": int(size),
                    "num_vertices": result.num_vertices,
                    "num_regions": result.num_regions,
                    "window_capacity": result.window_capacity,
                    "peak_window_photons": result.peak_window_photons,
                    "num_emitters": result.num_emitters,
                    "num_operations": result.num_operations,
                    "num_emissions": result.num_emissions,
                    "num_emitter_emitter_gates": result.num_emitter_emitter_gates,
                    "elapsed_seconds": result.elapsed_seconds,
                    "peak_traced_bytes": peak_bytes,
                    "verified_against_oracle": spec.num_vertices <= verify_limit,
                }
            )
        if len(family_entries) >= 2:
            smallest = min(family_entries, key=lambda e: e["num_vertices"])
            largest = max(family_entries, key=lambda e: e["num_vertices"])
            size_ratio = largest["num_vertices"] / max(1, smallest["num_vertices"])
            peak_ratio = largest["peak_traced_bytes"] / max(
                1, smallest["peak_traced_bytes"]
            )
            if (
                size_ratio >= 4.0
                and smallest["num_vertices"] >= 2048
                and peak_ratio > 0.75 * size_ratio
            ):
                raise AssertionError(  # pragma: no cover - correctness guard
                    f"streamed {family} peak memory is not sublinear: "
                    f"peak ratio {peak_ratio:.2f} vs size ratio {size_ratio:.2f}"
                )
            for entry in family_entries:
                entry["family_size_ratio"] = size_ratio
                entry["family_peak_ratio"] = peak_ratio
        results.extend(family_entries)
    return results


def run_emitter_bench(
    sizes: Sequence[int] = DEFAULT_BENCH_SIZES,
    repeats: int = 3,
    seed: int = 2025,
    backend: str | None = None,
    compile_sizes: Sequence[int] = DEFAULT_COMPILE_SIZES,
    cache_sizes: Sequence[int] = DEFAULT_CACHE_SIZES,
    portfolio_sizes: Sequence[int] = DEFAULT_PORTFOLIO_SIZES,
    portfolio_deadlines_ms: Sequence[float] = DEFAULT_PORTFOLIO_DEADLINES_MS,
    arena_sizes: Sequence[int] = DEFAULT_ARENA_SIZES,
    stream_sizes: Sequence[int] = DEFAULT_STREAM_SIZES,
) -> dict:
    """Measure naive-vs-incremental height functions across ``sizes``.

    Parameters
    ----------
    sizes : Sequence[int], optional
        Graph sizes (vertices) to sweep.
    repeats : int, optional
        Timing repetitions per point; the median is reported.
    seed : int, optional
        Graph-sampling seed.
    backend : str | None, optional
        GF(2) backend for both evaluations (``None`` = process default).
    compile_sizes : Sequence[int], optional
        Graph sizes for the end-to-end compile section
        (:func:`run_compile_bench`); empty disables the section.
    cache_sizes : Sequence[int], optional
        Vertex counts for the subgraph-compile-cache section
        (:func:`run_cache_bench`); empty disables the section.
    portfolio_sizes : Sequence[int], optional
        Vertex counts for the anytime-portfolio section
        (:func:`run_portfolio_bench`); empty disables the section.
    portfolio_deadlines_ms : Sequence[float], optional
        Deadline grid for the anytime-portfolio section.
    arena_sizes : Sequence[int], optional
        Matrix widths for the arena-vs-packed kernel section
        (:func:`run_arena_bench`); empty disables the section.
    stream_sizes : Sequence[int], optional
        Vertex counts for the streaming-compile section
        (:func:`run_stream_bench`); empty disables the section.

    Returns
    -------
    dict
        JSON-serialisable record: metadata (backend, git revision, python,
        timestamp) plus one entry per size with median seconds for the naive
        and incremental paths, the speedup, and the natural/greedy ordering
        peaks (the emitter counts the new ordering axis improves), a
        ``compile_results`` section with dense-vs-packed end-to-end
        ``compile_graph`` medians per size, a ``cache_results`` section
        with cold-vs-warm compile-cache medians per zoo family and size,
        a ``portfolio_results`` section with anytime quality-vs-deadline
        curves per zoo family and size, an ``arena_results`` section with
        arena-vs-packed kernel medians and the measured crossover, a
        ``stream_results`` section with bounded-window streaming compiles,
        and ``peak_memory_bytes`` with the tracemalloc peak of every section.
    """
    resolved = resolve_backend(backend)

    def heights_section() -> list[dict]:
        results = []
        with use_backend(resolved):
            for size in sizes:
                graph = bench_graph(int(size), seed=seed)
                ordering = graph.vertices()
                naive = naive_height_function(graph, ordering)
                incremental = CutRankEngine(graph, checkpoint=False).heights(ordering)
                if naive != incremental:  # pragma: no cover - correctness guard
                    raise AssertionError(
                        f"incremental heights diverge from the naive oracle at "
                        f"size {size}"
                    )
                naive_median = _median_seconds(
                    lambda g=graph, o=ordering: naive_height_function(g, o), repeats
                )
                incremental_median = _median_seconds(
                    lambda g=graph, o=ordering: CutRankEngine(
                        g, checkpoint=False
                    ).heights(o),
                    repeats,
                )
                greedy = optimize_emission_ordering(graph, strategy="greedy")
                results.append(
                    {
                        "size": int(size),
                        "num_edges": graph.num_edges,
                        "naive_median_seconds": naive_median,
                        "incremental_median_seconds": incremental_median,
                        "speedup": (
                            naive_median / incremental_median
                            if incremental_median > 0
                            else float("inf")
                        ),
                        "natural_peak": max(naive),
                        "greedy_peak": greedy.peak_height,
                    }
                )
        return results

    peak_memory: dict[str, int] = {}
    results, peak_memory["heights"] = _traced_peak(heights_section)
    # The dense comparator makes end-to-end compiles expensive; cap the
    # compile-section repeats and record the capped value separately so two
    # records stay comparable.
    compile_repeats = min(int(repeats), 2)
    compile_results, peak_memory["compile"] = _traced_peak(
        lambda: run_compile_bench(sizes=compile_sizes, repeats=compile_repeats, seed=seed)
    )
    cache_results, peak_memory["cache"] = _traced_peak(
        lambda: run_cache_bench(sizes=cache_sizes, repeats=compile_repeats)
    )
    portfolio_results, peak_memory["portfolio"] = _traced_peak(
        lambda: run_portfolio_bench(
            sizes=portfolio_sizes, deadlines_ms=portfolio_deadlines_ms, seed=seed
        )
    )
    arena_results, peak_memory["arena"] = _traced_peak(
        lambda: (
            run_arena_bench(sizes=arena_sizes, repeats=repeats, seed=seed)
            if arena_sizes
            else {}
        )
    )
    stream_results, peak_memory["stream"] = _traced_peak(
        lambda: run_stream_bench(sizes=stream_sizes, seed=seed) if stream_sizes else []
    )
    return {
        "benchmark": "emitters",
        "backend": resolved,
        "default_backend": get_default_backend(),
        "git_rev": _git_revision(),
        "python": platform.python_version(),
        "seed": int(seed),
        "repeats": int(repeats),
        "created_at_unix": time.time(),
        "sizes": [int(s) for s in sizes],
        "results": results,
        "compile_sizes": [int(s) for s in compile_sizes],
        "compile_repeats": compile_repeats,
        "compile_results": compile_results,
        "cache_sizes": [int(s) for s in cache_sizes],
        "cache_families": list(CACHE_BENCH_FAMILIES),
        "cache_results": cache_results,
        "portfolio_sizes": [int(s) for s in portfolio_sizes],
        "portfolio_deadlines_ms": [float(d) for d in portfolio_deadlines_ms],
        "portfolio_families": list(PORTFOLIO_BENCH_FAMILIES),
        "portfolio_results": portfolio_results,
        "arena_sizes": [int(s) for s in arena_sizes],
        "arena_results": arena_results,
        "stream_sizes": [int(s) for s in stream_sizes],
        "stream_families": list(STREAM_BENCH_FAMILIES),
        "stream_results": stream_results,
        "peak_memory_bytes": peak_memory,
    }


def write_bench_file(
    path: str | Path,
    sizes: Sequence[int] = DEFAULT_BENCH_SIZES,
    repeats: int = 3,
    seed: int = 2025,
    backend: str | None = None,
    compile_sizes: Sequence[int] = DEFAULT_COMPILE_SIZES,
    cache_sizes: Sequence[int] = DEFAULT_CACHE_SIZES,
    portfolio_sizes: Sequence[int] = DEFAULT_PORTFOLIO_SIZES,
    portfolio_deadlines_ms: Sequence[float] = DEFAULT_PORTFOLIO_DEADLINES_MS,
    arena_sizes: Sequence[int] = DEFAULT_ARENA_SIZES,
    stream_sizes: Sequence[int] = DEFAULT_STREAM_SIZES,
) -> dict:
    """Run :func:`run_emitter_bench` and dump the record to ``path``."""
    record = run_emitter_bench(
        sizes=sizes,
        repeats=repeats,
        seed=seed,
        backend=backend,
        compile_sizes=compile_sizes,
        cache_sizes=cache_sizes,
        portfolio_sizes=portfolio_sizes,
        portfolio_deadlines_ms=portfolio_deadlines_ms,
        arena_sizes=arena_sizes,
        stream_sizes=stream_sizes,
    )
    path = Path(path)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return record
