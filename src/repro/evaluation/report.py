"""Plain-text reporting helpers for the evaluation harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["FigureData", "render_table"]


@dataclass
class FigureData:
    """Tabular data backing one figure of the paper.

    Attributes:
        name: experiment identifier (e.g. ``"fig10a_cnot_lattice"``).
        description: one-line description of what the figure shows.
        columns: column headers.
        rows: data rows (same length as ``columns``).
        summary: aggregate quantities (e.g. average/maximum reduction).
    """

    name: str
    description: str
    columns: list[str]
    rows: list[list[object]] = field(default_factory=list)
    summary: dict[str, float] = field(default_factory=dict)

    def add_row(self, row: Sequence[object]) -> None:
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} entries but the figure has {len(self.columns)} columns"
            )
        self.rows.append(list(row))

    def column(self, name: str) -> list[object]:
        """All values of one column."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}")
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def to_text(self) -> str:
        """Render the figure as a plain-text table plus its summary."""
        lines = [f"== {self.name} ==", self.description, ""]
        lines.append(render_table(self.columns, self.rows))
        if self.summary:
            lines.append("")
            for key, value in self.summary.items():
                if isinstance(value, float):
                    lines.append(f"{key}: {value:.3f}")
                else:
                    lines.append(f"{key}: {value}")
        return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_table(columns: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width text table."""
    header = [str(c) for c in columns]
    body = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in header]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
        "  ".join("-" * widths[i] for i in range(len(header))),
    ]
    for row in body:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
