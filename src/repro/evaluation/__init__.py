"""Evaluation harness: regenerate every figure of the paper's evaluation.

* :mod:`repro.evaluation.experiments` — run one (graph, compiler, baseline)
  comparison point and collect all metrics.
* :mod:`repro.evaluation.figures` — the per-figure sweeps (Fig. 10 a-f,
  Fig. 11 a-b, plus the Fig. 5 emitter-usage curve, a compile-runtime
  scaling study and the scenario-zoo cross-family sweep), each returning a
  :class:`repro.evaluation.report.FigureData`.
* :mod:`repro.evaluation.report` — plain-text table rendering used by the
  benchmarks, the examples and the CLI.
"""

from repro.evaluation.experiments import ComparisonPoint, run_comparison
from repro.evaluation.figures import (
    figure10_cnot,
    figure10_duration,
    figure11_loss,
    figure11_lc_edges,
    figure5_emitter_usage,
    runtime_scaling,
    scenario_zoo,
)
from repro.evaluation.report import FigureData, render_table

__all__ = [
    "ComparisonPoint",
    "run_comparison",
    "figure10_cnot",
    "figure10_duration",
    "figure11_loss",
    "figure11_lc_edges",
    "figure5_emitter_usage",
    "runtime_scaling",
    "scenario_zoo",
    "FigureData",
    "render_table",
]
