"""Single comparison points: framework vs baseline on one graph.

Every figure of the paper's evaluation is a sweep over graphs of one family;
the primitive underneath is always the same — compile the graph with the
framework and with the GraphiQ-like baseline under identical hardware
assumptions and collect the three hardware-aware metrics (#emitter-emitter
CNOT, circuit duration, photon loss).  :func:`run_comparison` is that
primitive for in-process use; :func:`sweep_jobs` describes whole sweeps as
batch-pipeline jobs (:mod:`repro.pipeline`), which is how the figure
functions — and the ``repro batch`` CLI — execute them, optionally in
parallel and with result caching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.baseline.naive import BaselineCompiler, BaselineResult
from repro.core.compiler import CompilationResult, EmitterCompiler
from repro.core.config import CompilerConfig
from repro.graphs.graph_state import GraphState
from repro.hardware.models import HardwareModel, quantum_dot
from repro.pipeline.jobs import BatchJob, GraphSpec
from repro.pipeline.runner import BatchReport, BatchRunner

__all__ = [
    "ComparisonPoint",
    "run_comparison",
    "fast_config",
    "sweep_jobs",
    "run_sweep",
    "default_runner",
    "reduction_percent",
    "loss_improvement_factor",
]


def reduction_percent(baseline: float, ours: float) -> float:
    """Percentage by which ``ours`` undercuts ``baseline`` (0 when baseline <= 0)."""
    if baseline <= 0:
        return 0.0
    return 100.0 * (baseline - ours) / baseline


def loss_improvement_factor(baseline_loss: float, ours_loss: float) -> float:
    """How many times lower ``ours_loss`` is than ``baseline_loss``."""
    if ours_loss <= 0:
        return float("inf") if baseline_loss > 0 else 1.0
    return baseline_loss / ours_loss


def fast_config(
    emitter_limit_factor: float = 1.5,
    hardware: HardwareModel | None = None,
    seed: int = 7,
    verify: bool = False,
) -> CompilerConfig:
    """A compiler configuration tuned for benchmark sweeps.

    It keeps the paper's structural parameters (``g_max = 7``, ``l = 15``)
    but trims the per-subgraph ordering search so that full sweeps finish in
    seconds rather than minutes.
    """
    return CompilerConfig(
        max_subgraph_size=7,
        lc_budget=15,
        emitter_limit_factor=emitter_limit_factor,
        max_order_candidates=48,
        exhaustive_order_threshold=5,
        hardware=hardware if hardware is not None else quantum_dot(),
        seed=seed,
        verify=verify,
    )


@dataclass
class ComparisonPoint:
    """Results of compiling one graph with both compilers."""

    graph: GraphState
    ours: CompilationResult
    baseline: BaselineResult

    # ------------------------------------------------------------------ #
    # Metric accessors
    # ------------------------------------------------------------------ #

    @property
    def num_qubits(self) -> int:
        return self.graph.num_vertices

    @property
    def baseline_cnots(self) -> int:
        return self.baseline.metrics.num_emitter_emitter_cnots

    @property
    def ours_cnots(self) -> int:
        return self.ours.metrics.num_emitter_emitter_cnots

    @property
    def cnot_reduction_percent(self) -> float:
        return reduction_percent(self.baseline_cnots, self.ours_cnots)

    @property
    def baseline_duration(self) -> float:
        return self.baseline.metrics.duration

    @property
    def ours_duration(self) -> float:
        return self.ours.metrics.duration

    @property
    def duration_reduction_percent(self) -> float:
        return reduction_percent(self.baseline_duration, self.ours_duration)

    @property
    def baseline_loss(self) -> float:
        return float(self.baseline.metrics.photon_loss_probability or 0.0)

    @property
    def ours_loss(self) -> float:
        return float(self.ours.metrics.photon_loss_probability or 0.0)

    @property
    def loss_improvement_factor(self) -> float:
        """How many times lower the framework's state loss probability is."""
        return loss_improvement_factor(self.baseline_loss, self.ours_loss)


def run_comparison(
    graph: GraphState,
    config: CompilerConfig | None = None,
    baseline_emitter_limit: int | None = None,
    verify: bool = False,
) -> ComparisonPoint:
    """Compile ``graph`` with the framework and with the baseline.

    Args:
        graph: target graph state.
        config: framework configuration (defaults to :func:`fast_config`).
        baseline_emitter_limit: emitter cap handed to the baseline (``None``
            keeps the baseline's minimal-emitter behaviour).
        verify: verify both circuits against the target on the stabilizer
            simulator (slower; used by the integration tests).

    Returns:
        A :class:`ComparisonPoint`.
    """
    if config is None:
        config = fast_config(verify=verify)
    elif verify and not config.verify:
        config = config.with_overrides(verify=True)
    ours = EmitterCompiler(config).compile(graph)
    baseline = BaselineCompiler(
        hardware=config.hardware,
        emitter_limit=baseline_emitter_limit,
        verify=verify,
    ).compile(graph)
    return ComparisonPoint(graph=graph, ours=ours, baseline=baseline)


# --------------------------------------------------------------------------- #
# Batch-pipeline sweeps
# --------------------------------------------------------------------------- #

_default_runner: BatchRunner | None = None


def default_runner() -> BatchRunner:
    """The shared serial, cache-less runner used when no runner is passed.

    Serial execution keeps the figure sweeps deterministic and dependency
    free under pytest; pass an explicit :class:`BatchRunner` (with workers
    and/or a cache directory) to any figure function or to :func:`run_sweep`
    to fan out.
    """
    global _default_runner
    if _default_runner is None:
        _default_runner = BatchRunner(max_workers=1, cache_dir=None)
    return _default_runner


def sweep_jobs(
    family: str,
    sizes: Sequence[int],
    kind: str = "comparison",
    seed: int = 11,
    emitter_limit_factor: float = 1.5,
    backend: str | None = None,
    ordering: str | None = None,
    verify: bool = False,
    config_overrides: Sequence[tuple[str, object]] = (),
) -> list[BatchJob]:
    """Describe one figure-style sweep as a list of pipeline jobs.

    Matches the evaluation harness's graph construction exactly: point ``i``
    of the sweep uses ``seed + i``, so the produced metrics are identical to
    the historical in-process loops.  ``ordering`` pins an emission-ordering
    strategy (:data:`repro.core.ordering.ORDERING_STRATEGIES`) on every job.
    """
    return [
        BatchJob(
            graph=GraphSpec(family=family, size=size, seed=seed + offset),
            kind=kind,
            emitter_limit_factor=emitter_limit_factor,
            backend=backend,
            ordering=ordering,
            verify=verify,
            config_overrides=tuple(config_overrides),
        )
        for offset, size in enumerate(sizes)
    ]


def run_sweep(
    jobs: Sequence[BatchJob], runner: BatchRunner | None = None
) -> BatchReport:
    """Execute pipeline jobs and fail loudly on the first job error."""
    report = (runner if runner is not None else default_runner()).run(jobs)
    report.raise_first_error()
    return report
