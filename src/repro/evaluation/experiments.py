"""Single comparison points: framework vs baseline on one graph.

Every figure of the paper's evaluation is a sweep over graphs of one family;
the primitive underneath is always the same — compile the graph with the
framework and with the GraphiQ-like baseline under identical hardware
assumptions and collect the three hardware-aware metrics (#emitter-emitter
CNOT, circuit duration, photon loss).  :func:`run_comparison` is that
primitive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baseline.naive import BaselineCompiler, BaselineResult
from repro.core.compiler import CompilationResult, EmitterCompiler
from repro.core.config import CompilerConfig
from repro.graphs.graph_state import GraphState
from repro.hardware.models import HardwareModel, quantum_dot

__all__ = ["ComparisonPoint", "run_comparison", "fast_config"]


def fast_config(
    emitter_limit_factor: float = 1.5,
    hardware: HardwareModel | None = None,
    seed: int = 7,
    verify: bool = False,
) -> CompilerConfig:
    """A compiler configuration tuned for benchmark sweeps.

    It keeps the paper's structural parameters (``g_max = 7``, ``l = 15``)
    but trims the per-subgraph ordering search so that full sweeps finish in
    seconds rather than minutes.
    """
    return CompilerConfig(
        max_subgraph_size=7,
        lc_budget=15,
        emitter_limit_factor=emitter_limit_factor,
        max_order_candidates=48,
        exhaustive_order_threshold=5,
        hardware=hardware if hardware is not None else quantum_dot(),
        seed=seed,
        verify=verify,
    )


@dataclass
class ComparisonPoint:
    """Results of compiling one graph with both compilers."""

    graph: GraphState
    ours: CompilationResult
    baseline: BaselineResult

    # ------------------------------------------------------------------ #
    # Metric accessors
    # ------------------------------------------------------------------ #

    @property
    def num_qubits(self) -> int:
        return self.graph.num_vertices

    @property
    def baseline_cnots(self) -> int:
        return self.baseline.metrics.num_emitter_emitter_cnots

    @property
    def ours_cnots(self) -> int:
        return self.ours.metrics.num_emitter_emitter_cnots

    @property
    def cnot_reduction_percent(self) -> float:
        if self.baseline_cnots == 0:
            return 0.0
        return 100.0 * (self.baseline_cnots - self.ours_cnots) / self.baseline_cnots

    @property
    def baseline_duration(self) -> float:
        return self.baseline.metrics.duration

    @property
    def ours_duration(self) -> float:
        return self.ours.metrics.duration

    @property
    def duration_reduction_percent(self) -> float:
        if self.baseline_duration <= 0:
            return 0.0
        return 100.0 * (self.baseline_duration - self.ours_duration) / self.baseline_duration

    @property
    def baseline_loss(self) -> float:
        return float(self.baseline.metrics.photon_loss_probability or 0.0)

    @property
    def ours_loss(self) -> float:
        return float(self.ours.metrics.photon_loss_probability or 0.0)

    @property
    def loss_improvement_factor(self) -> float:
        """How many times lower the framework's state loss probability is."""
        if self.ours_loss <= 0:
            return float("inf") if self.baseline_loss > 0 else 1.0
        return self.baseline_loss / self.ours_loss


def run_comparison(
    graph: GraphState,
    config: CompilerConfig | None = None,
    baseline_emitter_limit: int | None = None,
    verify: bool = False,
) -> ComparisonPoint:
    """Compile ``graph`` with the framework and with the baseline.

    Args:
        graph: target graph state.
        config: framework configuration (defaults to :func:`fast_config`).
        baseline_emitter_limit: emitter cap handed to the baseline (``None``
            keeps the baseline's minimal-emitter behaviour).
        verify: verify both circuits against the target on the stabilizer
            simulator (slower; used by the integration tests).

    Returns:
        A :class:`ComparisonPoint`.
    """
    if config is None:
        config = fast_config(verify=verify)
    elif verify and not config.verify:
        config = config.with_overrides(verify=True)
    ours = EmitterCompiler(config).compile(graph)
    baseline = BaselineCompiler(
        hardware=config.hardware,
        emitter_limit=baseline_emitter_limit,
        verify=verify,
    ).compile(graph)
    return ComparisonPoint(graph=graph, ours=ours, baseline=baseline)
