"""Per-figure experiment sweeps.

Each function regenerates the data behind one figure of the paper's
evaluation section and returns it as a
:class:`repro.evaluation.report.FigureData` (series of rows plus aggregate
summary), which the benchmarks print and EXPERIMENTS.md records.

Default sweep sizes follow the paper (lattice 10-60 qubits, tree 10-40,
random/Waxman 10-35); callers — in particular the pytest benchmarks — can
pass smaller size lists to keep wall-clock time down.

Every sweep is expressed as batch-pipeline jobs (:mod:`repro.pipeline`) and
executed through a :class:`repro.pipeline.runner.BatchRunner`.  The default
runner is serial and cache-less, which reproduces the historical in-process
behaviour bit for bit; pass ``runner=BatchRunner(max_workers=8,
cache_dir=...)`` to any sweep to fan it across processes and reuse cached
points (the ``repro batch`` CLI does exactly that).
"""

from __future__ import annotations

from typing import Sequence

from repro.baseline.naive import BaselineCompiler
from repro.core.compiler import EmitterCompiler
from repro.core.config import CompilerConfig
from repro.evaluation.experiments import (
    fast_config,
    loss_improvement_factor,
    reduction_percent,
    run_comparison,
    run_sweep,
    sweep_jobs,
)
from repro.evaluation.report import FigureData
from repro.graphs.generators import benchmark_graph
from repro.graphs.graph_state import GraphState
from repro.pipeline.jobs import BatchJob, GraphSpec
from repro.pipeline.runner import BatchRunner

__all__ = [
    "DEFAULT_SIZES",
    "ZOO_FAMILIES",
    "figure10_cnot",
    "figure10_duration",
    "figure11_loss",
    "figure11_lc_edges",
    "figure5_emitter_usage",
    "runtime_scaling",
    "scenario_zoo",
]

#: Paper sweep sizes per graph family (Fig. 10).
DEFAULT_SIZES: dict[str, tuple[int, ...]] = {
    "lattice": (10, 20, 30, 40, 50, 60),
    "tree": (10, 20, 30, 40),
    "random": (10, 15, 20, 25, 30, 35),
}


def _positive_mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


# --------------------------------------------------------------------------- #
# Figure 10 (a)-(c): emitter-emitter CNOT counts
# --------------------------------------------------------------------------- #


def figure10_cnot(
    family: str,
    sizes: Sequence[int] | None = None,
    seed: int = 11,
    config: CompilerConfig | None = None,
    runner: BatchRunner | None = None,
) -> FigureData:
    """#emitter-emitter CNOTs, framework vs baseline (Fig. 10 a-c)."""
    sizes = list(sizes) if sizes is not None else list(DEFAULT_SIZES[family])
    data = FigureData(
        name=f"fig10_cnot_{family}",
        description=(
            f"Emitter-emitter CNOT count on {family} graphs: GraphiQ-like baseline vs "
            "our framework, with the per-size reduction percentage."
        ),
        columns=["num_qubits", "baseline_cnot", "ours_cnot", "reduction_percent"],
    )
    if config is not None:
        # An explicit CompilerConfig may carry live objects a picklable job
        # description cannot; honour it with the in-process primitive.
        points = [
            (
                run_comparison(
                    benchmark_graph(family, size, seed=seed + offset), config=config
                )
            )
            for offset, size in enumerate(sizes)
        ]
        rows = [
            (
                point.num_qubits,
                point.baseline_cnots,
                point.ours_cnots,
                point.cnot_reduction_percent,
            )
            for point in points
        ]
    else:
        report = run_sweep(sweep_jobs(family, sizes, seed=seed), runner=runner)
        rows = [
            (
                record["num_qubits"],
                record["baseline"]["num_emitter_emitter_cnots"],
                record["ours"]["num_emitter_emitter_cnots"],
                reduction_percent(
                    record["baseline"]["num_emitter_emitter_cnots"],
                    record["ours"]["num_emitter_emitter_cnots"],
                ),
            )
            for record in report.results
        ]
    reductions = []
    for row in rows:
        data.add_row(list(row))
        reductions.append(row[3])
    data.summary = {
        "average_reduction_percent": _positive_mean(reductions),
        "maximum_reduction_percent": max(reductions, default=0.0),
    }
    return data


# --------------------------------------------------------------------------- #
# Figure 10 (d)-(f): circuit duration under two emitter-resource settings
# --------------------------------------------------------------------------- #


def figure10_duration(
    family: str,
    sizes: Sequence[int] | None = None,
    factors: Sequence[float] = (1.5, 2.0),
    seed: int = 11,
    runner: BatchRunner | None = None,
) -> FigureData:
    """Circuit duration (in tau_QD) under N_e^limit = factor * N_e^min (Fig. 10 d-f)."""
    sizes = list(sizes) if sizes is not None else list(DEFAULT_SIZES[family])
    factors = list(factors)
    columns = ["num_qubits"]
    for factor in factors:
        columns.extend(
            [
                f"baseline_duration_{factor}x",
                f"ours_duration_{factor}x",
                f"reduction_percent_{factor}x",
            ]
        )
    data = FigureData(
        name=f"fig10_duration_{family}",
        description=(
            f"Circuit duration on {family} graphs under emitter limits of "
            f"{' and '.join(str(f) for f in factors)} times N_e^min."
        ),
        columns=columns,
    )
    jobs = [
        job
        for factor in factors
        for job in sweep_jobs(
            family, sizes, kind="duration", seed=seed, emitter_limit_factor=factor
        )
    ]
    report = run_sweep(jobs, runner=runner)
    per_factor_reductions: dict[float, list[float]] = {f: [] for f in factors}
    # Jobs are ordered factor-major, size-minor; rows are size-major.  Index
    # arithmetic (not a dict) keeps duplicate sweep sizes as distinct points.
    for size_index, size in enumerate(sizes):
        row: list[object] = []
        for factor_index, factor in enumerate(factors):
            record = report.results[factor_index * len(sizes) + size_index]
            if not row:
                row.append(record["num_qubits"])
            baseline_duration = record["baseline"]["duration"]
            ours_duration = record["ours"]["duration"]
            reduction = reduction_percent(baseline_duration, ours_duration)
            row.extend([baseline_duration, ours_duration, reduction])
            per_factor_reductions[factor].append(reduction)
        data.add_row(row)
    data.summary = {}
    for factor in factors:
        data.summary[f"average_reduction_percent_{factor}x"] = _positive_mean(
            per_factor_reductions[factor]
        )
        data.summary[f"maximum_reduction_percent_{factor}x"] = max(
            per_factor_reductions[factor], default=0.0
        )
    return data


# --------------------------------------------------------------------------- #
# Figure 11 (a): photon loss
# --------------------------------------------------------------------------- #


def figure11_loss(
    families: Sequence[str] = ("lattice", "tree", "random"),
    sizes: dict[str, Sequence[int]] | None = None,
    seed: int = 11,
    runner: BatchRunner | None = None,
) -> FigureData:
    """State photon-loss probability, baseline vs framework (Fig. 11 a).

    Uses the quantum-dot loss rate (0.5 % per tau_QD) and
    ``N_e^limit = 1.5 N_e^min``, as in the paper.
    """
    data = FigureData(
        name="fig11a_photon_loss",
        description=(
            "Photon loss probability of the final graph state (0.5% loss per tau_QD), "
            "averaged per graph family; improvement factor = baseline / ours."
        ),
        columns=[
            "family",
            "num_qubits",
            "baseline_loss",
            "ours_loss",
            "improvement_factor",
        ],
    )
    factors_per_family: dict[str, list[float]] = {}
    for family in families:
        family_sizes = (
            list(sizes[family]) if sizes is not None and family in sizes
            else list(DEFAULT_SIZES[family])
        )
        report = run_sweep(sweep_jobs(family, family_sizes, seed=seed), runner=runner)
        for record in report.results:
            baseline_loss = float(record["baseline"]["photon_loss_probability"] or 0.0)
            ours_loss = float(record["ours"]["photon_loss_probability"] or 0.0)
            improvement = loss_improvement_factor(baseline_loss, ours_loss)
            data.add_row(
                [
                    family,
                    record["num_qubits"],
                    baseline_loss,
                    ours_loss,
                    improvement,
                ]
            )
            factors_per_family.setdefault(family, []).append(improvement)
    data.summary = {
        f"average_improvement_{family}": _positive_mean(values)
        for family, values in factors_per_family.items()
    }
    return data


# --------------------------------------------------------------------------- #
# Figure 11 (b): stem-edge reduction from local complementation
# --------------------------------------------------------------------------- #


def figure11_lc_edges(
    sizes: Sequence[int] = (10, 15, 20, 25, 30),
    seed: int = 11,
    lc_budget: int = 15,
    runner: BatchRunner | None = None,
) -> FigureData:
    """Average number of inter-subgraph edges with and without LC (Fig. 11 b)."""
    data = FigureData(
        name="fig11b_lc_stem_edges",
        description=(
            "Number of inter-subgraph (stem) edges on Waxman graphs when the partitioner "
            f"may use up to l={lc_budget} local complementations versus l=0."
        ),
        columns=["num_qubits", "stem_edges_no_lc", "stem_edges_with_lc", "reduction"],
    )
    jobs = sweep_jobs(
        "waxman",
        sizes,
        kind="lc_stem_edges",
        seed=seed,
        config_overrides=(("lc_budget", lc_budget),),
    )
    report = run_sweep(jobs, runner=runner)
    reductions = []
    for record in report.results:
        data.add_row(
            [
                record["num_qubits"],
                record["stem_edges_no_lc"],
                record["stem_edges_with_lc"],
                record["stem_edge_reduction"],
            ]
        )
        reductions.append(record["stem_edge_reduction"])
    data.summary = {
        "average_stem_edge_reduction": _positive_mean(reductions),
        "total_stem_edge_reduction": float(sum(reductions)),
    }
    return data


# --------------------------------------------------------------------------- #
# Figure 5 (motivation): emitter usage over time
# --------------------------------------------------------------------------- #


def figure5_emitter_usage(
    graph: GraphState | None = None, seed: int = 11
) -> FigureData:
    """Emitter-usage-over-time curve of a generation circuit (Fig. 5).

    A single comparison point (not a sweep), so it runs in-process rather
    than through the batch pipeline: the emitter-usage *curve* needs the live
    schedule object, not just scalar metrics.
    """
    if graph is None:
        graph = benchmark_graph("lattice", 12, seed=seed)
    baseline = BaselineCompiler().compile(graph)
    ours = EmitterCompiler(fast_config()).compile(graph)
    data = FigureData(
        name="fig5_emitter_usage",
        description=(
            "Number of emitters in use over time for the baseline circuit and the "
            "framework circuit of the same graph state (step curves, time in tau_QD)."
        ),
        columns=["compiler", "time", "emitters_in_use"],
    )
    for label, schedule in (("baseline", baseline.schedule), ("ours", ours.schedule)):
        for time_point, count in schedule.emitter_usage_curve():
            data.add_row([label, time_point, count])
    data.summary = {
        "baseline_peak_emitters": float(baseline.schedule.max_emitters_in_use()),
        "ours_peak_emitters": float(ours.schedule.max_emitters_in_use()),
        "baseline_duration": baseline.metrics.duration,
        "ours_duration": ours.metrics.duration,
    }
    return data


# --------------------------------------------------------------------------- #
# Compile-runtime scaling (text claim in §III)
# --------------------------------------------------------------------------- #


def runtime_scaling(
    sizes: Sequence[int] = (10, 20, 40, 60),
    runner: BatchRunner | None = None,
) -> FigureData:
    """Compiler wall-clock time on linear cluster states of growing size.

    The paper motivates the framework with GraphiQ's runtime exceeding 1000 s
    for linear clusters beyond 10 qubits; this sweep records how the
    divide-and-conquer compiler scales on the same family.  With a caching
    runner, timings of cached points are those of the run that produced them.
    """
    data = FigureData(
        name="runtime_scaling_linear_cluster",
        description="Compile time (seconds) of the framework and the baseline on linear clusters.",
        columns=["num_qubits", "ours_seconds", "baseline_seconds"],
    )
    jobs = sweep_jobs("linear", sizes)
    report = run_sweep(jobs, runner=runner)
    for size, record in zip(sizes, report.results):
        data.add_row([size, record["seconds_ours"], record["seconds_baseline"]])
    ours_column = [float(v) for v in data.column("ours_seconds")]
    data.summary = {"max_ours_seconds": max(ours_column, default=0.0)}
    return data


# --------------------------------------------------------------------------- #
# Scenario zoo: the framework across every workload family
# --------------------------------------------------------------------------- #

#: Families swept by :func:`scenario_zoo`, with the size each is probed at
#: (``surface`` sizes are code distances, ``steane`` is fixed at 7 vertices).
ZOO_FAMILIES: dict[str, int] = {
    "lattice": 16,
    "tree": 16,
    "random": 16,
    "regular": 16,
    "smallworld": 16,
    "erdos": 16,
    "percolated": 16,
    "ghz": 16,
    "steane": 7,
    "surface": 3,
}


def scenario_zoo(
    families: Sequence[str] | None = None,
    size: int | None = None,
    seed: int = 11,
    runner: BatchRunner | None = None,
) -> FigureData:
    """Framework metrics across the whole scenario zoo at one size point.

    One ``compile`` job per family through the batch pipeline; the row set is
    the quick "does every workload go through?" sweep that the service smoke
    tests and the docs use.

    Parameters
    ----------
    families : Sequence[str] | None, optional
        Families to include (default: every :data:`ZOO_FAMILIES` entry).
    size : int | None, optional
        Override the per-family default size (ignored for ``steane`` and
        ``surface``, whose sizes are structural).
    seed : int, optional
        Graph seed shared by all families.
    runner : BatchRunner | None, optional
        Batch runner (default: the serial cache-less runner).

    Returns
    -------
    FigureData
        One row per family: qubits, edges, emitters used, emitter-emitter
        CNOTs and circuit duration.
    """
    chosen = list(families) if families is not None else list(ZOO_FAMILIES)
    unknown = [family for family in chosen if family not in ZOO_FAMILIES]
    if unknown:
        raise ValueError(f"unknown zoo families: {unknown}")
    data = FigureData(
        name="scenario_zoo",
        description=(
            "Framework compilation metrics across every graph family of the "
            "scenario zoo (one size point per family)."
        ),
        columns=[
            "family",
            "num_qubits",
            "num_edges",
            "num_emitters",
            "ee_cnots",
            "duration",
        ],
    )
    jobs = []
    for family in chosen:
        family_size = ZOO_FAMILIES[family]
        if size is not None and family not in ("steane", "surface"):
            family_size = size
        jobs.append(
            BatchJob(
                graph=GraphSpec(family=family, size=family_size, seed=seed),
                kind="compile",
            )
        )
    report = run_sweep(jobs, runner=runner)
    for family, record in zip(chosen, report.results):
        data.add_row(
            [
                family,
                record["num_qubits"],
                record["num_edges"],
                record["ours"]["num_emitters"],
                record["ours"]["num_emitter_emitter_cnots"],
                record["ours"]["duration"],
            ]
        )
    data.summary = {"num_families": float(len(chosen))}
    return data
