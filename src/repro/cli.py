"""Command-line interface.

Two subcommands cover the common workflows:

* ``repro-emitter compile`` — compile one benchmark graph and print the
  circuit metrics (optionally the gate listing);
* ``repro-emitter figure`` — regenerate one of the paper's figures and print
  the data table.

Examples::

    repro-emitter compile --family lattice --size 20
    repro-emitter compile --family tree --size 30 --baseline --verify
    repro-emitter figure fig10a
    repro-emitter figure fig11b
"""

from __future__ import annotations

import argparse
import sys

from repro.baseline.naive import BaselineCompiler
from repro.core.compiler import EmitterCompiler
from repro.evaluation.experiments import fast_config
from repro.evaluation import figures
from repro.graphs.generators import benchmark_graph

__all__ = ["main", "build_parser"]

_FIGURES = {
    "fig5": lambda args: figures.figure5_emitter_usage(),
    "fig10a": lambda args: figures.figure10_cnot("lattice", sizes=args.sizes),
    "fig10b": lambda args: figures.figure10_cnot("tree", sizes=args.sizes),
    "fig10c": lambda args: figures.figure10_cnot("random", sizes=args.sizes),
    "fig10d": lambda args: figures.figure10_duration("lattice", sizes=args.sizes),
    "fig10e": lambda args: figures.figure10_duration("tree", sizes=args.sizes),
    "fig10f": lambda args: figures.figure10_duration("random", sizes=args.sizes),
    "fig11a": lambda args: figures.figure11_loss(),
    "fig11b": lambda args: figures.figure11_lc_edges(),
    "runtime": lambda args: figures.runtime_scaling(),
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-emitter",
        description="Emitter-photonic graph-state compilation framework (DAC 2025 reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    compile_parser = subparsers.add_parser(
        "compile", help="compile one benchmark graph and print its metrics"
    )
    compile_parser.add_argument(
        "--family",
        choices=["lattice", "tree", "random"],
        default="lattice",
        help="benchmark graph family",
    )
    compile_parser.add_argument("--size", type=int, default=20, help="number of qubits")
    compile_parser.add_argument("--seed", type=int, default=11, help="graph seed")
    compile_parser.add_argument(
        "--emitter-factor",
        type=float,
        default=1.5,
        help="emitter limit as a multiple of N_e^min",
    )
    compile_parser.add_argument(
        "--baseline", action="store_true", help="also compile with the baseline"
    )
    compile_parser.add_argument(
        "--verify", action="store_true", help="verify circuits on the stabilizer simulator"
    )
    compile_parser.add_argument(
        "--show-circuit", action="store_true", help="print the compiled gate list"
    )

    figure_parser = subparsers.add_parser(
        "figure", help="regenerate one of the paper's figures"
    )
    figure_parser.add_argument("figure", choices=sorted(_FIGURES))
    figure_parser.add_argument(
        "--sizes",
        type=int,
        nargs="*",
        default=None,
        help="override the sweep sizes (number of qubits per point)",
    )
    return parser


def _run_compile(args: argparse.Namespace) -> int:
    graph = benchmark_graph(args.family, args.size, seed=args.seed)
    config = fast_config(
        emitter_limit_factor=args.emitter_factor, verify=args.verify
    )
    result = EmitterCompiler(config).compile(graph)
    print(f"graph: {args.family} with {graph.num_vertices} qubits, {graph.num_edges} edges")
    print("framework result:")
    for key, value in sorted(result.summary().items()):
        print(f"  {key}: {value}")
    if args.baseline:
        baseline = BaselineCompiler(hardware=config.hardware, verify=args.verify).compile(graph)
        print("baseline result:")
        for key, value in sorted(baseline.metrics.as_dict().items()):
            print(f"  {key}: {value}")
    if args.show_circuit:
        print("circuit:")
        print(result.circuit.pretty())
    return 0


def _run_figure(args: argparse.Namespace) -> int:
    data = _FIGURES[args.figure](args)
    print(data.to_text())
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "compile":
        return _run_compile(args)
    if args.command == "figure":
        return _run_figure(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
