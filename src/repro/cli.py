"""Command-line interface.

Six subcommands cover the common workflows:

* ``repro compile`` — compile one benchmark graph and print the circuit
  metrics (optionally the gate listing);
* ``repro figure`` — regenerate one of the paper's figures and print the
  data table;
* ``repro batch`` — run a whole sweep of compilation jobs through the batch
  pipeline, optionally across processes and with content-hash result caching;
* ``repro serve`` — run the long-running compilation server (HTTP + JSON,
  micro-batching, persistent result cache); ``--workers N > 1`` runs the
  supervised multi-process fleet (content-hash routing, heartbeat restarts,
  ``GET /metrics``, journaled requests, SIGTERM graceful drain);
* ``repro loadgen`` — drive a server closed-loop and report throughput,
  latency percentiles and the cache-hit rate; ``--kill-worker-after K``
  SIGKILLs one fleet worker mid-load (the fault-injection CI gate);
* ``repro bench`` — run the emitter perf-trajectory benchmark
  (naive-vs-incremental height function, dense-vs-packed end-to-end compile,
  cold-vs-warm subgraph compile cache) and write ``BENCH_emitters.json``.

Examples::

    repro --version
    repro compile --family lattice --size 20
    repro compile --family tree --size 30 --baseline --verify
    repro compile --family random --size 24 --ordering anneal --verify
    repro figure fig10a
    repro figure zoo
    repro batch --families lattice tree --sizes 10 20 --seeds 11 12 --workers 4
    repro batch --families regular smallworld erdos --sizes 12 16 --cache-dir .repro-cache
    repro batch --families ghz surface --sizes 9 --ordering greedy
    repro serve --port 8765 --cache-dir .repro-service-cache
    repro serve --port 8765 --subgraph-cache-dir .repro-subgraph-cache
    repro serve --port 8765 --workers 3 --journal .repro-fleet-journal.jsonl
    repro loadgen --url http://127.0.0.1:8765 --families lattice --sizes 10 14
    repro loadgen --url http://127.0.0.1:8765 --requests 36 --kill-worker-after 6
    repro serve --workers 3 --port 8765 --replicate-to 127.0.0.1:8790 \\
        --lease .repro-lease.json
    repro serve --standby --workers 3 --port 8765 \\
        --replicate-to 127.0.0.1:8790 --lease .repro-lease.json \\
        --journal .repro-standby-journal.jsonl
    repro loadgen --url http://127.0.0.1:8765 --requests 36 --retries 20 \\
        --kill-front-end-after 6
    repro loadgen --self-serve --cache-dir .repro-service-cache --requests 40
    repro loadgen --self-serve --self-serve-workers 3 --requests 36
    repro loadgen --self-serve --deadline-ms 2000 --max-deadline-miss-rate 0.1
    repro loadgen --self-serve --self-serve-workers 2 --requests 24 \\
        --fault-schedule tests/data/chaos_schedule.json --poison-seed 666
    repro compile --family random --size 24 --deadline-ms 500
    repro bench --sizes 64 128 256 --compile-sizes 32 64 128 --output BENCH_emitters.json
    repro bench --portfolio-sizes 16 24 --portfolio-deadlines-ms 50 500 5000
    repro bench --cache-sizes 128 256 --output BENCH_emitters.json

Every subcommand exits with its own non-zero code on failure so scripts can
tell what broke: ``2`` usage (argparse), ``3`` compile, ``4`` figure, ``5``
batch, ``6`` serve, ``7`` loadgen, ``8`` bench.

(The ``repro-emitter`` alias of the console script is kept for backwards
compatibility.)
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.baseline.naive import BaselineCompiler
from repro.core.compiler import EmitterCompiler
from repro.evaluation.experiments import fast_config, sweep_jobs
from repro.evaluation import figures
from repro.evaluation.report import render_table
from repro.core.ordering import ORDERING_STRATEGIES
from repro.graphs.generators import benchmark_graph
from repro.pipeline.jobs import GRAPH_FAMILIES, JOB_KINDS, PRIORITY_CLASSES
from repro.pipeline.runner import BatchRunner
from repro.utils.backend import BACKENDS

__all__ = [
    "main",
    "build_parser",
    "EXIT_OK",
    "EXIT_COMPILE",
    "EXIT_FIGURE",
    "EXIT_BATCH",
    "EXIT_SERVE",
    "EXIT_LOADGEN",
    "EXIT_BENCH",
]

#: Exit codes, one per subcommand, so callers can tell failures apart
#: (argparse itself exits with 2 on usage errors).
EXIT_OK = 0
EXIT_COMPILE = 3
EXIT_FIGURE = 4
EXIT_BATCH = 5
EXIT_SERVE = 6
EXIT_LOADGEN = 7
EXIT_BENCH = 8

_FIGURES = {
    "fig5": lambda args: figures.figure5_emitter_usage(),
    "fig10a": lambda args: figures.figure10_cnot("lattice", sizes=args.sizes),
    "fig10b": lambda args: figures.figure10_cnot("tree", sizes=args.sizes),
    "fig10c": lambda args: figures.figure10_cnot("random", sizes=args.sizes),
    "fig10d": lambda args: figures.figure10_duration("lattice", sizes=args.sizes),
    "fig10e": lambda args: figures.figure10_duration("tree", sizes=args.sizes),
    "fig10f": lambda args: figures.figure10_duration("random", sizes=args.sizes),
    "fig11a": lambda args: figures.figure11_loss(),
    "fig11b": lambda args: figures.figure11_lc_edges(),
    "runtime": lambda args: figures.runtime_scaling(),
    "zoo": lambda args: figures.scenario_zoo(size=_single_zoo_size(args.sizes)),
}


def _single_zoo_size(sizes: list[int] | None) -> int | None:
    """The zoo figure probes one size point; reject silent multi-size drops."""
    if not sizes:
        return None
    if len(sizes) > 1:
        raise ValueError(
            "figure zoo sweeps families at a single size point; "
            f"pass one --sizes value, got {sizes}"
        )
    return sizes[0]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Emitter-photonic graph-state compilation framework (DAC 2025 reproduction).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    compile_parser = subparsers.add_parser(
        "compile", help="compile one benchmark graph and print its metrics"
    )
    compile_parser.add_argument(
        "--family",
        choices=["lattice", "tree", "random", "percolated", "ghz"],
        default="lattice",
        help="benchmark graph family (percolated/ghz require --stream)",
    )
    compile_parser.add_argument("--size", type=int, default=20, help="number of qubits")
    compile_parser.add_argument("--seed", type=int, default=11, help="graph seed")
    compile_parser.add_argument(
        "--emitter-factor",
        type=float,
        default=1.5,
        help="emitter limit as a multiple of N_e^min",
    )
    compile_parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=None,
        help="GF(2)/tableau kernel backend (default: process default, packed)",
    )
    compile_parser.add_argument(
        "--ordering",
        choices=list(ORDERING_STRATEGIES),
        default=None,
        help="emission-ordering search strategy (default: natural order)",
    )
    compile_parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="anytime portfolio compilation: return the verified best result "
        "within this wall-clock deadline and print the decision trace",
    )
    compile_parser.add_argument(
        "--portfolio-budget",
        type=int,
        default=None,
        help="anytime portfolio compilation with a deterministic step budget "
        "(run exactly the first N strategy rungs instead of a wall clock)",
    )
    compile_parser.add_argument(
        "--stream",
        action="store_true",
        help="stream the compile region-by-region from a lazy generator spec "
        "(lattice/percolated/ghz): bounded-window memory, operations are "
        "bit-identical to the whole-graph greedy reduction",
    )
    compile_parser.add_argument(
        "--chunk",
        type=int,
        default=None,
        help="streaming region size (lattice rows per band / GHZ leaves per "
        "chunk; default: the family default)",
    )
    compile_parser.add_argument(
        "--baseline", action="store_true", help="also compile with the baseline"
    )
    compile_parser.add_argument(
        "--verify", action="store_true", help="verify circuits on the stabilizer simulator"
    )
    compile_parser.add_argument(
        "--show-circuit", action="store_true", help="print the compiled gate list"
    )

    figure_parser = subparsers.add_parser(
        "figure", help="regenerate one of the paper's figures"
    )
    figure_parser.add_argument("figure", choices=sorted(_FIGURES))
    figure_parser.add_argument(
        "--sizes",
        type=int,
        nargs="*",
        default=None,
        help="override the sweep sizes (number of qubits per point)",
    )

    batch_parser = subparsers.add_parser(
        "batch",
        help="run a sweep of compilation jobs through the batch pipeline",
    )
    batch_parser.add_argument(
        "--kind",
        choices=list(JOB_KINDS),
        default="comparison",
        help="what each job computes (default: framework-vs-baseline comparison)",
    )
    batch_parser.add_argument(
        "--families",
        nargs="+",
        choices=list(GRAPH_FAMILIES),
        default=["lattice"],
        help="graph families to sweep (paper families plus the scenario zoo)",
    )
    batch_parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=[10, 20, 30],
        help="graph sizes (number of qubits; code distance for 'surface')",
    )
    batch_parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[11],
        help="base graph seeds (one full sweep per seed)",
    )
    batch_parser.add_argument(
        "--factors",
        type=float,
        nargs="+",
        default=[1.5],
        help="emitter-limit factors N_e^limit / N_e^min",
    )
    batch_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool width; 1 runs serially in-process",
    )
    batch_parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the content-hash result cache (omit to disable)",
    )
    batch_parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=None,
        help="GF(2)/tableau kernel backend pinned for every job",
    )
    batch_parser.add_argument(
        "--ordering",
        choices=list(ORDERING_STRATEGIES),
        default=None,
        help="emission-ordering strategy pinned on every job",
    )
    batch_parser.add_argument(
        "--verify", action="store_true", help="verify every compiled circuit"
    )
    batch_parser.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help="also dump the full per-job records to this JSON file",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the compilation server (POST /compile and /batch, "
        "GET /status/<job> and /healthz; JSON bodies); --workers N > 1 runs "
        "the supervised multi-process fleet with GET /metrics and SIGTERM "
        "graceful drain",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="address to bind (default: loopback)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8765, help="port to bind (0 picks a free port)"
    )
    serve_parser.add_argument(
        "--cache-dir",
        default=None,
        help="persistent result-cache directory; repeated requests are served "
        "from disk (omit to recompute everything); shared by every fleet worker",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="number of compile-worker processes; 1 serves in-process, N > 1 "
        "spawns a supervised fleet (content-hash routing, heartbeat "
        "restarts, /metrics, journaled requests, SIGTERM drain)",
    )
    serve_parser.add_argument(
        "--pool-workers",
        type=int,
        default=1,
        help="process-pool width inside each worker's micro-batch; "
        "1 compiles in-process",
    )
    serve_parser.add_argument(
        "--journal",
        default=".repro-fleet-journal.jsonl",
        help="pending-queue journal file of the fleet front end (accepted "
        "requests are replayed after a crash); fleet mode only",
    )
    serve_parser.add_argument(
        "--heartbeat-seconds",
        type=float,
        default=0.5,
        help="fleet supervision period (heartbeats, restart scheduling)",
    )
    serve_parser.add_argument(
        "--drain-timeout",
        type=float,
        default=60.0,
        help="maximum seconds a SIGTERM graceful drain waits for in-flight "
        "requests before exiting anyway",
    )
    serve_parser.add_argument(
        "--batch-window-ms",
        type=float,
        default=20.0,
        help="how long to collect concurrent requests into one micro-batch",
    )
    serve_parser.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="maximum requests per micro-batch",
    )
    serve_parser.add_argument(
        "--subgraph-cache-dir",
        default=None,
        help="persistent disk tier for the isomorphism-keyed subgraph "
        "compile cache (exported as REPRO_SUBGRAPH_CACHE_DIR so pool "
        "workers inherit it; omit for a memory-only cache)",
    )
    serve_parser.add_argument(
        "--compile-timeout-s",
        type=float,
        default=None,
        help="per-compile wall-clock watchdog: a compile that produces no "
        "outcome within this many seconds is answered as a structured "
        "timeout (HTTP 504) instead of hanging the request",
    )
    serve_parser.add_argument(
        "--max-job-attempts",
        type=int,
        default=3,
        help="fleet mode: crashed dispatch attempts (summed across restarts "
        "via the journal) before a request is quarantined as poisoned and "
        "answered HTTP 422",
    )
    serve_parser.add_argument(
        "--fault-schedule",
        default=None,
        help="deterministic fault injection: a JSON schedule (inline object "
        "or a file path; also exported as REPRO_FAULT_SCHEDULE so fleet "
        "workers inherit it) — see docs/operations.md",
    )
    serve_parser.add_argument(
        "--replicate-to",
        default=None,
        metavar="HOST:PORT",
        help="high availability: the replication channel address — the "
        "primary streams every accepted journal record there (acked before "
        "the client sees 200) and a --standby binds and listens on it; "
        "fleet mode only, requires --lease",
    )
    serve_parser.add_argument(
        "--standby",
        action="store_true",
        help="run as the standby front end: sink journal replication on "
        "--replicate-to, watch the primary's lease, and promote (bump the "
        "epoch, fence the old primary, spawn workers, bind --port) when "
        "the primary goes quiet",
    )
    serve_parser.add_argument(
        "--lease",
        default=None,
        help="leadership lease file shared by primary and standby (epoch "
        "numbers live here); required with --replicate-to or --standby",
    )
    serve_parser.add_argument(
        "--failover-after-seconds",
        type=float,
        default=2.0,
        help="standby mode: replication silence (with an expired lease) "
        "required before promotion",
    )
    serve_parser.add_argument(
        "--hedge-quantile",
        type=float,
        default=None,
        help="fleet mode: hedge slow dispatches — when a first attempt "
        "exceeds this latency quantile of recent requests, race a backup "
        "attempt on another healthy worker (compiles are idempotent, so "
        "the loser is discarded); e.g. 0.95",
    )
    serve_parser.add_argument(
        "--verbose", action="store_true", help="log one line per HTTP request"
    )

    loadgen_parser = subparsers.add_parser(
        "loadgen",
        help="drive a compilation server closed-loop and report throughput, "
        "p50/p95/p99 latency and the cache-hit rate",
    )
    loadgen_parser.add_argument(
        "--url",
        default=None,
        help="server root, e.g. http://127.0.0.1:8765 (or use --self-serve); "
        "a comma-separated list enables client-side failover across a "
        "primary/standby pair",
    )
    loadgen_parser.add_argument(
        "--self-serve",
        action="store_true",
        help="start an in-process server on a free port for the duration of "
        "the run (useful for smoke tests and CI)",
    )
    loadgen_parser.add_argument(
        "--self-serve-workers",
        type=int,
        default=1,
        help="with --self-serve: number of compile workers; N > 1 "
        "self-serves a supervised fleet instead of a single server",
    )
    loadgen_parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache directory of the self-served instance "
        "(only with --self-serve)",
    )
    loadgen_parser.add_argument(
        "--families",
        nargs="+",
        choices=list(GRAPH_FAMILIES),
        default=["lattice"],
        help="graph families in the workload mix",
    )
    loadgen_parser.add_argument(
        "--sizes", type=int, nargs="+", default=[10], help="graph sizes in the mix"
    )
    loadgen_parser.add_argument(
        "--seeds", type=int, nargs="+", default=[11], help="graph seeds in the mix"
    )
    loadgen_parser.add_argument(
        "--kind",
        choices=list(JOB_KINDS),
        default="compile",
        help="job kind issued by every request",
    )
    loadgen_parser.add_argument(
        "--requests", type=int, default=50, help="total number of requests"
    )
    loadgen_parser.add_argument(
        "--concurrency", type=int, default=4, help="closed-loop worker threads"
    )
    loadgen_parser.add_argument(
        "--timeout", type=float, default=120.0, help="per-request timeout in seconds"
    )
    loadgen_parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="retries per request after a connection failure or HTTP 503 "
        "(compiles are content-hash idempotent, so re-POSTing is safe)",
    )
    loadgen_parser.add_argument(
        "--kill-worker-after",
        type=int,
        default=None,
        help="fault injection: SIGKILL one compile worker of the target "
        "fleet after this many completed requests (requires a fleet front "
        "end; the run must still finish with zero errors)",
    )
    loadgen_parser.add_argument(
        "--kill-front-end-after",
        type=int,
        default=None,
        help="failover drill: SIGKILL the front end itself (the first "
        "--url address) after this many completed requests; pair with a "
        "comma-separated --url and generous --retries — the run must "
        "finish against the promoted standby with zero lost and zero "
        "duplicated accepted requests",
    )
    loadgen_parser.add_argument(
        "--fault-schedule",
        default=None,
        help="deterministic fault injection: a JSON schedule (inline object "
        "or a file path) installed before the run; with --self-serve the "
        "schedule also reaches the spawned fleet workers via "
        "REPRO_FAULT_SCHEDULE",
    )
    loadgen_parser.add_argument(
        "--poison-seed",
        type=int,
        default=None,
        help="chaos testing: send one extra payload (the first family/size "
        "with this graph seed) as the final request; the run then requires "
        "exactly one HTTP 422 poison quarantine to exit 0",
    )
    loadgen_parser.add_argument(
        "--metrics-out",
        default=None,
        help="scrape GET /metrics after the run (before a self-served fleet "
        "shuts down) and write the exposition to this file",
    )
    loadgen_parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="attach this anytime-compilation deadline to every request "
        "(routes the server through the portfolio compiler and reports the "
        "deadline-miss rate and served quality)",
    )
    loadgen_parser.add_argument(
        "--priority",
        choices=list(PRIORITY_CLASSES),
        default=None,
        help="admission-control priority class for every request "
        "(only meaningful with --deadline-ms)",
    )
    loadgen_parser.add_argument(
        "--max-deadline-miss-rate",
        type=float,
        default=None,
        help="fail (exit 7) when the observed deadline-miss rate is higher; "
        "requires --deadline-ms",
    )
    loadgen_parser.add_argument(
        "--min-cache-hit-rate",
        type=float,
        default=None,
        help="fail (exit 7) when the observed cache-hit rate is lower; "
        "use on a second identical run to prove the cache works",
    )
    loadgen_parser.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help="also dump the report summary to this JSON file",
    )

    bench_parser = subparsers.add_parser(
        "bench",
        help="run the emitter perf-trajectory benchmark (naive vs incremental "
        "height function, dense vs packed end-to-end compile) and write "
        "BENCH_emitters.json",
    )
    bench_parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        help="graph sizes to sweep (default: 64 128 256 512)",
    )
    bench_parser.add_argument(
        "--compile-sizes",
        type=int,
        nargs="*",
        default=None,
        help="graph sizes for the end-to-end compile section "
        "(default: 32 64 128 256; pass with no values to skip the section)",
    )
    bench_parser.add_argument(
        "--cache-sizes",
        type=int,
        nargs="*",
        default=None,
        help="vertex counts for the subgraph-compile-cache section, swept "
        "over the lattice/surface/regular zoo families "
        "(default: 128 256; pass with no values to skip the section)",
    )
    bench_parser.add_argument(
        "--portfolio-sizes",
        type=int,
        nargs="*",
        default=None,
        help="graph sizes for the anytime-portfolio section (deadline sweep "
        "over the zoo families; default: 16 24; pass with no values to "
        "skip the section)",
    )
    bench_parser.add_argument(
        "--portfolio-deadlines-ms",
        type=float,
        nargs="+",
        default=None,
        help="deadline grid for the portfolio section in milliseconds "
        "(default: 50 200 1000 5000)",
    )
    bench_parser.add_argument(
        "--arena-sizes",
        type=int,
        nargs="*",
        default=None,
        help="matrix widths for the arena-vs-packed kernel section "
        "(default: 64 128 256 512 1024; pass with no values to skip the "
        "section)",
    )
    bench_parser.add_argument(
        "--stream-sizes",
        type=int,
        nargs="*",
        default=None,
        help="vertex counts for the streaming-compile section, swept over "
        "the lattice/ghz families under tracemalloc "
        "(default: 25600 102400; pass with no values to skip the section)",
    )
    bench_parser.add_argument(
        "--repeats", type=int, default=3, help="timing repetitions per point"
    )
    bench_parser.add_argument(
        "--seed", type=int, default=2025, help="graph-sampling seed"
    )
    bench_parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=None,
        help="GF(2) backend for both evaluations (default: process default)",
    )
    bench_parser.add_argument(
        "--output",
        default="BENCH_emitters.json",
        help="where to write the benchmark record",
    )
    return parser


def _stream_compile(args: argparse.Namespace) -> int:
    """The ``repro compile --stream`` path: bounded-window streaming."""
    import tracemalloc

    from repro.core.streaming import compile_stream
    from repro.graphs.lazy import STREAM_FAMILIES, make_stream_spec

    if args.family not in STREAM_FAMILIES:
        raise ValueError(
            f"--stream supports families {STREAM_FAMILIES}, got {args.family!r}"
        )
    spec = make_stream_spec(args.family, args.size, seed=args.seed, chunk=args.chunk)
    tracemalloc.start()
    result = compile_stream(spec, collect_operations=args.verify)
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    print(
        f"stream: {spec.family} with {spec.num_vertices} qubits in "
        f"{result.num_regions} regions"
    )
    print(
        f"window: capacity {result.window_capacity} photons, "
        f"peak {result.peak_window_photons}"
    )
    print(f"peak traced memory: {peak_bytes} bytes")
    print("stream result:")
    summary = {
        "num_emitters": result.num_emitters,
        "num_operations": result.num_operations,
        "num_emissions": result.num_emissions,
        "num_emitter_emitter_gates": result.num_emitter_emitter_gates,
        "emitters_over_budget": result.emitters_over_budget,
        "elapsed_seconds": f"{result.elapsed_seconds:.3f}",
    }
    for key, value in sorted(summary.items()):
        print(f"  {key}: {value}")
    for op_name, count in result.op_counts.items():
        print(f"  ops.{op_name}: {count}")
    if args.verify:
        from repro.core.strategies import greedy_reduce

        oracle = greedy_reduce(spec.materialize())
        if (
            result.operations != oracle.operations
            or result.num_emitters != oracle.num_emitters
        ):
            raise AssertionError(
                "streamed operations diverge from the whole-graph reduction"
            )
        print("verified: streamed operations bit-identical to the whole-graph "
              "greedy reduction")
    return EXIT_OK


def _run_compile(args: argparse.Namespace) -> int:
    if args.stream:
        return _stream_compile(args)
    if args.family in ("percolated", "ghz"):
        raise ValueError(
            f"family {args.family!r} is streaming-only here; pass --stream "
            "(or use `repro batch` for the materialised zoo family)"
        )
    graph = benchmark_graph(args.family, args.size, seed=args.seed)
    overrides: dict[str, object] = {"gf2_backend": args.backend}
    if args.ordering is not None:
        overrides["ordering_strategy"] = args.ordering
    config = fast_config(
        emitter_limit_factor=args.emitter_factor, verify=args.verify
    ).with_overrides(**overrides)
    portfolio = None
    if args.deadline_ms is not None or args.portfolio_budget is not None:
        from repro.core.portfolio import PortfolioCompiler

        portfolio = PortfolioCompiler(config).compile(
            graph,
            deadline_ms=args.deadline_ms,
            budget=args.portfolio_budget,
            family=args.family,
        )
        result = portfolio.result
    else:
        result = EmitterCompiler(config).compile(graph)
    print(f"graph: {args.family} with {graph.num_vertices} qubits, {graph.num_edges} edges")
    if portfolio is not None:
        missed = "MISSED" if portfolio.deadline_missed else "met"
        budget_note = (
            f"deadline {args.deadline_ms:g} ms ({missed})"
            if args.deadline_ms is not None
            else f"budget {args.portfolio_budget} rungs"
        )
        print(
            f"portfolio: winner {portfolio.winner!r} after "
            f"{portfolio.elapsed_seconds:.3f}s  [{budget_note}]"
        )
        for outcome in portfolio.outcomes:
            record = outcome.as_record()
            quality = record["quality"]
            quality_note = (
                "pending"
                if quality is None
                else f"cnots={quality[0]:g} loss={quality[1]:.3f} dur={quality[2]:g}"
            )
            print(
                f"  rung {record['name']}: {record['status']}  {quality_note}"
                f"  ({record['reason']})"
            )
    print("framework result:")
    for key, value in sorted(result.summary().items()):
        print(f"  {key}: {value}")
    if result.subgraph_cache_stats is not None:
        stats = result.subgraph_cache_stats
        print(
            "subgraph compile cache: "
            f"hits {stats['hits']}  misses {stats['misses']}  "
            f"hit rate {stats['hit_rate']:.2f}"
        )
    if args.baseline:
        baseline = BaselineCompiler(hardware=config.hardware, verify=args.verify).compile(graph)
        print("baseline result:")
        for key, value in sorted(baseline.metrics.as_dict().items()):
            print(f"  {key}: {value}")
    if args.show_circuit:
        print("circuit:")
        print(result.circuit.pretty())
    return EXIT_OK


def _run_figure(args: argparse.Namespace) -> int:
    data = _FIGURES[args.figure](args)
    print(data.to_text())
    return EXIT_OK


def _batch_row(outcome) -> list[object]:
    record = outcome.result or {}
    ours = record.get("ours", {})
    baseline = record.get("baseline", {})
    status = "error" if outcome.error else ("cached" if outcome.cache_hit else "ran")
    return [
        outcome.job.label,
        record.get("num_qubits", "-"),
        ours.get("num_emitter_emitter_cnots", "-"),
        baseline.get("num_emitter_emitter_cnots", "-"),
        f"{outcome.elapsed_seconds:.3f}",
        status,
    ]


def _run_batch(args: argparse.Namespace) -> int:
    jobs = [
        job
        for family in args.families
        for seed in args.seeds
        for factor in args.factors
        for job in sweep_jobs(
            family,
            args.sizes,
            kind=args.kind,
            seed=seed,
            emitter_limit_factor=factor,
            backend=args.backend,
            ordering=args.ordering,
            verify=args.verify,
        )
    ]
    runner = BatchRunner(max_workers=args.workers, cache_dir=args.cache_dir)
    report = runner.run(jobs)

    print(
        render_table(
            ["job", "qubits", "ours_cnot", "baseline_cnot", "seconds", "status"],
            [_batch_row(outcome) for outcome in report.outcomes],
        )
    )
    summary = report.summary()
    print(
        f"jobs: {summary['num_jobs']}  cache hits: {summary['num_cache_hits']}  "
        f"errors: {summary['num_errors']}  wall: {summary['wall_seconds']:.3f}s  "
        f"compute: {summary['compute_seconds']:.3f}s"
    )
    for outcome in report.outcomes:
        if outcome.error:
            print(f"FAILED {outcome.job.label}: {outcome.error}")
    if args.json_path:
        payload = {
            "summary": summary,
            "jobs": [
                {
                    "label": outcome.job.label,
                    "cache_hit": outcome.cache_hit,
                    "elapsed_seconds": outcome.elapsed_seconds,
                    "error": outcome.error,
                    "result": outcome.result,
                }
                for outcome in report.outcomes
            ],
        }
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json_path}")
    return EXIT_BATCH if report.num_errors else EXIT_OK


def _install_fault_schedule(value: str) -> None:
    """Parse and install a fault schedule, exporting it for child workers.

    The value is validated eagerly (a malformed schedule fails the command
    instead of being discovered mid-chaos-run) and exported as
    ``REPRO_FAULT_SCHEDULE`` so spawned fleet workers inherit it.
    """
    import os

    from repro.utils.faults import FaultSchedule, install_schedule

    schedule = FaultSchedule.from_env_value(value)
    os.environ["REPRO_FAULT_SCHEDULE"] = value
    install_schedule(schedule)


def _parse_hostport(value: str, flag: str) -> tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"{flag} must be HOST:PORT, got {value!r}")
    return host, int(port)


def _run_serve(args: argparse.Namespace) -> int:
    if args.fault_schedule:
        _install_fault_schedule(args.fault_schedule)
    if (args.standby or args.replicate_to) and not args.lease:
        print("serve: --standby/--replicate-to require --lease", file=sys.stderr)
        return EXIT_SERVE
    if args.standby:
        if not args.replicate_to:
            print(
                "serve: --standby needs --replicate-to (the replication "
                "address to listen on)",
                file=sys.stderr,
            )
            return EXIT_SERVE
        return _run_serve_standby(args)
    if args.replicate_to and args.workers <= 1:
        print("serve: --replicate-to requires fleet mode (--workers > 1)",
              file=sys.stderr)
        return EXIT_SERVE
    if args.workers > 1:
        return _run_serve_fleet(args)
    return _run_serve_single(args)


def _run_serve_single(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.service.server import CompileServer, CompileService

    service = CompileService(
        cache_dir=args.cache_dir,
        max_workers=args.pool_workers,
        batch_window_seconds=args.batch_window_ms / 1000.0,
        max_batch=args.max_batch,
        subgraph_cache_dir=args.subgraph_cache_dir,
        compile_timeout_s=args.compile_timeout_s,
    )
    server = CompileServer((args.host, args.port), service, verbose=args.verbose)
    host, port = server.server_address[:2]
    cache_note = args.cache_dir if args.cache_dir else "disabled"
    print(f"repro serve: listening on http://{host}:{port} (cache: {cache_note})")
    print("endpoints: POST /compile, POST /batch, GET /status/<job>, GET /healthz")

    def _drain_handler(signum, frame):  # noqa: ARG001 - signal API
        # Drain on a helper thread: shutdown() would deadlock the serving
        # loop this handler interrupts.
        threading.Thread(
            target=server.drain,
            kwargs={"timeout": args.drain_timeout},
            daemon=True,
        ).start()

    signal.signal(signal.SIGTERM, _drain_handler)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.shutdown()
        server.server_close()
    return EXIT_OK


def _run_serve_fleet(args: argparse.Namespace) -> int:
    from repro.service.fleet import (
        FleetServer,
        FleetSupervisor,
        install_sigterm_drain,
    )

    epoch = 0
    lease = None
    replication = None
    if args.replicate_to:
        from repro.service.replication import Lease, ReplicationLink

        lease = Lease(args.lease, holder="primary")
        epoch = lease.acquire()
        replication = ReplicationLink(
            _parse_hostport(args.replicate_to, "--replicate-to"), epoch=epoch
        )
    supervisor = FleetSupervisor(
        args.workers,
        host=args.host,
        cache_dir=args.cache_dir,
        subgraph_cache_dir=args.subgraph_cache_dir,
        journal_path=args.journal or None,
        pool_workers=args.pool_workers,
        batch_window_ms=args.batch_window_ms,
        heartbeat_seconds=args.heartbeat_seconds,
        max_job_attempts=args.max_job_attempts,
        compile_timeout_s=args.compile_timeout_s,
        epoch=epoch,
        replication=replication,
        lease=lease,
        hedge_quantile=args.hedge_quantile,
    )
    supervisor.start()
    server = FleetServer((args.host, args.port), supervisor, verbose=args.verbose)
    install_sigterm_drain(server, timeout=args.drain_timeout)
    host, port = server.server_address[:2]
    cache_note = args.cache_dir if args.cache_dir else "disabled"
    journal_note = args.journal if args.journal else "disabled"
    print(
        f"repro serve: fleet of {args.workers} workers behind "
        f"http://{host}:{port} (cache: {cache_note}, journal: {journal_note})"
    )
    if replication is not None:
        print(
            f"repro serve: primary at epoch {epoch}, replicating the journal "
            f"to {args.replicate_to} (lease: {args.lease})"
        )
    print(
        "endpoints: POST /compile, POST /batch, GET /status/<job>, "
        "GET /healthz, GET /metrics"
    )
    try:
        server.serve_forever()
    finally:
        supervisor.stop()
        server.server_close()
    return EXIT_OK


def _run_serve_standby(args: argparse.Namespace) -> int:
    from repro.service.ha import StandbyCoordinator

    coordinator = StandbyCoordinator(
        args.workers,
        (args.host, args.port),
        _parse_hostport(args.replicate_to, "--replicate-to"),
        journal_path=args.journal,
        lease_path=args.lease,
        failover_after_seconds=args.failover_after_seconds,
        supervisor_kwargs={
            "cache_dir": args.cache_dir,
            "subgraph_cache_dir": args.subgraph_cache_dir,
            "pool_workers": args.pool_workers,
            "batch_window_ms": args.batch_window_ms,
            "heartbeat_seconds": args.heartbeat_seconds,
            "max_job_attempts": args.max_job_attempts,
            "compile_timeout_s": args.compile_timeout_s,
            "hedge_quantile": args.hedge_quantile,
        },
    )
    coordinator.start()
    print(
        f"repro serve: standby sinking replication on {args.replicate_to}; "
        f"will promote onto http://{args.host}:{args.port} after "
        f"{args.failover_after_seconds:.1f}s of primary silence "
        f"(lease: {args.lease})"
    )
    try:
        coordinator.serve_forever(install_signals=True)
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        coordinator.stop()
    return EXIT_OK


def _run_loadgen(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient
    from repro.service.loadgen import run_loadgen, workload_payloads
    from repro.service.server import start_server

    if bool(args.url) == bool(args.self_serve):
        print("loadgen: pass exactly one of --url or --self-serve", file=sys.stderr)
        return EXIT_LOADGEN
    if args.max_deadline_miss_rate is not None and args.deadline_ms is None:
        print(
            "loadgen: --max-deadline-miss-rate requires --deadline-ms",
            file=sys.stderr,
        )
        return EXIT_LOADGEN
    if args.kill_front_end_after is not None and not args.url:
        # A self-served front end runs in *this* process: SIGKILLing its
        # /healthz pid would kill the load generator itself.
        print(
            "loadgen: --kill-front-end-after requires --url (an external "
            "primary/standby pair)",
            file=sys.stderr,
        )
        return EXIT_LOADGEN
    if args.fault_schedule:
        _install_fault_schedule(args.fault_schedule)
    payloads = workload_payloads(
        args.families,
        args.sizes,
        seeds=args.seeds,
        kind=args.kind,
        deadline_ms=args.deadline_ms,
        priority=args.priority,
    )
    poison_payload = None
    if args.poison_seed is not None:
        # One extra job, distinguishable from the mix by its seed: a crash
        # rule matching "#<seed>" in the job label hits only this request.
        poison_payload = dict(payloads[0])
        poison_payload["seed"] = args.poison_seed
    server = None
    supervisor = None
    try:
        if args.self_serve:
            if args.self_serve_workers > 1:
                from repro.service.fleet import start_fleet

                server, supervisor, _ = start_fleet(
                    args.self_serve_workers, cache_dir=args.cache_dir
                )
            else:
                server, _ = start_server(cache_dir=args.cache_dir)
            host, port = server.server_address[:2]
            url = f"http://{host}:{port}"
            print(f"loadgen: self-serving on {url}")
        else:
            url = args.url
        # A freshly backgrounded `repro serve` may still be binding; wait for
        # /healthz instead of burning every request on connection-refused.
        ServiceClient(url, timeout=args.timeout).wait_until_ready(
            timeout=max(10.0, args.timeout)
        )
        report = run_loadgen(
            url,
            payloads,
            requests=args.requests,
            concurrency=args.concurrency,
            timeout=args.timeout,
            retries=args.retries,
            kill_worker_after=args.kill_worker_after,
            kill_front_end_after=args.kill_front_end_after,
            poison_payload=poison_payload,
        )
        if args.metrics_out:
            # Scraped before the self-served instance shuts down; uses raw
            # urllib because /metrics is a text exposition, not JSON.  With
            # a multi-address --url the first live front end answers (after
            # a failover drill that is the promoted standby).
            from urllib.request import urlopen

            exposition = None
            scrape_error: Exception | None = None
            for base in str(url).split(","):
                try:
                    with urlopen(
                        f"{base.strip()}/metrics", timeout=args.timeout
                    ) as response:
                        exposition = response.read().decode("utf-8")
                    break
                except OSError as exc:
                    scrape_error = exc
            if exposition is None:
                raise scrape_error or OSError("no front end answered /metrics")
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                handle.write(exposition)
    finally:
        if supervisor is not None:
            supervisor.stop()
        if server is not None:
            server.shutdown()
            server.server_close()
    print(report.to_text())
    if args.metrics_out:
        print(f"wrote {args.metrics_out}")
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(report.summary(), handle, indent=2, sort_keys=True)
        print(f"wrote {args.json_path}")
    if not report.ok:
        return EXIT_LOADGEN
    if args.poison_seed is not None and report.poisoned != 1:
        print(
            f"loadgen: expected exactly 1 poisoned request, saw {report.poisoned}",
            file=sys.stderr,
        )
        return EXIT_LOADGEN
    if (
        args.min_cache_hit_rate is not None
        and report.cache_hit_rate < args.min_cache_hit_rate
    ):
        print(
            f"loadgen: cache-hit rate {report.cache_hit_rate:.2f} below required "
            f"{args.min_cache_hit_rate:.2f}",
            file=sys.stderr,
        )
        return EXIT_LOADGEN
    if (
        args.max_deadline_miss_rate is not None
        and report.deadline_miss_rate > args.max_deadline_miss_rate
    ):
        print(
            f"loadgen: deadline-miss rate {report.deadline_miss_rate:.2f} above "
            f"allowed {args.max_deadline_miss_rate:.2f}",
            file=sys.stderr,
        )
        return EXIT_LOADGEN
    return EXIT_OK


def _run_bench(args: argparse.Namespace) -> int:
    from repro.evaluation.perf import (
        DEFAULT_ARENA_SIZES,
        DEFAULT_BENCH_SIZES,
        DEFAULT_CACHE_SIZES,
        DEFAULT_COMPILE_SIZES,
        DEFAULT_PORTFOLIO_DEADLINES_MS,
        DEFAULT_PORTFOLIO_SIZES,
        DEFAULT_STREAM_SIZES,
        write_bench_file,
    )

    sizes = tuple(args.sizes) if args.sizes else DEFAULT_BENCH_SIZES
    compile_sizes = (
        tuple(args.compile_sizes)
        if args.compile_sizes is not None
        else DEFAULT_COMPILE_SIZES
    )
    cache_sizes = (
        tuple(args.cache_sizes)
        if args.cache_sizes is not None
        else DEFAULT_CACHE_SIZES
    )
    portfolio_sizes = (
        tuple(args.portfolio_sizes)
        if args.portfolio_sizes is not None
        else DEFAULT_PORTFOLIO_SIZES
    )
    portfolio_deadlines = (
        tuple(args.portfolio_deadlines_ms)
        if args.portfolio_deadlines_ms is not None
        else DEFAULT_PORTFOLIO_DEADLINES_MS
    )
    arena_sizes = (
        tuple(args.arena_sizes) if args.arena_sizes is not None else DEFAULT_ARENA_SIZES
    )
    stream_sizes = (
        tuple(args.stream_sizes)
        if args.stream_sizes is not None
        else DEFAULT_STREAM_SIZES
    )
    record = write_bench_file(
        args.output,
        sizes=sizes,
        repeats=args.repeats,
        seed=args.seed,
        backend=args.backend,
        compile_sizes=compile_sizes,
        cache_sizes=cache_sizes,
        portfolio_sizes=portfolio_sizes,
        portfolio_deadlines_ms=portfolio_deadlines,
        arena_sizes=arena_sizes,
        stream_sizes=stream_sizes,
    )
    print("height function (naive per-prefix vs incremental engine):")
    print(
        render_table(
            ["size", "naive_s", "incremental_s", "speedup", "natural_peak", "greedy_peak"],
            [
                [
                    row["size"],
                    f"{row['naive_median_seconds']:.4f}",
                    f"{row['incremental_median_seconds']:.4f}",
                    f"{row['speedup']:.1f}x",
                    row["natural_peak"],
                    row["greedy_peak"],
                ]
                for row in record["results"]
            ],
        )
    )
    if record["compile_results"]:
        print("end-to-end compile_graph (dense oracle vs packed fast path):")
        print(
            render_table(
                ["size", "dense_s", "packed_s", "speedup", "ee_cnots"],
                [
                    [
                        row["size"],
                        f"{row['naive_median_seconds']:.4f}",
                        f"{row['packed_median_seconds']:.4f}",
                        f"{row['speedup']:.1f}x",
                        row["num_emitter_emitter_cnots"],
                    ]
                    for row in record["compile_results"]
                ],
            )
        )
    if record["cache_results"]:
        print("subgraph compile cache (cold vs first-run vs warm compile_graph):")
        print(
            render_table(
                [
                    "family",
                    "vertices",
                    "cold_s",
                    "first_run_s",
                    "warm_s",
                    "warm_speedup",
                    "hit_rate",
                ],
                [
                    [
                        row["family"],
                        row["num_vertices"],
                        f"{row['cold_median_seconds']:.4f}",
                        f"{row['first_run_median_seconds']:.4f}",
                        f"{row['warm_median_seconds']:.4f}",
                        f"{row['warm_speedup']:.1f}x",
                        f"{row['warm_hit_rate']:.2f}",
                    ]
                    for row in record["cache_results"]
                ],
            )
        )
    if record["portfolio_results"]:
        print("anytime portfolio (best quality within each deadline):")
        print(
            render_table(
                ["family", "vertices", "deadline_ms", "rungs", "ee_cnots", "duration"],
                [
                    [
                        row["family"],
                        row["num_vertices"],
                        f"{point['deadline_ms']:g}",
                        point["rungs_run"],
                        f"{point['quality']['num_emitter_emitter_cnots']:g}",
                        f"{point['quality']['duration']:g}",
                    ]
                    for row in record["portfolio_results"]
                    for point in row["anytime_curve"]
                ],
            )
        )
    if record["arena_results"]:
        arena = record["arena_results"]
        print("arena GF(2) kernels (packed big-int vs word-arena rref):")
        print(
            render_table(
                ["width", "packed_s", "arena_s", "speedup"],
                [
                    [
                        row["size"],
                        f"{row['packed_rref_median_seconds']:.4f}",
                        f"{row['arena_rref_median_seconds']:.4f}",
                        f"{row['rref_speedup']:.1f}x",
                    ]
                    for row in arena["kernel_results"]
                ],
            )
        )
        crossover = arena["crossover_size"]
        print(
            f"  crossover: {crossover if crossover is not None else 'not reached'}"
            f"  (auto-selection threshold default: {arena['default_threshold']})"
        )
    if record["stream_results"]:
        print("streaming partition-compile (bounded window, tracemalloc peak):")
        print(
            render_table(
                ["family", "vertices", "regions", "window", "emitters", "peak_mem", "seconds"],
                [
                    [
                        row["family"],
                        row["num_vertices"],
                        row["num_regions"],
                        row["window_capacity"],
                        row["num_emitters"],
                        f"{row['peak_traced_bytes'] / 1e6:.2f}MB",
                        f"{row['elapsed_seconds']:.2f}",
                    ]
                    for row in record["stream_results"]
                ],
            )
        )
    if record["peak_memory_bytes"]:
        sections = "  ".join(
            f"{name}={bytes_ / 1e6:.1f}MB"
            for name, bytes_ in sorted(record["peak_memory_bytes"].items())
        )
        print(f"per-section tracemalloc peaks: {sections}")
    print(
        f"backend: {record['backend']}  git: {record['git_rev']}  "
        f"repeats: {record['repeats']}"
    )
    print(f"wrote {args.output}")
    return EXIT_OK


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Parameters
    ----------
    argv : list[str] | None, optional
        Argument vector (default: ``sys.argv[1:]``).

    Returns
    -------
    int
        ``0`` on success; each subcommand has its own non-zero failure code
        (see the module docstring).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "compile": (_run_compile, EXIT_COMPILE),
        "figure": (_run_figure, EXIT_FIGURE),
        "batch": (_run_batch, EXIT_BATCH),
        "serve": (_run_serve, EXIT_SERVE),
        "loadgen": (_run_loadgen, EXIT_LOADGEN),
        "bench": (_run_bench, EXIT_BENCH),
    }
    handler, failure_code = handlers[args.command]
    try:
        return handler(args)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("interrupted", file=sys.stderr)
        return failure_code
    except Exception as exc:  # noqa: BLE001 - the CLI boundary reports, not raises
        print(f"repro {args.command}: {type(exc).__name__}: {exc}", file=sys.stderr)
        return failure_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
