"""Command-line interface.

Three subcommands cover the common workflows:

* ``repro compile`` — compile one benchmark graph and print the circuit
  metrics (optionally the gate listing);
* ``repro figure`` — regenerate one of the paper's figures and print the
  data table;
* ``repro batch`` — run a whole sweep of compilation jobs through the batch
  pipeline, optionally across processes and with content-hash result caching.

Examples::

    repro compile --family lattice --size 20
    repro compile --family tree --size 30 --baseline --verify
    repro figure fig10a
    repro figure fig11b
    repro batch --families lattice tree --sizes 10 20 --seeds 11 12 --workers 4
    repro batch --families random --sizes 15 25 --cache-dir .repro-cache

(The ``repro-emitter`` alias of the console script is kept for backwards
compatibility.)
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.baseline.naive import BaselineCompiler
from repro.core.compiler import EmitterCompiler
from repro.evaluation.experiments import fast_config, sweep_jobs
from repro.evaluation import figures
from repro.evaluation.report import render_table
from repro.graphs.generators import benchmark_graph
from repro.pipeline.jobs import JOB_KINDS
from repro.pipeline.runner import BatchRunner
from repro.utils.backend import BACKENDS

__all__ = ["main", "build_parser"]

_FIGURES = {
    "fig5": lambda args: figures.figure5_emitter_usage(),
    "fig10a": lambda args: figures.figure10_cnot("lattice", sizes=args.sizes),
    "fig10b": lambda args: figures.figure10_cnot("tree", sizes=args.sizes),
    "fig10c": lambda args: figures.figure10_cnot("random", sizes=args.sizes),
    "fig10d": lambda args: figures.figure10_duration("lattice", sizes=args.sizes),
    "fig10e": lambda args: figures.figure10_duration("tree", sizes=args.sizes),
    "fig10f": lambda args: figures.figure10_duration("random", sizes=args.sizes),
    "fig11a": lambda args: figures.figure11_loss(),
    "fig11b": lambda args: figures.figure11_lc_edges(),
    "runtime": lambda args: figures.runtime_scaling(),
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Emitter-photonic graph-state compilation framework (DAC 2025 reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    compile_parser = subparsers.add_parser(
        "compile", help="compile one benchmark graph and print its metrics"
    )
    compile_parser.add_argument(
        "--family",
        choices=["lattice", "tree", "random"],
        default="lattice",
        help="benchmark graph family",
    )
    compile_parser.add_argument("--size", type=int, default=20, help="number of qubits")
    compile_parser.add_argument("--seed", type=int, default=11, help="graph seed")
    compile_parser.add_argument(
        "--emitter-factor",
        type=float,
        default=1.5,
        help="emitter limit as a multiple of N_e^min",
    )
    compile_parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=None,
        help="GF(2)/tableau kernel backend (default: process default, packed)",
    )
    compile_parser.add_argument(
        "--baseline", action="store_true", help="also compile with the baseline"
    )
    compile_parser.add_argument(
        "--verify", action="store_true", help="verify circuits on the stabilizer simulator"
    )
    compile_parser.add_argument(
        "--show-circuit", action="store_true", help="print the compiled gate list"
    )

    figure_parser = subparsers.add_parser(
        "figure", help="regenerate one of the paper's figures"
    )
    figure_parser.add_argument("figure", choices=sorted(_FIGURES))
    figure_parser.add_argument(
        "--sizes",
        type=int,
        nargs="*",
        default=None,
        help="override the sweep sizes (number of qubits per point)",
    )

    batch_parser = subparsers.add_parser(
        "batch",
        help="run a sweep of compilation jobs through the batch pipeline",
    )
    batch_parser.add_argument(
        "--kind",
        choices=list(JOB_KINDS),
        default="comparison",
        help="what each job computes (default: framework-vs-baseline comparison)",
    )
    batch_parser.add_argument(
        "--families",
        nargs="+",
        default=["lattice"],
        help="graph families to sweep (lattice/tree/random/waxman/linear/...)",
    )
    batch_parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=[10, 20, 30],
        help="graph sizes (number of qubits per point)",
    )
    batch_parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[11],
        help="base graph seeds (one full sweep per seed)",
    )
    batch_parser.add_argument(
        "--factors",
        type=float,
        nargs="+",
        default=[1.5],
        help="emitter-limit factors N_e^limit / N_e^min",
    )
    batch_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool width; 1 runs serially in-process",
    )
    batch_parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the content-hash result cache (omit to disable)",
    )
    batch_parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=None,
        help="GF(2)/tableau kernel backend pinned for every job",
    )
    batch_parser.add_argument(
        "--verify", action="store_true", help="verify every compiled circuit"
    )
    batch_parser.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help="also dump the full per-job records to this JSON file",
    )
    return parser


def _run_compile(args: argparse.Namespace) -> int:
    graph = benchmark_graph(args.family, args.size, seed=args.seed)
    config = fast_config(
        emitter_limit_factor=args.emitter_factor, verify=args.verify
    ).with_overrides(gf2_backend=args.backend)
    result = EmitterCompiler(config).compile(graph)
    print(f"graph: {args.family} with {graph.num_vertices} qubits, {graph.num_edges} edges")
    print("framework result:")
    for key, value in sorted(result.summary().items()):
        print(f"  {key}: {value}")
    if args.baseline:
        baseline = BaselineCompiler(hardware=config.hardware, verify=args.verify).compile(graph)
        print("baseline result:")
        for key, value in sorted(baseline.metrics.as_dict().items()):
            print(f"  {key}: {value}")
    if args.show_circuit:
        print("circuit:")
        print(result.circuit.pretty())
    return 0


def _run_figure(args: argparse.Namespace) -> int:
    data = _FIGURES[args.figure](args)
    print(data.to_text())
    return 0


def _batch_row(outcome) -> list[object]:
    record = outcome.result or {}
    ours = record.get("ours", {})
    baseline = record.get("baseline", {})
    status = "error" if outcome.error else ("cached" if outcome.cache_hit else "ran")
    return [
        outcome.job.label,
        record.get("num_qubits", "-"),
        ours.get("num_emitter_emitter_cnots", "-"),
        baseline.get("num_emitter_emitter_cnots", "-"),
        f"{outcome.elapsed_seconds:.3f}",
        status,
    ]


def _run_batch(args: argparse.Namespace) -> int:
    jobs = [
        job
        for family in args.families
        for seed in args.seeds
        for factor in args.factors
        for job in sweep_jobs(
            family,
            args.sizes,
            kind=args.kind,
            seed=seed,
            emitter_limit_factor=factor,
            backend=args.backend,
            verify=args.verify,
        )
    ]
    runner = BatchRunner(max_workers=args.workers, cache_dir=args.cache_dir)
    report = runner.run(jobs)

    print(
        render_table(
            ["job", "qubits", "ours_cnot", "baseline_cnot", "seconds", "status"],
            [_batch_row(outcome) for outcome in report.outcomes],
        )
    )
    summary = report.summary()
    print(
        f"jobs: {summary['num_jobs']}  cache hits: {summary['num_cache_hits']}  "
        f"errors: {summary['num_errors']}  wall: {summary['wall_seconds']:.3f}s  "
        f"compute: {summary['compute_seconds']:.3f}s"
    )
    for outcome in report.outcomes:
        if outcome.error:
            print(f"FAILED {outcome.job.label}: {outcome.error}")
    if args.json_path:
        payload = {
            "summary": summary,
            "jobs": [
                {
                    "label": outcome.job.label,
                    "cache_hit": outcome.cache_hit,
                    "elapsed_seconds": outcome.elapsed_seconds,
                    "error": outcome.error,
                    "result": outcome.result,
                }
                for outcome in report.outcomes
            ],
        }
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json_path}")
    return 1 if report.num_errors else 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "compile":
        return _run_compile(args)
    if args.command == "figure":
        return _run_figure(args)
    if args.command == "batch":
        return _run_batch(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
