"""Baseline compilers the framework is evaluated against.

:mod:`repro.baseline.naive` re-implements the behaviour of the state-of-the-art
deterministic solver (GraphiQ's ``AlternateTargetSolver``, which follows the
minimal-emitter protocol of Li, Economou & Barnes 2022): photons are emitted
in their natural label order, the emitter pool is kept minimal, and the
resulting monolithic circuit is scheduled as-soon-as-possible without any
loss-aware reordering.
"""

from repro.baseline.naive import BaselineCompiler, BaselineResult

__all__ = ["BaselineCompiler", "BaselineResult"]
