"""The GraphiQ-like baseline compiler.

The baseline mirrors how the state-of-the-art deterministic solvers behave on
arbitrary graphs:

* photons are emitted in their **natural label order** (GraphiQ's default
  target ordering) — i.e. the reversed-time reduction processes the highest
  label first;
* the emitter pool is kept **minimal**: before allocating a new emitter the
  solver tries to liberate one by disconnecting it from the other emitters,
  reproducing the minimal-emitter behaviour of Li, Economou & Barnes (2022)
  that GraphiQ builds on (this is also what causes its long circuits — the
  liberations cost emitter-emitter CNOTs and serialise the circuit);
* the final circuit is scheduled **as soon as possible**, with no loss-aware
  re-ordering.

The reported ``minimum_emitters`` bound is evaluated through the
engine-backed fast path of :func:`repro.graphs.entanglement.height_function`
(one incremental sweep on the packed backend), so baselining large graphs no
longer pays one from-scratch rank solve per prefix.

The baseline optionally accepts a larger emitter budget (``emitter_limit``)
so that the Fig. 10(d)-(f) comparisons at ``N_e^limit = 1.5/2 x N_e^min`` give
it the same hardware resources as the framework; extra emitters are used only
when the natural-order reduction happens to need them, matching the paper's
observation that the baseline cannot exploit additional emitters well.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.circuit import Circuit
from repro.circuit.metrics import CircuitMetrics, compute_metrics
from repro.circuit.timing import GateDurations, Schedule, schedule_circuit
from repro.circuit.validation import verify_circuit_generates
from repro.core.reduction import ReductionSequence
from repro.core.strategies import GreedyReductionStrategy, greedy_reduce
from repro.graphs.entanglement import minimum_emitters
from repro.graphs.graph_state import GraphState
from repro.hardware.models import HardwareModel, quantum_dot

__all__ = ["BaselineCompiler", "BaselineResult"]


@dataclass
class BaselineResult:
    """Everything the baseline produces for one target graph."""

    circuit: Circuit
    sequence: ReductionSequence
    schedule: Schedule
    metrics: CircuitMetrics
    minimum_emitters: int
    verified: bool | None = None

    @property
    def num_emitter_emitter_cnots(self) -> int:
        return self.metrics.num_emitter_emitter_cnots

    @property
    def duration(self) -> float:
        return self.metrics.duration


class BaselineCompiler:
    """Natural-order, minimal-emitter, ASAP-scheduled compiler."""

    def __init__(
        self,
        hardware: HardwareModel | None = None,
        emitter_limit: int | None = None,
        use_twin_rule: bool = True,
        verify: bool = False,
    ):
        """Create a baseline compiler.

        Args:
            hardware: hardware model providing gate durations and the loss
                rate (defaults to the quantum-dot preset).
            emitter_limit: optional soft cap on the emitter pool.  ``None``
                keeps the pool minimal (the solver only allocates when it has
                no other option).
            use_twin_rule: allow the twin-absorption rewrite (GraphiQ's
                solvers include the equivalent move; disabling it is only
                useful for ablations).
            verify: re-simulate every compiled circuit on the stabilizer
                tableau and assert it generates the target graph state.
        """
        self.hardware = hardware if hardware is not None else quantum_dot()
        self.emitter_limit = emitter_limit
        self.use_twin_rule = use_twin_rule
        self.verify = verify

    def compile(self, target_graph: GraphState) -> BaselineResult:
        """Compile ``target_graph`` into a generation circuit."""
        if target_graph.num_vertices == 0:
            raise ValueError("cannot compile an empty graph state")
        strategy = GreedyReductionStrategy(
            emitter_budget=self.emitter_limit,
            enable_twin_rule=self.use_twin_rule,
            prefer_disconnect_over_allocate=self.emitter_limit is None,
            # Prior-art deterministic solvers resolve every "stuck" photon with
            # a time-reversed measurement; they do not perform the costed
            # disconnect-absorb move of the hardware-aware framework.
            allow_disconnect_absorb=False,
        )
        processing_order = list(reversed(target_graph.vertices()))
        sequence = greedy_reduce(
            target_graph, processing_order=processing_order, strategy=strategy, tag="baseline"
        )
        circuit = sequence.to_circuit()
        schedule = schedule_circuit(
            circuit, durations=self.hardware.durations, policy="asap"
        )
        metrics = compute_metrics(
            circuit,
            schedule=schedule,
            loss_model=self.hardware.loss_model(),
        )
        verified = None
        if self.verify:
            verified = verify_circuit_generates(circuit, target_graph)
            if not verified:
                raise RuntimeError(
                    "baseline compilation failed verification — this indicates a bug "
                    "in the reduction engine"
                )
        return BaselineResult(
            circuit=circuit,
            sequence=sequence,
            schedule=schedule,
            metrics=metrics,
            minimum_emitters=minimum_emitters(target_graph),
            verified=verified,
        )

    def durations(self) -> GateDurations:
        """The gate-duration table of the configured hardware model."""
        return self.hardware.durations
