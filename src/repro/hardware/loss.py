"""Photon loss model.

Once a photon has been emitted it sits in a delay line / fibre loop while the
rest of the graph state is generated, losing amplitude at a constant rate.
The paper models this as a fixed loss probability per time unit
(0.5 % per ``tau_QD`` for the quantum-dot platform, derived from the electron
T2 of roughly one second) and reports the *state* loss rate — the probability
that at least one photon of the final graph state has been lost.

The model here supports both the analytic computation used by the evaluation
harness and a Monte-Carlo estimate used in tests as an independent check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.utils.misc import make_rng

__all__ = ["PhotonLossModel"]


@dataclass(frozen=True)
class PhotonLossModel:
    """Exponential photon loss at ``loss_per_tau`` per unit time."""

    loss_per_tau: float = 0.005

    def __post_init__(self) -> None:
        if not 0 <= self.loss_per_tau < 1:
            raise ValueError(
                f"loss_per_tau must be in [0, 1), got {self.loss_per_tau}"
            )

    # ------------------------------------------------------------------ #
    # Analytic quantities
    # ------------------------------------------------------------------ #

    def survival_probability(self, exposure_time: float) -> float:
        """Probability that a single photon survives ``exposure_time`` units."""
        if exposure_time < 0:
            raise ValueError(f"exposure_time must be >= 0, got {exposure_time}")
        if self.loss_per_tau == 0:
            return 1.0
        return (1.0 - self.loss_per_tau) ** exposure_time

    def loss_probability(self, exposure_time: float) -> float:
        """Probability that a single photon is lost within ``exposure_time``."""
        return 1.0 - self.survival_probability(exposure_time)

    def state_survival_probability(self, exposures: Mapping[int, float]) -> float:
        """Probability that *every* photon of the state survives.

        Args:
            exposures: map ``photon index -> exposure time`` (time between the
                photon's emission and the end of the circuit), as produced by
                :meth:`repro.circuit.timing.Schedule.photon_exposure_times`.
        """
        probability = 1.0
        for exposure in exposures.values():
            probability *= self.survival_probability(exposure)
        return probability

    def state_loss_probability(self, exposures: Mapping[int, float]) -> float:
        """Probability that at least one photon of the state is lost."""
        return 1.0 - self.state_survival_probability(exposures)

    def expected_lost_photons(self, exposures: Mapping[int, float]) -> float:
        """Expected number of lost photons."""
        return sum(self.loss_probability(t) for t in exposures.values())

    # ------------------------------------------------------------------ #
    # Monte-Carlo estimate (used as an independent cross-check in tests)
    # ------------------------------------------------------------------ #

    def monte_carlo_state_loss(
        self,
        exposures: Mapping[int, float],
        num_samples: int = 10_000,
        seed: int | None = 0,
    ) -> float:
        """Estimate the state loss probability by sampling photon losses."""
        if num_samples <= 0:
            raise ValueError(f"num_samples must be > 0, got {num_samples}")
        rng = make_rng(seed)
        losses = 0
        survival_probs = [self.survival_probability(t) for t in exposures.values()]
        for _ in range(num_samples):
            for p_survive in survival_probs:
                if rng.random() > p_survive:
                    losses += 1
                    break
        return losses / num_samples

    def effective_rate_per_second(self, tau_seconds: float) -> float:
        """Convert the per-``tau`` loss into an exponential rate per second."""
        if tau_seconds <= 0:
            raise ValueError(f"tau_seconds must be > 0, got {tau_seconds}")
        if self.loss_per_tau == 0:
            return 0.0
        return -math.log(1.0 - self.loss_per_tau) / tau_seconds
