"""Hardware models for emitter-photonic platforms.

The compiler is hardware-aware: gate durations and photon loss rates enter the
cost function that drives subgraph compilation and scheduling.  This
subpackage bundles

* :mod:`repro.hardware.models` — named platform presets (silicon quantum dot,
  NV centre, SiV centre, Rydberg atom) carrying gate durations, coherence
  times and per-unit-time photon loss;
* :mod:`repro.hardware.loss` — the photon loss / survival model used in the
  Fig. 11(a) evaluation.
"""

from repro.hardware.models import (
    HardwareModel,
    nv_center,
    quantum_dot,
    rydberg_atom,
    siv_center,
    get_hardware_model,
)
from repro.hardware.loss import PhotonLossModel

__all__ = [
    "HardwareModel",
    "quantum_dot",
    "nv_center",
    "siv_center",
    "rydberg_atom",
    "get_hardware_model",
    "PhotonLossModel",
]
