"""Named hardware platform models.

The paper's simulations use the **silicon quantum-dot** emitter model:

* the emitter-emitter CNOT is realised by exchange coupling with strength
  ``J``; two sqrt(SWAP) pulses interleaved with single-qubit rotations give a
  CNOT of total duration ``tau_QD = 2 pi / J`` (1 ns for ``J = 2 pi x 1 GHz``);
* cavity-enhanced photon emission takes about ``0.1 tau_QD``;
* electron-spin coherence ``T2`` is of order one second;
* the photon loss rate used in Fig. 11(a) is 0.5 % per ``tau_QD``.

All durations in this package are expressed in units of ``tau_QD`` (the
emitter-emitter gate time), which is how the paper reports circuit duration;
``tau_seconds`` records the absolute timescale so results can be converted.
The other presets (NV, SiV, Rydberg) keep the same structure with
platform-typical relative numbers, demonstrating that the framework is
retargetable by swapping the configuration only.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.timing import GateDurations

__all__ = [
    "HardwareModel",
    "quantum_dot",
    "nv_center",
    "siv_center",
    "rydberg_atom",
    "get_hardware_model",
]


@dataclass(frozen=True)
class HardwareModel:
    """A platform configuration for emitter-based graph-state generation.

    Attributes:
        name: human-readable platform name.
        durations: gate durations in units of the emitter-emitter gate time.
        tau_seconds: absolute duration of one time unit, in seconds.
        photon_loss_per_tau: probability that a stored/flying photon is lost
            during one time unit.
        emitter_coherence_time: emitter T2 in time units.
        emitter_emitter_fidelity: fidelity of the emitter-emitter two-qubit
            gate (used for reporting, not for the loss figure).
    """

    name: str
    durations: GateDurations
    tau_seconds: float
    photon_loss_per_tau: float
    emitter_coherence_time: float
    emitter_emitter_fidelity: float

    def __post_init__(self) -> None:
        if not 0 <= self.photon_loss_per_tau < 1:
            raise ValueError(
                f"photon_loss_per_tau must be in [0, 1), got {self.photon_loss_per_tau}"
            )
        if self.tau_seconds <= 0:
            raise ValueError(f"tau_seconds must be > 0, got {self.tau_seconds}")
        if self.emitter_coherence_time <= 0:
            raise ValueError(
                f"emitter_coherence_time must be > 0, got {self.emitter_coherence_time}"
            )
        if not 0 < self.emitter_emitter_fidelity <= 1:
            raise ValueError(
                "emitter_emitter_fidelity must be in (0, 1], got "
                f"{self.emitter_emitter_fidelity}"
            )

    def loss_model(self):
        """Build the :class:`repro.hardware.loss.PhotonLossModel` of the platform."""
        from repro.hardware.loss import PhotonLossModel

        return PhotonLossModel(loss_per_tau=self.photon_loss_per_tau)

    def circuit_fidelity_estimate(self, num_emitter_emitter_gates: int) -> float:
        """Crude state-fidelity estimate from the emitter-emitter gate count."""
        if num_emitter_emitter_gates < 0:
            raise ValueError("gate count must be >= 0")
        return self.emitter_emitter_fidelity ** num_emitter_emitter_gates


def quantum_dot(
    exchange_strength_ghz: float = 1.0, photon_loss_per_tau: float = 0.005
) -> HardwareModel:
    """Silicon quantum-dot emitters (the paper's default hardware model).

    Args:
        exchange_strength_ghz: exchange interaction ``J / 2 pi`` in GHz;
            ``tau_QD = 2 pi / J = 1 / (J/2pi)`` nanoseconds.
        photon_loss_per_tau: photon loss probability per ``tau_QD``
            (paper value: 0.5 %).
    """
    if exchange_strength_ghz <= 0:
        raise ValueError("exchange_strength_ghz must be > 0")
    tau_seconds = 1e-9 / exchange_strength_ghz
    t2_seconds = 1.0  # electron-spin coherence ~ 1 s
    return HardwareModel(
        name="quantum_dot",
        durations=GateDurations(
            emitter_emitter_gate=1.0,
            emission=0.1,
            emitter_single_qubit=0.05,
            photon_single_qubit=0.01,
            measurement=0.1,
            reset=0.05,
        ),
        tau_seconds=tau_seconds,
        photon_loss_per_tau=photon_loss_per_tau,
        emitter_coherence_time=t2_seconds / tau_seconds,
        emitter_emitter_fidelity=0.99,
    )


def nv_center() -> HardwareModel:
    """Nitrogen-vacancy colour-centre emitters (slower two-qubit gates)."""
    tau_seconds = 1e-6  # electron-nuclear gates in the microsecond regime
    return HardwareModel(
        name="nv_center",
        durations=GateDurations(
            emitter_emitter_gate=1.0,
            emission=0.05,
            emitter_single_qubit=0.02,
            photon_single_qubit=0.01,
            measurement=0.5,
            reset=0.2,
        ),
        tau_seconds=tau_seconds,
        photon_loss_per_tau=0.01,
        emitter_coherence_time=1.0 / tau_seconds * 1e-3,  # ~1 ms T2
        emitter_emitter_fidelity=0.98,
    )


def siv_center() -> HardwareModel:
    """Silicon-vacancy colour centres in diamond nanophotonic cavities."""
    tau_seconds = 1e-7
    return HardwareModel(
        name="siv_center",
        durations=GateDurations(
            emitter_emitter_gate=1.0,
            emission=0.08,
            emitter_single_qubit=0.03,
            photon_single_qubit=0.01,
            measurement=0.3,
            reset=0.1,
        ),
        tau_seconds=tau_seconds,
        photon_loss_per_tau=0.008,
        emitter_coherence_time=1e-2 / tau_seconds,
        emitter_emitter_fidelity=0.985,
    )


def rydberg_atom() -> HardwareModel:
    """Rydberg-superatom emitters (fast collective emission, blockade gates)."""
    tau_seconds = 5e-7
    return HardwareModel(
        name="rydberg_atom",
        durations=GateDurations(
            emitter_emitter_gate=1.0,
            emission=0.2,
            emitter_single_qubit=0.05,
            photon_single_qubit=0.01,
            measurement=0.4,
            reset=0.2,
        ),
        tau_seconds=tau_seconds,
        photon_loss_per_tau=0.012,
        emitter_coherence_time=1e-3 / tau_seconds,
        emitter_emitter_fidelity=0.97,
    )


_PRESETS = {
    "quantum_dot": quantum_dot,
    "qd": quantum_dot,
    "nv_center": nv_center,
    "nv": nv_center,
    "siv_center": siv_center,
    "siv": siv_center,
    "rydberg_atom": rydberg_atom,
    "rydberg": rydberg_atom,
}


def get_hardware_model(name: str) -> HardwareModel:
    """Look up a hardware preset by name (case-insensitive)."""
    key = name.strip().lower()
    if key not in _PRESETS:
        raise ValueError(
            f"unknown hardware model {name!r}; available: {sorted(set(_PRESETS))}"
        )
    return _PRESETS[key]()
