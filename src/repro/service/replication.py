"""Synchronous journal replication between an HA front-end pair.

The primary front end streams every :class:`repro.pipeline.jobs.PendingJournal`
record to its standby over a small length-prefixed, checksummed TCP protocol
and waits for the standby's ack before the client sees a 200 — an
acknowledged request is therefore durable on two processes.  Every frame
carries the primary's leadership *epoch*; the standby rejects frames whose
epoch is below its own fence, so a deposed primary (one that lost its lease
to a promoted standby) can never corrupt the replica journal.

Wire format (all integers big-endian)::

    MAGIC(4) | length(4) | crc32(4) | payload (UTF-8 JSON, ``length`` bytes)

Messages, primary -> standby::

    {"type": "hello",     "epoch": E, "seq": N}
    {"type": "append",    "epoch": E, "seq": N, "record": {...}}
    {"type": "heartbeat", "epoch": E, "seq": N}

Messages, standby -> primary::

    {"type": "ack",    "seq": N, "epoch": E}
    {"type": "reject", "seq": N, "epoch": E, "reason": "stale_epoch"}

The ``replication.send`` fault point fires on every outbound frame, so a
deterministic schedule can sever the link (``raise``), delay it (``sleep``)
or corrupt frames on the wire (``corrupt`` — the standby detects the bad
checksum and drops the connection rather than applying garbage).
"""

from __future__ import annotations

import json
import os
import socket
import struct
import threading
import time
import zlib

from pathlib import Path

from repro.pipeline.jobs import StaleEpochError, fsync_dir
from repro.service.metrics import log_event
from repro.utils.faults import FaultInjected, FaultPoint

__all__ = [
    "MAGIC",
    "MAX_FRAME_BYTES",
    "FrameCorruptError",
    "ReplicationFencedError",
    "LeaseLostError",
    "Lease",
    "encode_frame",
    "FrameDecoder",
    "ReplicationAcceptor",
    "ReplicationLink",
]

#: Frame preamble; a stream that does not start with it is garbage.
MAGIC = b"RJR1"

#: Upper bound on a single frame payload (a journal record is small; this
#: guards the decoder against reading a corrupted length as "allocate 4GB").
MAX_FRAME_BYTES = 8 * 1024 * 1024

_HEADER = struct.Struct(">4sII")

_FAULT_SEND = FaultPoint("replication.send")
_FAULT_LEASE = FaultPoint("lease.renew")


class LeaseLostError(RuntimeError):
    """The lease file records a higher epoch than ours: we were deposed."""


class Lease:
    """An epoch-numbered leadership lease backed by an atomic JSON file.

    The lease file is the tie-breaker both peers can see (a path on the
    shared filesystem).  Epochs only ever go up: the primary *acquires*
    the lease (``stored epoch + 1``) on startup, *renews* it on every
    supervision tick, and a promoting standby *bumps* it past the dead
    primary's epoch.  A renew that discovers a higher stored epoch raises
    :class:`LeaseLostError` — someone promoted past us and we must stand
    down rather than split-brain.

    Parameters
    ----------
    path : str | Path
        Lease file location (shared between the peers).
    ttl_seconds : float, optional
        Age after which the lease is considered expired (a standby only
        promotes once the lease is stale *and* the replication channel has
        gone quiet).
    holder : str, optional
        Free-form holder identity written into the file (diagnostics).
    """

    def __init__(self, path: str | Path, ttl_seconds: float = 3.0,
                 holder: str = ""):
        self.path = Path(path)
        self.ttl_seconds = float(ttl_seconds)
        self.holder = holder or f"pid-{os.getpid()}"
        self.epoch = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #

    @staticmethod
    def read(path: str | Path) -> dict:
        """The stored lease record (empty dict when missing/corrupt)."""
        try:
            with Path(path).open("r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            return {}
        return record if isinstance(record, dict) else {}

    def _write(self, record: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        temp = self.path.with_suffix(self.path.suffix + ".tmp")
        with temp.open("w", encoding="utf-8") as handle:
            json.dump(record, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self.path)
        fsync_dir(self.path.parent)

    def acquire(self) -> int:
        """Take the lease at ``stored epoch + 1``; returns the new epoch."""
        with self._lock:
            stored = int(Lease.read(self.path).get("epoch", 0))
            self.epoch = stored + 1
            self._write({
                "epoch": self.epoch,
                "holder": self.holder,
                "renewed_at": time.time(),
            })
            log_event("lease_acquired", epoch=self.epoch, holder=self.holder)
            return self.epoch

    #: Promotion is an acquire under a different name — the standby takes
    #: the lease one epoch past whatever the dead primary held.
    bump = acquire

    def renew(self) -> None:
        """Refresh the lease timestamp; raises if a higher epoch took it."""
        _FAULT_LEASE.hit(context=str(self.epoch))
        with self._lock:
            stored = int(Lease.read(self.path).get("epoch", 0))
            if stored > self.epoch:
                raise LeaseLostError(
                    f"lease at epoch {stored} > ours ({self.epoch}); deposed"
                )
            self._write({
                "epoch": self.epoch,
                "holder": self.holder,
                "renewed_at": time.time(),
            })

    def expired(self) -> bool:
        """True when the stored lease is missing or older than the TTL."""
        record = Lease.read(self.path)
        if not record:
            return True
        try:
            renewed_at = float(record.get("renewed_at", 0.0))
        except (TypeError, ValueError):
            return True
        return (time.time() - renewed_at) > self.ttl_seconds


class FrameCorruptError(ValueError):
    """A frame failed magic, length, or checksum validation."""


class ReplicationFencedError(RuntimeError):
    """The standby rejected a frame because its epoch is stale."""

    def __init__(self, epoch: int, fence_epoch: int):
        super().__init__(
            f"replication fenced: epoch {epoch} < standby epoch {fence_epoch}"
        )
        self.epoch = epoch
        self.fence_epoch = fence_epoch


def encode_frame(message: dict) -> bytes:
    """Serialise one protocol message to its on-wire frame."""
    payload = json.dumps(message, sort_keys=True, default=str).encode("utf-8")
    return _HEADER.pack(MAGIC, len(payload), zlib.crc32(payload)) + payload


class FrameDecoder:
    """Incremental frame decoder tolerant of arbitrary chunking.

    Feed it bytes as they arrive; it yields complete messages and holds any
    incomplete tail until the next :meth:`feed`.  Torn or truncated frames
    therefore never produce a message — they just stay pending — while a
    bad magic, oversized length, or checksum mismatch raises
    :class:`FrameCorruptError` (the connection is unrecoverable from that
    point: framing is lost).
    """

    def __init__(self):
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[dict]:
        """Consume ``data`` and return every complete message it finishes."""
        self._buffer.extend(data)
        messages: list[dict] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return messages
            magic, length, checksum = _HEADER.unpack_from(self._buffer, 0)
            if magic != MAGIC:
                raise FrameCorruptError("bad frame magic")
            if length > MAX_FRAME_BYTES:
                raise FrameCorruptError(f"frame length {length} exceeds cap")
            if len(self._buffer) < _HEADER.size + length:
                return messages
            payload = bytes(self._buffer[_HEADER.size : _HEADER.size + length])
            del self._buffer[: _HEADER.size + length]
            if zlib.crc32(payload) != checksum:
                raise FrameCorruptError("frame checksum mismatch")
            try:
                message = json.loads(payload.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                raise FrameCorruptError(f"frame payload not JSON: {exc}") from exc
            if not isinstance(message, dict):
                raise FrameCorruptError("frame payload is not an object")
            messages.append(message)


def _recv_message(
    sock: socket.socket, decoder: FrameDecoder, pending: list[dict]
) -> dict | None:
    """Block until one message decodes, or return None on clean EOF.

    ``pending`` buffers extra messages when one recv() completes several
    frames at once (e.g. a burst of duplicated acks).
    """
    if pending:
        return pending.pop(0)
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            return None
        messages = decoder.feed(chunk)
        if messages:
            pending.extend(messages[1:])
            return messages[0]


class ReplicationAcceptor:
    """Standby-side replication listener.

    Accepts one (or more, serially meaningful) primary connection, applies
    every ``append`` record through ``apply`` (typically
    ``PendingJournal.append_replica``) and acks it.  Frames whose epoch is
    below :attr:`epoch` are rejected with ``stale_epoch`` — the fence that
    makes split brain safe.  Corrupt frames drop the connection (framing is
    lost) and count toward :attr:`corrupt_frames`.

    Parameters
    ----------
    host, port : str, int
        Listen address.  Port 0 picks an ephemeral port (see
        :attr:`address` after :meth:`start`).
    apply : callable
        Called with each replicated record dict; exceptions other than
        :class:`StaleEpochError` are logged and nack'd as ``apply_error``.
    epoch : int, optional
        Initial fence epoch; frames below it are rejected.
    """

    def __init__(self, host: str, port: int, apply, epoch: int = 0):
        self._host = host
        self._port = port
        self._apply = apply
        self._lock = threading.Lock()
        self._epoch = int(epoch)
        self._server: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self.last_contact = 0.0
        self.frames_total = 0
        self.records_total = 0
        self.heartbeats_total = 0
        self.fenced_total = 0
        self.corrupt_frames = 0

    # ------------------------------------------------------------------ #

    @property
    def address(self) -> tuple[str, int]:
        """The bound listen address (resolves port 0 after start)."""
        if self._server is None:
            return (self._host, self._port)
        return self._server.getsockname()[:2]

    @property
    def epoch(self) -> int:
        with self._lock:
            return self._epoch

    def set_epoch(self, epoch: int) -> None:
        """Raise the fence; frames below ``epoch`` are rejected."""
        with self._lock:
            self._epoch = max(self._epoch, int(epoch))

    def last_contact_age(self) -> float:
        """Seconds since the primary last sent any frame (inf if never)."""
        if not self.last_contact:
            return float("inf")
        return time.monotonic() - self.last_contact

    def snapshot(self) -> dict:
        """Counters for ``/healthz`` and metrics roll-ups."""
        return {
            "epoch": self.epoch,
            "frames_total": self.frames_total,
            "records_total": self.records_total,
            "heartbeats_total": self.heartbeats_total,
            "fenced_total": self.fenced_total,
            "corrupt_frames": self.corrupt_frames,
            "last_contact_age_s": (
                None
                if not self.last_contact
                else round(self.last_contact_age(), 3)
            ),
        }

    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Bind the listen socket and start the accept thread."""
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((self._host, self._port))
        server.listen(4)
        server.settimeout(0.2)
        self._server = server
        thread = threading.Thread(
            target=self._accept_loop, name="repl-accept", daemon=True
        )
        thread.start()
        self._threads.append(thread)

    def stop(self) -> None:
        """Stop accepting and close the listen socket (idempotent)."""
        self._stop.set()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
            self._server = None

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            server = self._server
            if server is None:
                return
            try:
                conn, _addr = server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, conn: socket.socket) -> None:
        decoder = FrameDecoder()
        conn.settimeout(0.5)
        try:
            while not self._stop.is_set():
                try:
                    chunk = conn.recv(65536)
                except socket.timeout:
                    continue
                except OSError:
                    return
                if not chunk:
                    return
                try:
                    messages = decoder.feed(chunk)
                except FrameCorruptError as exc:
                    self.corrupt_frames += 1
                    log_event(
                        "replication_corrupt_frame", level="warning", error=str(exc)
                    )
                    return
                for message in messages:
                    self._handle_message(conn, message)
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _handle_message(self, conn: socket.socket, message: dict) -> None:
        self.frames_total += 1
        self.last_contact = time.monotonic()
        kind = message.get("type")
        seq = int(message.get("seq", 0))
        epoch = int(message.get("epoch", 0))
        if epoch < self.epoch:
            self.fenced_total += 1
            log_event(
                "replication_fenced_frame",
                level="warning",
                frame_type=str(kind),
                epoch=epoch,
                fence_epoch=self.epoch,
            )
            self._send(conn, {"type": "reject", "seq": seq,
                              "epoch": self.epoch, "reason": "stale_epoch"})
            return
        if kind in ("hello", "heartbeat"):
            if kind == "heartbeat":
                self.heartbeats_total += 1
            self._send(conn, {"type": "ack", "seq": seq, "epoch": self.epoch})
            return
        if kind == "append":
            record = message.get("record")
            if not isinstance(record, dict):
                self._send(conn, {"type": "reject", "seq": seq,
                                  "epoch": self.epoch, "reason": "bad_record"})
                return
            try:
                self._apply(record)
            except StaleEpochError:
                self.fenced_total += 1
                self._send(conn, {"type": "reject", "seq": seq,
                                  "epoch": self.epoch, "reason": "stale_epoch"})
                return
            except Exception as exc:  # noqa: BLE001 - nack'd, never fatal
                log_event(
                    "replication_apply_error", level="error", error=str(exc)
                )
                self._send(conn, {"type": "reject", "seq": seq,
                                  "epoch": self.epoch, "reason": "apply_error"})
                return
            self.records_total += 1
            self._send(conn, {"type": "ack", "seq": seq, "epoch": self.epoch})
            return
        # Unknown frame type: ack it so old primaries aren't wedged by a
        # newer peer, but log for the operator.
        log_event("replication_unknown_frame", level="warning",
                  frame_type=str(kind))
        self._send(conn, {"type": "ack", "seq": seq, "epoch": self.epoch})

    @staticmethod
    def _send(conn: socket.socket, message: dict) -> None:
        try:
            conn.sendall(encode_frame(message))
        except OSError:
            pass


class ReplicationLink:
    """Primary-side synchronous replication client.

    Lazily connects to the standby, sends a ``hello`` carrying the current
    epoch, and then ships every journal record as an ``append`` frame,
    blocking until the standby acks it.  Transient failures (connection
    refused/reset, timeouts, injected ``replication.send`` faults) degrade
    the link: :meth:`send_record` returns ``False`` and a reconnect is
    attempted with backoff — the primary keeps serving (availability over
    replication) and counts the miss.  A ``stale_epoch`` reject is *not*
    transient: it means a standby promoted past us, and
    :class:`ReplicationFencedError` is raised so the caller can stand down.

    Parameters
    ----------
    address : tuple[str, int]
        Standby replication address.
    epoch : int
        Leadership epoch stamped on every frame.
    timeout : float, optional
        Per-frame connect/ack deadline in seconds.
    reconnect_backoff_seconds : float, optional
        Minimum wait between reconnect attempts after a link failure.
    on_connect : callable, optional
        Called with this link after each successful hello handshake —
        the fleet uses it to stream catch-up records (the journal's
        unfinished entries) to a standby that attached late.
    """

    def __init__(
        self,
        address: tuple[str, int],
        epoch: int = 0,
        timeout: float = 5.0,
        reconnect_backoff_seconds: float = 0.5,
        on_connect=None,
    ):
        self.address = (address[0], int(address[1]))
        self._epoch = int(epoch)
        self._timeout = float(timeout)
        self._backoff = float(reconnect_backoff_seconds)
        self.on_connect = on_connect
        self._lock = threading.RLock()
        self._sock: socket.socket | None = None
        self._decoder = FrameDecoder()
        self._inbox: list[dict] = []
        self._seq = 0
        self._down_until = 0.0
        self.connected = False
        self.records_total = 0
        self.failures_total = 0

    # ------------------------------------------------------------------ #

    @property
    def epoch(self) -> int:
        return self._epoch

    def set_epoch(self, epoch: int) -> None:
        """Update the epoch stamped on subsequent frames."""
        self._epoch = int(epoch)

    def snapshot(self) -> dict:
        return {
            "address": f"{self.address[0]}:{self.address[1]}",
            "connected": self.connected,
            "epoch": self._epoch,
            "records_total": self.records_total,
            "failures_total": self.failures_total,
        }

    def close(self) -> None:
        with self._lock:
            self._teardown()

    # ------------------------------------------------------------------ #

    def _teardown(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._decoder = FrameDecoder()
        self._inbox = []
        self.connected = False

    def _ensure_connected(self) -> bool:
        if self._sock is not None:
            return True
        if time.monotonic() < self._down_until:
            return False
        try:
            sock = socket.create_connection(self.address, timeout=self._timeout)
            sock.settimeout(self._timeout)
        except OSError:
            self._down_until = time.monotonic() + self._backoff
            return False
        self._sock = sock
        self._decoder = FrameDecoder()
        self._inbox = []
        self.connected = True
        try:
            self._exchange({"type": "hello"})
        except ReplicationFencedError:
            raise
        except (OSError, FrameCorruptError):
            self._teardown()
            self._down_until = time.monotonic() + self._backoff
            return False
        log_event("replication_connected",
                  standby=f"{self.address[0]}:{self.address[1]}",
                  epoch=self._epoch)
        if self.on_connect is not None:
            try:
                self.on_connect(self)
            except ReplicationFencedError:
                raise
            except Exception as exc:  # noqa: BLE001 - catch-up best effort
                log_event("replication_catchup_error", level="warning",
                          error=str(exc))
        return True

    def _exchange(self, message: dict) -> dict:
        """Send one frame and block for its (>= seq) ack.

        Duplicated or reordered acks with a lower seq are ignored; the
        first ack at or past our seq completes the exchange.  Raises
        ``OSError`` on link failure, :class:`ReplicationFencedError` on a
        ``stale_epoch`` reject, and ``FrameCorruptError`` if the standby's
        response stream is garbled.
        """
        self._seq += 1
        seq = self._seq
        frame = dict(message)
        frame["seq"] = seq
        frame["epoch"] = self._epoch
        data = encode_frame(frame)
        data = _FAULT_SEND.hit(context=str(frame.get("type", "")), data=data)
        sock = self._sock
        if sock is None:
            raise OSError("replication link not connected")
        sock.sendall(data)
        deadline = time.monotonic() + self._timeout
        while True:
            if time.monotonic() > deadline:
                raise socket.timeout("replication ack timeout")
            reply = _recv_message(sock, self._decoder, self._inbox)
            if reply is None:
                raise OSError("replication connection closed")
            if reply.get("type") == "reject":
                reason = reply.get("reason")
                if reason == "stale_epoch":
                    raise ReplicationFencedError(
                        self._epoch, int(reply.get("epoch", 0))
                    )
                raise OSError(f"replication rejected: {reason}")
            if reply.get("type") == "ack" and int(reply.get("seq", -1)) >= seq:
                return reply
            # Stale/duplicate ack from an earlier exchange: ignore it.

    def _send_with_retry(self, message: dict) -> bool:
        """One send attempt plus one immediate reconnect-and-resend."""
        with self._lock:
            for attempt in (0, 1):
                try:
                    if not self._ensure_connected():
                        break
                    self._exchange(message)
                    return True
                except ReplicationFencedError:
                    self._teardown()
                    raise
                except (OSError, FrameCorruptError, FaultInjected) as exc:
                    self._teardown()
                    if attempt == 1:
                        self._down_until = time.monotonic() + self._backoff
                        log_event("replication_send_failed", level="warning",
                                  error=str(exc))
            return False

    def send_record(self, record: dict) -> bool:
        """Replicate one journal record; True iff the standby acked it."""
        ok = self._send_with_retry({"type": "append", "record": record})
        if ok:
            self.records_total += 1
        else:
            self.failures_total += 1
        return ok

    def heartbeat(self) -> bool:
        """Send a liveness frame; True iff the standby acked it."""
        return self._send_with_retry({"type": "heartbeat"})
