"""Prometheus-style metrics and structured JSON logs for the ops surface.

The fleet front end (:mod:`repro.service.fleet`) exposes a ``GET /metrics``
endpoint in the Prometheus text exposition format.  This module provides the
three instrument kinds it needs, a tiny thread-safe registry, and — because a
metrics endpoint nobody validates rots silently — an exposition *validator*
that CI runs against a live scrape:

* :class:`Counter` — monotonically increasing totals (requests, retries,
  restarts), optionally split by labels (``counter.labels(worker="0")``);
* :class:`Gauge` — point-in-time values (queue depth, worker up/down);
* :class:`Summary` — a sliding-window latency reservoir that renders
  ``{quantile="0.5|0.95|0.99"}`` samples plus ``_count``/``_sum``;
* :class:`MetricsRegistry` — owns the instruments and renders the exposition;
* :func:`validate_exposition` — checks that every declared metric family is
  present with numeric samples (``python -m repro.service.metrics scrape.txt``
  is the CI entry point);
* :func:`log_event` — one structured JSON log line (request ids, worker
  lifecycle events) on stderr.

Everything is stdlib-only, matching the rest of the service layer.
"""

from __future__ import annotations

import json
import math
import re
import sys
import threading
import time
from collections import deque

__all__ = [
    "Counter",
    "Gauge",
    "Summary",
    "MetricsRegistry",
    "FLEET_METRICS",
    "render_fleet_help",
    "validate_exposition",
    "log_event",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
#: One exposition sample line: ``name{labels} value`` (labels optional).
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>\S+)\s*$"
)

#: Metric families the fleet front end always exports, with their types.
#: CI scrapes ``/metrics`` and fails if any of these is missing or
#: non-numeric (:func:`validate_exposition`), locking the exposition format.
FLEET_METRICS: dict[str, tuple[str, str]] = {
    "repro_fleet_uptime_seconds": (
        "gauge", "Seconds since the fleet front end started."
    ),
    "repro_fleet_draining": (
        "gauge", "1 while a SIGTERM graceful drain is in progress."
    ),
    "repro_fleet_workers_total": ("gauge", "Number of configured compile workers."),
    "repro_fleet_workers_healthy": ("gauge", "Workers currently passing heartbeat checks."),
    "repro_fleet_worker_up": ("gauge", "Per-worker liveness (1 healthy, 0 otherwise)."),
    "repro_fleet_worker_restarts_total": (
        "counter", "Worker restarts performed by the supervisor."
    ),
    "repro_fleet_requests_total": ("counter", "Requests accepted by the front end."),
    "repro_fleet_request_failures_total": (
        "counter", "Requests that exhausted every dispatch attempt."
    ),
    "repro_fleet_retries_total": ("counter", "Dispatch attempts re-routed after a worker failure."),
    "repro_fleet_inflight_requests": (
        "gauge", "Requests currently being dispatched (queue depth)."
    ),
    "repro_fleet_request_latency_seconds": (
        "summary", "Front-end request latency (sliding window)."
    ),
    "repro_fleet_journal_pending": ("gauge", "Unfinished entries in the pending-queue journal."),
    "repro_fleet_journal_replayed_total": ("counter", "Journal entries replayed after a restart."),
    "repro_fleet_worker_requests_served_total": (
        "counter", "Requests served, rolled up from worker /healthz."
    ),
    "repro_fleet_result_cache_hits_total": (
        "counter", "Result-cache hits rolled up from worker /healthz."
    ),
    "repro_fleet_result_cache_misses_total": (
        "counter", "Result-cache misses rolled up from worker /healthz."
    ),
    "repro_fleet_subgraph_cache_hits_total": (
        "counter", "Subgraph compile-cache hits rolled up from workers."
    ),
    "repro_fleet_subgraph_cache_misses_total": (
        "counter", "Subgraph compile-cache misses rolled up from workers."
    ),
    "repro_fleet_subgraph_cache_hit_rate": ("gauge", "Fleet-wide subgraph compile-cache hit rate."),
    "repro_fleet_deadline_requests_total": (
        "counter", "Deadline-bounded compile requests rolled up from workers."
    ),
    "repro_fleet_deadline_misses_total": (
        "counter", "Deadline-bounded requests that returned past their deadline."
    ),
    "repro_fleet_admission_rejections_total": (
        "counter", "Requests rejected by deadline admission control."
    ),
    "repro_fleet_deadline_miss_rate": (
        "gauge", "Fleet-wide deadline-miss rate over deadline-bounded requests."
    ),
    "repro_fleet_refinement_improvements_total": (
        "counter", "Background portfolio refinements that beat the served result."
    ),
    "repro_fleet_poisoned_total": (
        "counter", "Requests quarantined as poisoned after crashing max_job_attempts workers."
    ),
    "repro_fleet_cache_corrupt_entries_total": (
        "counter", "Corrupt disk-cache entries quarantined, rolled up from workers."
    ),
    "repro_fleet_cache_disk_errors_total": (
        "counter", "Disk-cache I/O errors, rolled up from workers."
    ),
    "repro_fleet_disk_breaker_opens_total": (
        "counter", "Disk-tier circuit-breaker open transitions, rolled up from workers."
    ),
    "repro_fleet_disk_breaker_open": (
        "gauge", "Workers currently running with an open disk-tier circuit breaker."
    ),
    "repro_fleet_compile_timeouts_total": (
        "counter", "Compiles cut off by the per-request watchdog, rolled up from workers."
    ),
    "repro_fleet_role": (
        "gauge", "1 while this front end is the serving primary, 0 otherwise."
    ),
    "repro_fleet_epoch": (
        "gauge", "Leadership epoch of this front end's lease."
    ),
    "repro_fleet_failovers_total": (
        "counter", "Standby promotions performed by this front end."
    ),
    "repro_fleet_replication_connected": (
        "gauge", "1 while the journal replication link to the standby is up."
    ),
    "repro_fleet_replication_records_total": (
        "counter", "Journal records replicated (sent and acked, or received)."
    ),
    "repro_fleet_replication_failures_total": (
        "counter", "Journal records the standby failed to ack (degraded sends)."
    ),
    "repro_fleet_fenced_writes_total": (
        "counter", "Stale-epoch replication frames rejected by the fence."
    ),
    "repro_fleet_fenced_dispatches_total": (
        "counter", "Worker dispatches rejected because this front end's epoch is stale."
    ),
    "repro_fleet_hedged_requests_total": (
        "counter", "Requests that fired a hedged second dispatch attempt."
    ),
    "repro_fleet_hedge_wins_total": (
        "counter", "Hedged attempts that answered before the primary attempt."
    ),
    "repro_fleet_dispatch_breaker_open": (
        "gauge", "Workers currently excluded from dispatch by an open circuit breaker."
    ),
    "repro_fleet_dispatch_breaker_opens_total": (
        "counter", "Per-worker dispatch circuit-breaker open transitions."
    ),
}


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: dict[str, str]) -> str:
    """Render a label set as ``{key="value",...}`` (empty string when none)."""
    if not labels:
        return ""
    # json.dumps produces exactly the quoting/escaping Prometheus expects
    # for label values (backslash, double quote, newline).
    body = ",".join(
        f"{key}={json.dumps(str(value))}" for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


class _Instrument:
    """Shared plumbing: a name, help text and a lock."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help_text = help_text
        self._lock = threading.Lock()

    def samples(self) -> list[tuple[str, dict[str, str], float]]:
        """``(suffix, labels, value)`` triples to render."""
        raise NotImplementedError


class Counter(_Instrument):
    """A monotonically increasing total, optionally split by labels.

    Parameters
    ----------
    name : str
        Metric family name (``*_total`` by convention).
    help_text : str
        One-line description rendered as ``# HELP``.
    """

    kind = "counter"

    def __init__(self, name: str, help_text: str):
        super().__init__(name, help_text)
        self._values: dict[tuple[tuple[str, str], ...], float] = {(): 0.0}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (default 1) to the child identified by ``labels``."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current value of the child identified by ``labels``."""
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            return self._values.get(key, 0.0)

    def set_total(self, value: float, **labels: str) -> None:
        """Overwrite a child total (for totals *rolled up* from workers).

        Roll-up counters mirror monotone totals owned elsewhere (worker
        ``/healthz`` bodies), so the front end sets them rather than
        incrementing.
        """
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            self._values[key] = float(value)

    def samples(self) -> list[tuple[str, dict[str, str], float]]:
        """One sample per label child."""
        with self._lock:
            return [("", dict(key), value) for key, value in sorted(self._values.items())]


class Gauge(_Instrument):
    """A point-in-time value, optionally split by labels."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str):
        super().__init__(name, help_text)
        self._values: dict[tuple[tuple[str, str], ...], float] = {(): 0.0}

    def set(self, value: float, **labels: str) -> None:
        """Set the child identified by ``labels`` to ``value``."""
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` to the child identified by ``labels``."""
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current value of the child identified by ``labels``."""
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> list[tuple[str, dict[str, str], float]]:
        """One sample per label child."""
        with self._lock:
            return [("", dict(key), value) for key, value in sorted(self._values.items())]


class Summary(_Instrument):
    """Latency quantiles over a sliding window of recent observations.

    Renders the Prometheus summary convention: ``name{quantile="0.5"}`` (and
    0.95/0.99) from the window, plus cumulative ``name_count``/``name_sum``
    over *all* observations.

    Parameters
    ----------
    name, help_text : str
        Family name and ``# HELP`` text.
    window : int, optional
        Number of recent observations the quantiles are computed over.
    quantiles : tuple[float, ...], optional
        Quantiles to expose (fractions in ``(0, 1)``).
    """

    kind = "summary"

    def __init__(
        self,
        name: str,
        help_text: str,
        window: int = 2048,
        quantiles: tuple[float, ...] = (0.5, 0.95, 0.99),
    ):
        super().__init__(name, help_text)
        self._window: deque[float] = deque(maxlen=int(window))
        self.quantiles = tuple(quantiles)
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self._window.append(float(value))
            self._count += 1
            self._sum += float(value)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (fraction) of the current window (0 if empty)."""
        with self._lock:
            window = sorted(self._window)
        if not window:
            return 0.0
        position = q * (len(window) - 1)
        low = int(position)
        high = min(low + 1, len(window) - 1)
        fraction = position - low
        return window[low] * (1.0 - fraction) + window[high] * fraction

    @property
    def count(self) -> int:
        """Total observations ever recorded."""
        with self._lock:
            return self._count

    def samples(self) -> list[tuple[str, dict[str, str], float]]:
        """Quantile samples plus ``_count`` and ``_sum``."""
        rows = [("", {"quantile": str(q)}, self.quantile(q)) for q in self.quantiles]
        with self._lock:
            rows.append(("_count", {}, float(self._count)))
            rows.append(("_sum", {}, self._sum))
        return rows


class MetricsRegistry:
    """A named collection of instruments that renders one exposition.

    Instruments are created through :meth:`counter` / :meth:`gauge` /
    :meth:`summary`; asking for an existing name returns the existing
    instrument (so call sites need no registration dance).
    """

    def __init__(self):
        self._instruments: dict[str, _Instrument] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help_text: str, **kwargs) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            instrument = cls(name, help_text, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(Gauge, name, help_text)

    def summary(self, name: str, help_text: str = "", **kwargs) -> Summary:
        """Get or create the summary ``name``."""
        return self._get_or_create(Summary, name, help_text, **kwargs)

    def render(self) -> str:
        """The full Prometheus text exposition (``text/plain; version=0.0.4``)."""
        lines: list[str] = []
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            if instrument.help_text:
                lines.append(f"# HELP {instrument.name} {instrument.help_text}")
            lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            for suffix, labels, value in instrument.samples():
                lines.append(
                    f"{instrument.name}{suffix}{_format_labels(labels)} "
                    f"{_format_value(value)}"
                )
        return "\n".join(lines) + "\n"


def render_fleet_help() -> str:
    """A human-readable table of every declared fleet metric (for docs)."""
    rows = [f"{name} ({kind}): {help_text}" for name, (kind, help_text) in FLEET_METRICS.items()]
    return "\n".join(rows)


def validate_exposition(
    text: str, required: dict[str, tuple[str, str]] | None = None
) -> list[str]:
    """Check a scraped exposition against the declared fleet metrics.

    Parameters
    ----------
    text : str
        The body of a ``GET /metrics`` response.
    required : dict | None, optional
        Mapping of required family names to ``(type, help)`` pairs
        (default: :data:`FLEET_METRICS`).

    Returns
    -------
    list[str]
        Human-readable problems; empty when the exposition is valid.  A
        family counts as present when at least one sample line for it (or
        its ``_count``/``_sum`` children for summaries) parses to a finite
        number.
    """
    if required is None:
        required = FLEET_METRICS
    problems: list[str] = []
    seen: dict[str, int] = {}
    declared_types: dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) >= 4:
                declared_types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        try:
            value = float(match.group("value").replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            problems.append(
                f"line {lineno}: non-numeric value {match.group('value')!r} "
                f"for {match.group('name')}"
            )
            continue
        if math.isnan(value):
            problems.append(f"line {lineno}: NaN value for {match.group('name')}")
            continue
        seen[match.group("name")] = seen.get(match.group("name"), 0) + 1
    for name, (kind, _help) in required.items():
        sample_names = [name]
        if kind == "summary":
            sample_names = [name, f"{name}_count", f"{name}_sum"]
        if not any(sample in seen for sample in sample_names):
            problems.append(f"missing required {kind} metric {name!r}")
            continue
        if declared_types.get(name) not in (None, kind):
            problems.append(
                f"metric {name!r} declared as {declared_types[name]!r}, "
                f"expected {kind!r}"
            )
    return problems


_LOG_LOCK = threading.Lock()


def log_event(event: str, *, level: str = "info", stream=None, **fields) -> None:
    """Emit one structured JSON log line (the fleet's logging format).

    Parameters
    ----------
    event : str
        Short machine-matchable event name, e.g. ``"worker_restart"``.
    level : str, optional
        ``"info"``, ``"warning"`` or ``"error"``.
    stream : file-like | None, optional
        Destination (default ``sys.stderr``).
    **fields
        Extra JSON-serialisable fields (``request_id``, ``worker``, ...).
    """
    record = {"ts": round(time.time(), 6), "level": level, "event": event}
    record.update(fields)
    line = json.dumps(record, sort_keys=True, default=str)
    target = stream if stream is not None else sys.stderr
    with _LOG_LOCK:
        print(line, file=target, flush=True)


def _main(argv: list[str]) -> int:
    """CI entry point: validate a scraped exposition file.

    ``python -m repro.service.metrics scrape.txt`` exits 0 when every
    declared fleet metric is present and numeric, 1 otherwise (printing one
    problem per line).
    """
    if len(argv) != 1:
        print("usage: python -m repro.service.metrics <scrape-file>", file=sys.stderr)
        return 2
    try:
        with open(argv[0], "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        print(f"metrics: cannot read scrape file: {exc}", file=sys.stderr)
        return 2
    problems = validate_exposition(text)
    if problems:
        for problem in problems:
            print(f"metrics: {problem}", file=sys.stderr)
        return 1
    print(f"metrics: ok ({len(FLEET_METRICS)} declared families present)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(_main(sys.argv[1:]))
