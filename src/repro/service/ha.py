"""Standby front end: journal replication target + automatic promotion.

``repro serve --standby`` runs a :class:`StandbyCoordinator` instead of a
fleet.  The standby

1. listens on the replication address and appends every record the primary
   streams into its *own* copy of the pending journal (acked synchronously,
   so an acknowledged request is durable on both peers);
2. watches the primary through two independent signals — traffic on the
   replication channel and the shared lease file's freshness;
3. **promotes** when both go quiet: bumps the lease epoch past the dead
   primary's, raises the replication fence (so a zombie primary's writes
   are rejected, observable as ``repro_fleet_fenced_writes_total``), spawns
   its own worker fleet, replays the replica journal into the shared result
   cache, binds the front-end port the primary used, and serves.

Split-brain safety rests on the epoch fence, not on perfect failure
detection: a deposed primary that was merely slow keeps its old epoch, and
every surface it can write through — the replication channel, the lease
file, worker dispatch — rejects epochs below the promoted standby's.
"""

from __future__ import annotations

import threading
import time

from repro.pipeline.jobs import PendingJournal
from repro.service.fleet import FleetServer, FleetSupervisor, install_sigterm_drain
from repro.service.metrics import log_event
from repro.service.replication import Lease, ReplicationAcceptor

__all__ = ["StandbyCoordinator", "start_standby"]


class StandbyCoordinator:
    """Run a standby front end until promotion (or shutdown).

    Parameters
    ----------
    num_workers : int
        Workers to spawn *after* promotion (the standby itself is just a
        journal sink — it burns no compute while the primary is healthy).
    frontend_address : tuple[str, int]
        ``(host, port)`` the *primary* serves on; the promoted standby
        binds the same port so clients' multi-address lists keep working.
    replication_address : tuple[str, int]
        ``(host, port)`` this standby listens on for journal replication.
    journal_path : str
        The standby's own journal copy (must differ from the primary's
        when both run on one filesystem).
    lease_path : str
        The shared leadership lease file.
    failover_after_seconds : float, optional
        Replication silence required before promotion is considered; the
        lease must *also* be expired (its TTL is an independent clock).
    poll_seconds : float, optional
        Watch-loop period.
    supervisor_kwargs : dict | None, optional
        Extra :class:`FleetSupervisor` keyword arguments applied after
        promotion (cache dirs, dispatch tuning, hedging, ...).
    """

    def __init__(
        self,
        num_workers: int,
        frontend_address: tuple[str, int],
        replication_address: tuple[str, int],
        journal_path: str,
        lease_path: str,
        failover_after_seconds: float = 2.0,
        poll_seconds: float = 0.25,
        supervisor_kwargs: dict | None = None,
    ):
        self.num_workers = int(num_workers)
        self.frontend_address = (frontend_address[0], int(frontend_address[1]))
        self.journal_path = str(journal_path)
        self.failover_after_seconds = float(failover_after_seconds)
        self.poll_seconds = float(poll_seconds)
        self.supervisor_kwargs = dict(supervisor_kwargs or {})

        self.journal = PendingJournal(journal_path)
        self.lease = Lease(lease_path, holder="standby")
        self.acceptor = ReplicationAcceptor(
            replication_address[0],
            int(replication_address[1]),
            apply=self.journal.append_replica,
        )
        self.promoted = threading.Event()
        self.supervisor: FleetSupervisor | None = None
        self.server: FleetServer | None = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Bind the replication listener (call before the primary starts)."""
        self.acceptor.start()
        log_event(
            "standby_listening",
            replication=f"{self.acceptor.address[0]}:{self.acceptor.address[1]}",
            frontend=f"{self.frontend_address[0]}:{self.frontend_address[1]}",
        )

    def stop(self) -> None:
        """Shut the standby down (idempotent; post-promotion too)."""
        self._stop.set()
        if self.server is not None:
            self.server.shutdown()
        if self.supervisor is not None:
            self.supervisor.stop()
        else:
            self.acceptor.stop()
            self.journal.close()

    def watch(self) -> bool:
        """Block until the primary dies (promote, return True) or stop().

        Promotion requires *both* failure signals: the replication channel
        silent for ``failover_after_seconds`` (after having heard the
        primary at least once, or never at all with an expired lease) and
        the lease file past its TTL.  A healthy-but-slow primary keeps
        renewing the lease, so the standby stays put.
        """
        while not self._stop.is_set():
            if self._stop.wait(self.poll_seconds):
                return False
            heard_primary = self.acceptor.last_contact > 0
            lease_record = Lease.read(self.lease.path)
            if not heard_primary and not lease_record:
                # Neither peer has spoken yet: the primary simply hasn't
                # started.  There is nothing to fail over *from* — wait.
                continue
            quiet = self.acceptor.last_contact_age() > self.failover_after_seconds
            if quiet and self.lease.expired():
                self.promote()
                return True
        return False

    def promote(self) -> None:
        """Take over as primary: fence, replay, bind, serve."""
        epoch = self.lease.bump()
        # Raise the fence *before* serving: from here on the deposed
        # primary's frames and journal appends are rejected.
        self.acceptor.set_epoch(epoch)
        self.journal.fence(epoch)
        log_event("standby_promoting", epoch=epoch)

        supervisor = FleetSupervisor(
            self.num_workers,
            host=self.frontend_address[0],
            journal_path=self.journal_path,
            epoch=epoch,
            acceptor=self.acceptor,
            lease=self.lease,
            **self.supervisor_kwargs,
        )
        supervisor.journal.fence(epoch)
        supervisor.note_failover()
        # Replays the replica journal into the shared result cache: every
        # request the dead primary accepted but never finished is
        # recompiled (or served from cache) here.
        supervisor.start(wait_ready=True, replay=True)
        self.supervisor = supervisor

        # The dead primary's socket may linger in TIME_WAIT/CLOSE_WAIT for
        # a beat after SIGKILL; retry the bind briefly rather than dying.
        deadline = time.monotonic() + 10.0
        last_error: OSError | None = None
        while True:
            try:
                self.server = FleetServer(self.frontend_address, supervisor)
                break
            except OSError as exc:
                last_error = exc
                if time.monotonic() >= deadline:
                    supervisor.stop()
                    raise
                time.sleep(0.1)
        if last_error is not None:
            log_event("promotion_bind_retried", error=str(last_error))
        self.promoted.set()
        log_event(
            "standby_promoted",
            epoch=epoch,
            frontend=f"{self.frontend_address[0]}:{self.frontend_address[1]}",
        )

    def serve_forever(self, install_signals: bool = False) -> None:
        """Watch, promote, then serve the front end until shutdown."""
        if not self.watch():
            return
        assert self.server is not None
        if install_signals:
            install_sigterm_drain(self.server)
        self.server.serve_forever()


def start_standby(
    num_workers: int,
    frontend_address: tuple[str, int],
    replication_address: tuple[str, int],
    journal_path: str,
    lease_path: str,
    **kwargs,
) -> tuple[StandbyCoordinator, threading.Thread]:
    """Run a standby on a daemon thread (the in-process/test entry point).

    Returns the coordinator (watch ``coordinator.promoted``) and the
    serving thread.  Call ``coordinator.stop()`` when done.
    """
    coordinator = StandbyCoordinator(
        num_workers,
        frontend_address,
        replication_address,
        journal_path,
        lease_path,
        **kwargs,
    )
    coordinator.start()
    thread = threading.Thread(
        target=coordinator.serve_forever, name="repro-standby", daemon=True
    )
    thread.start()
    return coordinator, thread
