"""The long-running compilation server.

A :class:`CompileService` wraps the batch pipeline for interactive traffic:

* synchronous single compilations go through a
  :class:`repro.service.batcher.MicroBatcher`, so concurrent requests are
  executed together on one :class:`repro.pipeline.runner.BatchRunner`;
* whole sweeps are submitted asynchronously and polled by job id;
* a persistent disk :class:`repro.pipeline.cache.ResultCache` (pass
  ``cache_dir``) answers repeated traffic without recompiling.

:class:`CompileServer` exposes the service over HTTP (stdlib
:class:`http.server.ThreadingHTTPServer`, JSON bodies):

======  ==================  =================================================
method  path                behaviour
======  ==================  =================================================
POST    ``/compile``        run one job, respond with its result record
POST    ``/batch``          submit a list of jobs, respond with a job id
GET     ``/status/<job>``   progress/results of a submitted batch
GET     ``/healthz``        liveness, uptime, batching and cache counters
======  ==================  =================================================

Start one from the shell with ``repro serve`` and point ``repro loadgen`` (or
any HTTP client) at it::

    repro serve --port 8765 --cache-dir .repro-service-cache
    curl -s localhost:8765/healthz
    curl -s -X POST localhost:8765/compile \\
        -d '{"family": "lattice", "size": 12, "kind": "compile"}'
"""

from __future__ import annotations

import json
import queue
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.pipeline.jobs import BatchJob
from repro.pipeline.runner import BatchRunner, JobOutcome
from repro.service.batcher import MicroBatcher

__all__ = [
    "CompileService",
    "CompileServer",
    "PRIORITY_ADMISSION_FACTORS",
    "ServiceBusyError",
    "ServiceDeadlineError",
    "ServiceRequestError",
    "start_server",
]


class ServiceRequestError(ValueError):
    """A client-side error: malformed payload, unknown family/kind/backend."""


class ServiceBusyError(RuntimeError):
    """Backpressure: the async-batch queue is full (HTTP 429)."""


class ServiceDeadlineError(ServiceBusyError):
    """Admission control: the queue is too deep for the request's deadline.

    A :class:`ServiceBusyError` subclass so it surfaces as HTTP 429 — the
    request was *not* attempted, and retrying after the queue drains is
    exactly the right client behaviour.
    """


#: How much of the deadline each priority class may spend waiting in the
#: queue before admission control rejects the request.  ``None`` means the
#: class bypasses admission control entirely.
PRIORITY_ADMISSION_FACTORS: dict[str, float | None] = {
    "high": None,
    "normal": 1.0,
    "low": 0.5,
}

#: EWMA smoothing for the compile-latency estimate behind admission control.
_LATENCY_EWMA_ALPHA = 0.3


def _outcome_payload(outcome: JobOutcome) -> dict:
    """JSON body describing one job outcome."""
    body = {
        "ok": outcome.ok,
        "label": outcome.job.label,
        "cache_hit": outcome.cache_hit,
        "coalesced": outcome.coalesced,
        "elapsed_seconds": outcome.elapsed_seconds,
        "error": outcome.error,
        "result": outcome.result,
    }
    if outcome.error_kind is not None:
        body["error_kind"] = outcome.error_kind
    return body


class _AsyncBatch:
    """Book-keeping for one asynchronously submitted batch."""

    def __init__(self, job_id: str, num_jobs: int):
        self.job_id = job_id
        self.num_jobs = num_jobs
        self.status = "queued"
        self.submitted_at = time.time()
        self.report = None
        self.error: str | None = None

    def payload(self) -> dict:
        """JSON body for ``/status/<job>``."""
        body = {
            "job_id": self.job_id,
            "status": self.status,
            "num_jobs": self.num_jobs,
            "age_seconds": time.time() - self.submitted_at,
        }
        if self.error is not None:
            body["error"] = self.error
        if self.report is not None:
            body["summary"] = self.report.summary()
            body["outcomes"] = [
                _outcome_payload(outcome) for outcome in self.report.outcomes
            ]
        return body


class CompileService:
    """The server-side state: runner, micro-batcher, async jobs, counters.

    Parameters
    ----------
    cache_dir : str | None, optional
        Directory for the persistent content-hash result cache; ``None``
        disables caching (every request recompiles).
    max_workers : int, optional
        Process-pool width of the underlying :class:`BatchRunner`; ``1``
        compiles in-process (the safe default for a threaded server).
    batch_window_seconds : float, optional
        Micro-batching window for concurrent ``/compile`` requests.
    max_batch : int, optional
        Maximum jobs per micro-batch.
    subgraph_cache_dir : str | None, optional
        Directory for the *persistent tier* of the isomorphism-keyed
        subgraph compile cache (:mod:`repro.core.compile_cache`).  Exported
        through ``REPRO_SUBGRAPH_CACHE_DIR`` so process-pool workers
        (``max_workers > 1``) inherit it; the in-memory tier is always on
        (per worker process) unless jobs override ``subgraph_cache``.
    background_refine : bool, optional
        Hand the pending (budget-skipped) portfolio rungs of deadline
        requests to the process-wide
        :class:`repro.core.portfolio.BackgroundRefiner`, which compiles
        them off the request path — warming the subgraph compile cache and
        counting refinement improvements.  Disable for strictly
        request-bounded CPU usage.
    compile_timeout_s : float | None, optional
        Default per-request compile watchdog: a ``/compile`` request whose
        outcome is not available within this many wall-clock seconds is
        answered with a structured timeout error (HTTP 504) instead of
        hanging its connection (and, in a fleet, the front end's dispatch
        slot).  Per-request ``compile_timeout_s`` payload fields override
        it; ``None`` disables the watchdog.
    """

    #: Async batches kept around for ``/status`` polling; beyond this cap the
    #: oldest *finished* entries are evicted.
    max_tracked_batches = 256

    #: Maximum queued-or-running async batches; further ``/batch``
    #: submissions are rejected with HTTP 429.  Together with the eviction
    #: cap this bounds the server's memory under steady ``/batch`` traffic.
    max_pending_batches = 32

    def __init__(
        self,
        cache_dir: str | None = None,
        max_workers: int = 1,
        batch_window_seconds: float = 0.02,
        max_batch: int = 32,
        subgraph_cache_dir: str | None = None,
        background_refine: bool = True,
        compile_timeout_s: float | None = None,
    ):
        if compile_timeout_s is not None and compile_timeout_s <= 0:
            raise ValueError(
                f"compile_timeout_s must be > 0, got {compile_timeout_s}"
            )
        self.compile_timeout_s = compile_timeout_s
        self._compile_timeouts = 0
        if subgraph_cache_dir is not None:
            import os

            from repro.core.compile_cache import CACHE_DIR_ENV, get_process_cache

            # Set the env var first so pool workers spawned later inherit the
            # persistent tier (it intentionally outlives close(): the lazily
            # created pool may spawn workers at any point).  Passing disk_dir
            # explicitly attaches the tier even when earlier compiles in this
            # process already created the shared cache memory-only.
            os.environ[CACHE_DIR_ENV] = str(subgraph_cache_dir)
            get_process_cache(disk_dir=str(subgraph_cache_dir))
        self.runner = BatchRunner(max_workers=max_workers, cache_dir=cache_dir)
        self.batcher = MicroBatcher(
            self.runner, window_seconds=batch_window_seconds, max_batch=max_batch
        )
        self.started_at = time.time()
        self.background_refine = bool(background_refine)
        self._batches: dict[str, _AsyncBatch] = {}
        self._lock = threading.Lock()
        self._requests_served = 0
        # Epoch fence (HA fleets): the highest X-Repro-Epoch ever seen is
        # the watermark; dispatches from a lower epoch come from a deposed
        # front end and are rejected (HTTP 409) instead of executed.
        self._max_epoch_seen = 0
        self._fenced_requests = 0
        # Anytime/deadline serving state: an EWMA of recent compile
        # latencies times the in-flight depth estimates the queue wait that
        # admission control checks against each request's deadline.
        self._inflight_compiles = 0
        self._ewma_compile_seconds: float | None = None
        self._deadline_requests = 0
        self._deadline_misses = 0
        self._admission_rejections = 0
        self._closed = threading.Event()
        # One worker executes async batches sequentially: concurrent /batch
        # submissions queue up instead of spawning unbounded compile threads
        # (synchronous /compile traffic keeps its own micro-batcher lane).
        self._batch_queue: queue.Queue[tuple[_AsyncBatch, list[BatchJob]] | None] = (
            queue.Queue()
        )
        self._batch_thread = threading.Thread(
            target=self._batch_loop, name="repro-batch-worker", daemon=True
        )
        self._batch_thread.start()

    # ------------------------------------------------------------------ #
    # Operations (also usable in-process, without HTTP)
    # ------------------------------------------------------------------ #

    def compile(self, payload: dict) -> dict:
        """Run one job synchronously (micro-batched) and return its record.

        Parameters
        ----------
        payload : dict
            A job description accepted by
            :meth:`repro.pipeline.jobs.BatchJob.from_dict`.

        Returns
        -------
        dict
            The outcome body (``ok``/``cache_hit``/``result``/``error``).

        Raises
        ------
        ServiceDeadlineError
            When the request carries a ``deadline_ms`` that admission
            control judges unmeetable at the current queue depth (HTTP
            429; ``priority: "high"`` bypasses the check).
        """
        job = self._parse_job(payload)
        if job.deadline_ms is not None:
            self._admit_or_reject(job)
        timeout_s = (
            job.compile_timeout_s
            if job.compile_timeout_s is not None
            else self.compile_timeout_s
        )
        with self._lock:
            self._inflight_compiles += 1
        try:
            outcome = self.batcher.submit(job, timeout_seconds=timeout_s)
        finally:
            with self._lock:
                self._inflight_compiles -= 1
        if outcome.error_kind == "timeout":
            from repro.service.metrics import log_event

            with self._lock:
                self._compile_timeouts += 1
                self._requests_served += 1
            log_event(
                "compile_watchdog_timeout",
                level="warning",
                label=job.label,
                timeout_s=timeout_s,
            )
            return _outcome_payload(outcome)
        portfolio = (
            (outcome.result or {}).get("portfolio") or {}
            if outcome.ok
            else {}
        )
        with self._lock:
            self._requests_served += 1
            if outcome.ok and not outcome.cache_hit:
                sample = float(outcome.elapsed_seconds)
                if self._ewma_compile_seconds is None:
                    self._ewma_compile_seconds = sample
                else:
                    self._ewma_compile_seconds += _LATENCY_EWMA_ALPHA * (
                        sample - self._ewma_compile_seconds
                    )
            if job.deadline_ms is not None:
                self._deadline_requests += 1
                if portfolio.get("deadline_missed"):
                    self._deadline_misses += 1
        pending = portfolio.get("pending_rungs") or []
        if pending and self.background_refine and not self._closed.is_set():
            from repro.core.portfolio import get_background_refiner

            get_background_refiner().submit_job(
                job, list(pending), portfolio.get("quality")
            )
        return _outcome_payload(outcome)

    def _admit_or_reject(self, job: BatchJob) -> None:
        """Reject a deadline request the queue cannot meet (HTTP 429).

        The wait estimate is deliberately conservative-cheap: EWMA of
        recent uncached compile latencies times the number of in-flight
        compiles.  ``high``-priority requests bypass the check; ``low``
        ones are rejected once the wait exceeds half their deadline.
        """
        factor = PRIORITY_ADMISSION_FACTORS[job.priority]
        if factor is None:
            return
        with self._lock:
            ewma = self._ewma_compile_seconds
            queued = self._inflight_compiles
        if ewma is None or queued == 0:
            return
        estimated_wait_ms = queued * ewma * 1000.0
        if estimated_wait_ms > float(job.deadline_ms) * factor:
            with self._lock:
                self._admission_rejections += 1
            raise ServiceDeadlineError(
                f"estimated queue wait {estimated_wait_ms:.0f} ms exceeds "
                f"deadline_ms={job.deadline_ms:g} for priority "
                f"{job.priority!r}; retry later"
            )

    def submit_batch(self, payload: dict) -> dict:
        """Start a batch in the background and return its job id.

        Parameters
        ----------
        payload : dict
            ``{"jobs": [<job payload>, ...]}``.

        Returns
        -------
        dict
            ``{"job_id": ..., "num_jobs": ...}``; poll with :meth:`status`.

        Raises
        ------
        ServiceBusyError
            When :attr:`max_pending_batches` submissions are already queued
            or running (surfaces as HTTP 429).
        """
        if not isinstance(payload, dict) or "jobs" not in payload:
            raise ServiceRequestError("batch payload needs a 'jobs' list")
        raw_jobs = payload["jobs"]
        if not isinstance(raw_jobs, list) or not raw_jobs:
            raise ServiceRequestError("'jobs' must be a non-empty list")
        jobs = [self._parse_job(entry) for entry in raw_jobs]
        job_id = uuid.uuid4().hex[:12]
        batch = _AsyncBatch(job_id, len(jobs))
        with self._lock:
            pending = sum(
                1
                for tracked in self._batches.values()
                if tracked.status in ("queued", "running")
            )
            if pending >= self.max_pending_batches:
                raise ServiceBusyError(
                    f"{pending} batches already queued or running; retry later"
                )
            self._batches[job_id] = batch
            self._evict_finished_batches()
        self._batch_queue.put((batch, jobs))
        return {"job_id": job_id, "num_jobs": len(jobs)}

    def status(self, job_id: str) -> dict | None:
        """Status body for an async batch, or ``None`` if the id is unknown."""
        with self._lock:
            batch = self._batches.get(job_id)
        return batch.payload() if batch is not None else None

    def note_epoch(self, epoch: int) -> bool:
        """Check a dispatch's leadership epoch against the fence watermark.

        Returns True when the dispatch may proceed (and raises the
        watermark); False when it comes from a deposed front end whose
        epoch is below the highest ever seen.
        """
        with self._lock:
            if epoch < self._max_epoch_seen:
                self._fenced_requests += 1
                return False
            self._max_epoch_seen = epoch
            return True

    def healthz(self) -> dict:
        """Liveness body: uptime, request, batching and cache counters.

        ``subgraph_cache`` reports *this process's* tier of the
        isomorphism-keyed compile cache; with ``max_workers > 1`` the pool
        workers keep their own tiers (sharing only the disk directory).
        """
        import os

        import repro
        from repro.core.compile_cache import peek_process_cache
        from repro.core.portfolio import refinement_stats

        from repro.utils.faults import get_registry

        cache = self.runner.cache
        subgraph_cache = peek_process_cache()
        with self._lock:
            requests_served = self._requests_served
            num_batches = len(self._batches)
            compile_timeouts = self._compile_timeouts
            portfolio_block = {
                "deadline_requests": self._deadline_requests,
                "deadline_misses": self._deadline_misses,
                "admission_rejections": self._admission_rejections,
                "inflight_compiles": self._inflight_compiles,
                "ewma_compile_seconds": self._ewma_compile_seconds,
            }
        portfolio_block.update(refinement_stats().as_dict())
        cache_block = {
            "enabled": cache is not None,
            "hits": 0,
            "misses": 0,
            "entries": 0,
        }
        if cache is not None:
            cache_block.update(cache.stats())
            cache_block["entries"] = len(cache)
        body = {
            "status": "ok",
            "version": repro.__version__,
            "pid": os.getpid(),
            "uptime_seconds": time.time() - self.started_at,
            "requests_served": requests_served,
            "async_batches": num_batches,
            "microbatcher": self.batcher.stats.as_dict(),
            "cache": cache_block,
            "subgraph_cache": {"enabled": subgraph_cache is not None},
            "portfolio": portfolio_block,
            "watchdog": {
                "compile_timeout_s": self.compile_timeout_s,
                "compile_timeouts": compile_timeouts,
            },
            "epoch": {
                "max_seen": self._max_epoch_seen,
                "fenced_requests": self._fenced_requests,
            },
        }
        registry = get_registry()
        if registry is not None and registry.active:
            body["faults"] = registry.snapshot()
        if subgraph_cache is not None:
            body["subgraph_cache"].update(
                entries=len(subgraph_cache),
                capacity=subgraph_cache.capacity,
                disk=subgraph_cache.disk_enabled,
                **subgraph_cache.stats.as_dict(),
            )
            disk_stats = subgraph_cache.disk_stats()
            if disk_stats is not None:
                body["subgraph_cache"]["disk_tier"] = disk_stats
        return body

    def close(self) -> None:
        """Shut the micro-batcher and the batch worker down (idempotent)."""
        if self._closed.is_set():
            return
        self._closed.set()
        self.batcher.close()
        self._batch_queue.put(None)
        self._batch_thread.join(timeout=5.0)
        self.runner.close()
        # Fail anything still queued so /status never reports it running.
        while True:
            try:
                item = self._batch_queue.get_nowait()
            except queue.Empty:
                break
            if item is not None:
                item[0].error = "service shut down"
                item[0].status = "error"

    # ------------------------------------------------------------------ #

    @staticmethod
    def _parse_job(payload: dict) -> BatchJob:
        try:
            return BatchJob.from_dict(payload)
        except (ValueError, TypeError) as exc:
            raise ServiceRequestError(str(exc)) from exc

    def _batch_loop(self) -> None:
        # The closed-flag check (not just the sentinel) matters: if close()
        # times out waiting on a long batch and drains the queue — sentinel
        # included — the worker must still exit when that batch finishes
        # instead of blocking on an empty queue forever.
        while not self._closed.is_set():
            item = self._batch_queue.get()
            if item is None:
                return
            self._run_batch(*item)

    def _run_batch(self, batch: _AsyncBatch, jobs: list[BatchJob]) -> None:
        batch.status = "running"
        try:
            report = self.runner.run(jobs)
        except Exception as exc:  # noqa: BLE001 - reported through /status
            batch.error = f"{type(exc).__name__}: {exc}"
            batch.status = "error"
            return
        batch.report = report
        batch.status = "done"
        with self._lock:
            self._requests_served += len(jobs)

    def _evict_finished_batches(self) -> None:
        """Drop the oldest finished batches beyond the cap (lock held)."""
        overflow = len(self._batches) - self.max_tracked_batches
        if overflow <= 0:
            return
        for job_id in [
            job_id
            for job_id, batch in self._batches.items()  # insertion order: oldest first
            if batch.status in ("done", "error")
        ][:overflow]:
            del self._batches[job_id]


class _Handler(BaseHTTPRequestHandler):
    """Route HTTP requests to the :class:`CompileService`."""

    protocol_version = "HTTP/1.1"
    server: "CompileServer"

    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Serve ``/healthz`` and ``/status/<job>``."""
        self.server.track_request(1)
        try:
            if self.path == "/healthz":
                self._send(200, self.server.service.healthz())
                return
            if self.path.startswith("/status/"):
                job_id = self.path[len("/status/"):]
                body = self.server.service.status(job_id)
                if body is None:
                    self._send(404, {"error": f"unknown job id {job_id!r}"})
                else:
                    self._send(200, body)
                return
            self._send(404, {"error": f"unknown path {self.path!r}"})
        finally:
            self.server.track_request(-1)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """Serve ``/compile`` and ``/batch``."""
        self.server.track_request(1)
        try:
            self._do_post()
        finally:
            self.server.track_request(-1)

    def _do_post(self) -> None:
        # Read the body before routing: with HTTP/1.1 keep-alive an unread
        # body would be parsed as the next request line, desyncing the
        # connection for every response, 404s included.
        try:
            payload = self._read_json()
        except ServiceRequestError as exc:
            self._send(400, {"error": str(exc)})
            return
        if self.path not in ("/compile", "/batch"):
            self._send(404, {"error": f"unknown path {self.path!r}"})
            return
        epoch_header = self.headers.get("X-Repro-Epoch")
        if epoch_header is not None:
            try:
                epoch = int(epoch_header)
            except ValueError:
                self._send(400, {"error": f"bad X-Repro-Epoch {epoch_header!r}"})
                return
            if not self.server.service.note_epoch(epoch):
                self._send(409, {
                    "error": f"stale leadership epoch {epoch}; dispatch fenced",
                    "stale_epoch": True,
                    "epoch": epoch,
                })
                return
        try:
            if self.path == "/compile":
                body = self.server.service.compile(payload)
                if body["ok"]:
                    status = 200
                elif body.get("error_kind") == "timeout":
                    # Watchdog expiry: a structured, terminal answer — the
                    # fleet front end relays it instead of re-dispatching
                    # the pathological job to the next worker.
                    status = 504
                else:
                    status = 500
                self._send(status, body)
            else:
                self._send(202, self.server.service.submit_batch(payload))
        except ServiceRequestError as exc:
            self._send(400, {"error": str(exc)})
        except ServiceBusyError as exc:
            self._send(429, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - never kill the server thread
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

    # ------------------------------------------------------------------ #

    def _read_json(self) -> dict:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError as exc:
            # Unknown body length: the connection cannot be re-synced.
            self.close_connection = True
            raise ServiceRequestError("bad Content-Length header") from exc
        if length <= 0:
            raise ServiceRequestError("request body must be a JSON object")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServiceRequestError(f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServiceRequestError("request body must be a JSON object")
        return payload

    def _send(self, status: int, body: dict) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Log to stderr only when the server was started verbose."""
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)


class CompileServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one :class:`CompileService`.

    Parameters
    ----------
    address : tuple[str, int]
        ``(host, port)`` to bind; port ``0`` picks a free port (see
        ``server_address`` for the chosen one).
    service : CompileService
        The service instance requests are routed to.
    verbose : bool, optional
        Log one line per request to stderr.
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: CompileService,
        verbose: bool = False,
    ):
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose
        self._active_requests = 0
        self._active_lock = threading.Lock()

    def track_request(self, delta: int) -> None:
        """Adjust the in-flight request count (called by the handler)."""
        with self._active_lock:
            self._active_requests += delta

    @property
    def active_requests(self) -> int:
        """Requests currently being handled."""
        with self._active_lock:
            return self._active_requests

    def shutdown(self) -> None:
        """Stop serving and shut the service down."""
        super().shutdown()
        self.service.close()

    def drain(self, timeout: float = 30.0) -> bool:
        """SIGTERM semantics: stop accepting, flush in-flight, close.

        Stops the accept loop, waits up to ``timeout`` seconds for every
        in-flight request to finish writing its response, then shuts the
        service down.  Callable from any thread *except* a signal handler
        running on the serving thread (spawn a helper thread there).

        Returns
        -------
        bool
            True when no request was still in flight at the end.
        """
        ThreadingHTTPServer.shutdown(self)  # stop accepting; keep service up
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.active_requests == 0:
                break
            time.sleep(0.02)
        drained = self.active_requests == 0
        self.service.close()
        return drained


def start_server(
    host: str = "127.0.0.1",
    port: int = 0,
    cache_dir: str | None = None,
    max_workers: int = 1,
    batch_window_seconds: float = 0.02,
    max_batch: int = 32,
    verbose: bool = False,
    subgraph_cache_dir: str | None = None,
    background_refine: bool = True,
    compile_timeout_s: float | None = None,
) -> tuple[CompileServer, threading.Thread]:
    """Build a service and serve it on a daemon thread (for tests/loadgen).

    Parameters
    ----------
    host, port : str, int
        Bind address; port ``0`` picks a free port.
    cache_dir : str | None
        Persistent result-cache directory (``None`` disables caching).
    max_workers, batch_window_seconds, max_batch, subgraph_cache_dir,
    background_refine, compile_timeout_s
        Forwarded to :class:`CompileService`.
    verbose : bool
        Log requests to stderr.

    Returns
    -------
    tuple[CompileServer, threading.Thread]
        The running server (query ``server.server_address`` for the bound
        port) and its serving thread; call ``server.shutdown()`` when done.
    """
    service = CompileService(
        cache_dir=cache_dir,
        max_workers=max_workers,
        batch_window_seconds=batch_window_seconds,
        max_batch=max_batch,
        subgraph_cache_dir=subgraph_cache_dir,
        background_refine=background_refine,
        compile_timeout_s=compile_timeout_s,
    )
    server = CompileServer((host, port), service, verbose=verbose)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()
    return server, thread
