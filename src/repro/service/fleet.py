"""A supervised multi-process compile fleet with an ops surface.

``repro serve --workers N`` (N > 1) runs this module instead of a single
:class:`repro.service.server.CompileServer`:

* a :class:`FleetSupervisor` spawns N compile-worker subprocesses — each an
  ordinary ``repro serve`` single instance on its own port, sharing the
  disk result cache and the persistent subgraph-cache tier — and keeps them
  alive with heartbeat health checks and exponential-backoff restarts;
* a :class:`FleetServer` front end routes ``POST /compile`` by job content
  hash (rendezvous hashing, so identical jobs always land on the same
  worker's warm caches), re-dispatches to the next-ranked worker when one
  dies mid-request, and exposes the ops surface: ``GET /metrics``
  (Prometheus text format), ``GET /healthz`` (fleet roll-up incl. worker
  pids/states), structured JSON logs with request ids;
* every accepted ``/compile`` request is journaled to a persistent
  pending-queue (:class:`repro.pipeline.jobs.PendingJournal`) before
  dispatch and marked done after, so a crash mid-batch loses no accepted
  work — the next fleet start replays unfinished entries into the shared
  result cache;
* ``SIGTERM`` triggers a graceful drain: stop accepting, flush in-flight
  requests, stop the workers, exit 0.

Async ``POST /batch`` submissions are forwarded to one hash-routed worker
and polled through the front end (``job_id`` is prefixed with the worker
index); they are intentionally *not* journaled — ``/compile`` is the
durable path.

The supervision design follows the proactor idiom (message-driven
supervision, per-link retry state machines with exponential backoff,
persistent event queue) rather than an in-process thread pool: workers are
OS processes, so one crashing compile cannot take the fleet down, and the
kernel's process lifecycle is the source of truth for liveness.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Sequence

from repro.pipeline.cache import DiskCircuitBreaker
from repro.pipeline.jobs import (
    JOURNAL_SCHEMA_VERSION,
    BatchJob,
    JournalEntry,
    PendingJournal,
    StaleEpochError,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.metrics import FLEET_METRICS, MetricsRegistry, log_event
from repro.service.replication import LeaseLostError, ReplicationFencedError
from repro.utils.faults import FaultPoint

__all__ = [
    "WorkerProcess",
    "FleetSupervisor",
    "FleetServer",
    "FleetDrainingError",
    "NoHealthyWorkerError",
    "PoisonedJobError",
    "rendezvous_order",
    "free_port",
    "start_fleet",
    "install_sigterm_drain",
]

#: Injection points of the fleet control plane (:mod:`repro.utils.faults`).
_FAULT_SPAWN = FaultPoint("worker.spawn")
_FAULT_FORWARD = FaultPoint("dispatch.forward")
_FAULT_HEARTBEAT = FaultPoint("heartbeat.probe")

#: Worker lifecycle states (a small link-state machine per worker).
STARTING = "starting"
HEALTHY = "healthy"
UNHEALTHY = "unhealthy"
RESTARTING = "restarting"
STOPPED = "stopped"


class FleetDrainingError(RuntimeError):
    """The front end is draining and accepts no new work (HTTP 503)."""


class NoHealthyWorkerError(RuntimeError):
    """Every dispatch attempt failed; no healthy worker answered (HTTP 503)."""


class PoisonedJobError(RuntimeError):
    """A request was quarantined after crashing ``max_job_attempts`` workers.

    Answered as HTTP 422: the request itself is the problem (every worker
    that accepted it died), so retrying it anywhere — another worker, a
    restart, a replay — would only widen the blast radius.  The journal
    records the quarantine (``op: "poisoned"``), so replay skips it.
    """

    def __init__(
        self,
        request_id: str,
        attempts: int,
        attempt_history: list[dict],
        max_job_attempts: int,
        last_error: str,
    ):
        super().__init__(
            f"request {request_id} quarantined as poisoned after {attempts} "
            f"crashed dispatch attempts "
            f"(max_job_attempts={max_job_attempts}): {last_error}"
        )
        self.request_id = request_id
        self.attempts = attempts
        self.attempt_history = attempt_history
        self.max_job_attempts = max_job_attempts


def free_port(host: str = "127.0.0.1") -> int:
    """Ask the kernel for a currently free TCP port on ``host``."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


def rendezvous_order(content_hash: str, indices: Sequence[int]) -> list[int]:
    """Rank worker indices for a job by highest-random-weight hashing.

    The rank depends only on ``(content_hash, index)`` pairs, so

    * identical jobs always prefer the same worker (warm LRU placement),
    * the ranking is stable across worker restarts (worker identity is its
      index, not its pid or port), and
    * removing a worker only moves the jobs that preferred it — every other
      job keeps its placement (the consistent-hashing property).

    Parameters
    ----------
    content_hash : str
        The job's content hash (:attr:`repro.pipeline.jobs.BatchJob.content_hash`).
    indices : Sequence[int]
        Candidate worker indices.

    Returns
    -------
    list[int]
        ``indices`` sorted most-preferred first.
    """
    def score(index: int) -> bytes:
        return hashlib.sha256(f"{content_hash}|{index}".encode("utf-8")).digest()

    return sorted(indices, key=score, reverse=True)


def _worker_env() -> dict[str, str]:
    """Subprocess environment with this package importable on PYTHONPATH."""
    import repro

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = os.environ.copy()
    existing = env.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
    return env


class WorkerProcess:
    """One supervised compile-worker subprocess and its link state.

    Parameters
    ----------
    index : int
        Stable worker identity (the routing key component).
    host : str
        Address the worker binds.
    port : int
        Port the worker binds (kept stable across restarts).
    command : list[str]
        Full ``argv`` to spawn the worker with.
    request_timeout : float, optional
        Socket timeout for forwarded compile requests.
    heartbeat_timeout : float, optional
        Socket timeout for health checks (short, so a hung worker is
        detected quickly).
    breaker_threshold : int, optional
        Consecutive connection-level dispatch failures before this
        worker's circuit breaker opens (excluding it from the rendezvous
        ring until the cooldown's half-open probe).
    breaker_cooldown_seconds : float, optional
        How long the dispatch breaker stays open before one probe.
    """

    def __init__(
        self,
        index: int,
        host: str,
        port: int,
        command: list[str],
        request_timeout: float = 120.0,
        heartbeat_timeout: float = 2.0,
        breaker_threshold: int = 3,
        breaker_cooldown_seconds: float = 5.0,
    ):
        self.index = index
        self.host = host
        self.port = port
        self.command = list(command)
        # The disk-tier breaker state machine is failure-source agnostic;
        # here it guards dispatch to a flapping worker.
        self.breaker = DiskCircuitBreaker(
            threshold=breaker_threshold,
            cooldown_seconds=breaker_cooldown_seconds,
        )
        self.process: subprocess.Popen | None = None
        self.state = STOPPED
        self.restarts = 0
        self.consecutive_failures = 0
        self.missed_heartbeats = 0
        self.next_restart_at = 0.0
        self.spawned_at = 0.0
        self.last_healthz: dict = {}
        self.ever_healthy = False
        self.port_rebinds = 0
        self.request_timeout = float(request_timeout)
        self.heartbeat_timeout = float(heartbeat_timeout)
        base_url = f"http://{host}:{port}"
        self.client = ServiceClient(base_url, timeout=request_timeout)
        self.heartbeat_client = ServiceClient(base_url, timeout=heartbeat_timeout)

    # ------------------------------------------------------------------ #

    @property
    def pid(self) -> int | None:
        """The worker's OS pid, or ``None`` when not running."""
        return self.process.pid if self.process is not None else None

    def alive(self) -> bool:
        """True while the subprocess exists and has not exited."""
        return self.process is not None and self.process.poll() is None

    def spawn(self) -> None:
        """Start (or restart) the subprocess and mark the link ``starting``."""
        _FAULT_SPAWN.hit(context=str(self.index))
        self.process = subprocess.Popen(self.command, env=_worker_env())
        self.spawned_at = time.monotonic()
        self.missed_heartbeats = 0
        self.state = STARTING

    def rebind(self, port: int, command: list[str]) -> None:
        """Move the worker to a fresh port (and argv) before a respawn.

        Used when the port allocated by :func:`free_port` turned out to be
        taken by the time the worker tried to bind it (the allocate/bind
        race): the worker identity — its index — is the routing key, so
        changing the port is invisible to rendezvous placement.
        """
        self.port = int(port)
        self.command = list(command)
        self.port_rebinds += 1
        base_url = f"http://{self.host}:{self.port}"
        self.client = ServiceClient(base_url, timeout=self.request_timeout)
        self.heartbeat_client = ServiceClient(base_url, timeout=self.heartbeat_timeout)

    def terminate(self, grace_seconds: float = 10.0) -> None:
        """SIGTERM the worker (graceful drain), escalating to SIGKILL."""
        if self.process is None:
            self.state = STOPPED
            return
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=grace_seconds)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=5.0)
        self.state = STOPPED

    def snapshot(self) -> dict:
        """JSON description for the fleet ``/healthz`` roll-up."""
        return {
            "index": self.index,
            "port": self.port,
            "pid": self.pid,
            "state": self.state,
            "restarts": self.restarts,
            "requests_served": self.last_healthz.get("requests_served", 0),
            "dispatch_breaker": self.breaker.state,
        }


class FleetSupervisor:
    """Spawn, watch, restart and route to a fleet of compile workers.

    Parameters
    ----------
    num_workers : int
        Number of worker subprocesses.
    host : str, optional
        Address workers (and heartbeats) bind/connect on.
    cache_dir : str | None, optional
        Shared persistent result-cache directory (safe across processes:
        entries are content-addressed and written atomically).
    subgraph_cache_dir : str | None, optional
        Shared disk tier of the subgraph compile cache.
    journal_path : str | None, optional
        Pending-queue journal file; ``None`` disables journaling (and
        replay).
    pool_workers : int, optional
        Per-worker process-pool width (``repro serve --pool-workers``).
    batch_window_ms : float, optional
        Micro-batching window forwarded to every worker.
    heartbeat_seconds : float, optional
        Supervision loop period.
    heartbeat_misses : int, optional
        Consecutive failed heartbeats before a live-but-unresponsive worker
        is killed and restarted.
    restart_backoff_seconds : float, optional
        First restart delay; doubles per consecutive failure.
    restart_backoff_cap_seconds : float, optional
        Upper bound on the restart delay.
    worker_start_timeout : float, optional
        How long a spawned worker may take to answer ``/healthz`` before it
        is considered failed.
    request_timeout : float, optional
        Socket timeout for forwarded compile requests.
    dispatch_attempts : int, optional
        Dispatch attempts per request before giving up (each attempt picks
        the best healthy worker by rendezvous rank).
    dispatch_wait_seconds : float, optional
        How long one attempt waits for *any* healthy worker before failing
        (covers the restart window after a crash).
    max_job_attempts : int, optional
        Crashed dispatch attempts (connection-level failures, summed across
        restarts via the journal) before a request is quarantined as
        poisoned and answered HTTP 422.
    compile_timeout_s : float | None, optional
        Per-compile wall-clock watchdog forwarded to every worker
        (``repro serve --compile-timeout-s``); ``None`` disables it.
    epoch : int, optional
        Leadership epoch of this front end (0 outside HA pairs).  Stamped
        on every journal record and worker dispatch so stale writers can
        be fenced.
    replication : ReplicationLink | None, optional
        Synchronous journal replication link to the standby; installed as
        the journal's mirror so records are durable on both peers before
        a request is answered.
    acceptor : ReplicationAcceptor | None, optional
        The (still running) replication listener a promoted standby keeps
        to fence its deposed predecessor; exposed through metrics.
    lease : Lease | None, optional
        Leadership lease renewed on every supervision tick; losing it
        (a higher epoch appeared) stands this front end down.
    hedge_quantile : float | None, optional
        When set (a fraction in ``(0, 1)``), a first dispatch attempt that
        exceeds this latency quantile fires one hedged attempt to the
        next-ranked healthy worker; first success wins.  ``None`` (the
        default) disables hedging.
    hedge_after_seconds : float, optional
        Floor on the hedge trigger latency (quantiles of an empty or very
        fast window would otherwise hedge every request).
    dispatch_breaker_threshold : int, optional
        Per-worker consecutive dispatch failures before its breaker opens.
    dispatch_breaker_cooldown_seconds : float, optional
        How long an open dispatch breaker excludes a worker.
    """

    def __init__(
        self,
        num_workers: int,
        host: str = "127.0.0.1",
        cache_dir: str | None = None,
        subgraph_cache_dir: str | None = None,
        journal_path: str | None = None,
        pool_workers: int = 1,
        batch_window_ms: float = 20.0,
        heartbeat_seconds: float = 0.5,
        heartbeat_misses: int = 3,
        restart_backoff_seconds: float = 0.25,
        restart_backoff_cap_seconds: float = 8.0,
        worker_start_timeout: float = 60.0,
        request_timeout: float = 120.0,
        dispatch_attempts: int = 4,
        dispatch_wait_seconds: float = 15.0,
        max_job_attempts: int = 3,
        compile_timeout_s: float | None = None,
        epoch: int = 0,
        replication=None,
        acceptor=None,
        lease=None,
        hedge_quantile: float | None = None,
        hedge_after_seconds: float = 0.05,
        dispatch_breaker_threshold: int = 3,
        dispatch_breaker_cooldown_seconds: float = 5.0,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if max_job_attempts < 1:
            raise ValueError(f"max_job_attempts must be >= 1, got {max_job_attempts}")
        if compile_timeout_s is not None and compile_timeout_s <= 0:
            raise ValueError(
                f"compile_timeout_s must be > 0, got {compile_timeout_s}"
            )
        if hedge_quantile is not None and not 0.0 < hedge_quantile < 1.0:
            raise ValueError(
                f"hedge_quantile must be in (0, 1), got {hedge_quantile}"
            )
        self.host = host
        self.cache_dir = cache_dir
        self.subgraph_cache_dir = subgraph_cache_dir
        self.pool_workers = int(pool_workers)
        self.batch_window_ms = float(batch_window_ms)
        self.heartbeat_seconds = float(heartbeat_seconds)
        self.heartbeat_misses = int(heartbeat_misses)
        self.restart_backoff_seconds = float(restart_backoff_seconds)
        self.restart_backoff_cap_seconds = float(restart_backoff_cap_seconds)
        self.worker_start_timeout = float(worker_start_timeout)
        self.request_timeout = float(request_timeout)
        self.dispatch_attempts = int(dispatch_attempts)
        self.dispatch_wait_seconds = float(dispatch_wait_seconds)
        self.max_job_attempts = int(max_job_attempts)
        self.compile_timeout_s = (
            float(compile_timeout_s) if compile_timeout_s is not None else None
        )
        self._poisoned_total = 0
        self.started_at = time.time()

        self.epoch = int(epoch)
        self.replication = replication
        self.acceptor = acceptor
        self.lease = lease
        self.hedge_quantile = hedge_quantile
        self.hedge_after_seconds = float(hedge_after_seconds)
        self._deposed = False
        self._failovers = 0

        self.journal = PendingJournal(journal_path) if journal_path else None
        self._journal_path = journal_path
        self._replay_backlog = 0
        if self.journal is not None:
            if self.epoch:
                self.journal.set_epoch(self.epoch)
            if replication is not None:
                self.journal.set_mirror(self._mirror_record)
        if replication is not None and journal_path:
            # Stream our unfinished backlog after each (re)connect so a
            # standby that attached late still holds every accepted-but-
            # unfinished request (the replica dedups by request id).
            replication.on_connect = self._replication_catch_up

        self.workers: list[WorkerProcess] = []
        for index in range(num_workers):
            port = free_port(host)
            self.workers.append(
                WorkerProcess(
                    index,
                    host,
                    port,
                    self._worker_command(port),
                    request_timeout=request_timeout,
                    breaker_threshold=dispatch_breaker_threshold,
                    breaker_cooldown_seconds=dispatch_breaker_cooldown_seconds,
                )
            )

        self._lock = threading.Lock()
        self._inflight = 0
        self._idle = threading.Condition(self._lock)
        self._draining = False
        self._stop = threading.Event()
        self._supervisor_thread: threading.Thread | None = None
        self._replay_thread: threading.Thread | None = None
        # Worker probes run concurrently (one hung worker must not delay
        # the roll-up for the rest); the in-flight set prevents a slow
        # probe from stacking up duplicates for the same worker.
        self._probe_pool = ThreadPoolExecutor(
            max_workers=max(2, num_workers), thread_name_prefix="repro-fleet-probe"
        )
        self._probing: set[int] = set()
        self._probe_lock = threading.Lock()

        # Create every declared instrument up front so the exposition is
        # complete from the first scrape (CI validates exactly this set).
        self.registry = MetricsRegistry()
        self._instruments = {}
        for name, (kind, help_text) in FLEET_METRICS.items():
            factory = {
                "counter": self.registry.counter,
                "gauge": self.registry.gauge,
                "summary": self.registry.summary,
            }[kind]
            self._instruments[name] = factory(name, help_text)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def _worker_command(self, port: int) -> list[str]:
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--host",
            self.host,
            "--port",
            str(port),
            "--workers",
            "1",
            "--pool-workers",
            str(self.pool_workers),
            "--batch-window-ms",
            str(self.batch_window_ms),
        ]
        if self.cache_dir:
            command += ["--cache-dir", str(self.cache_dir)]
        if self.subgraph_cache_dir:
            command += ["--subgraph-cache-dir", str(self.subgraph_cache_dir)]
        if self.compile_timeout_s is not None:
            command += ["--compile-timeout-s", str(self.compile_timeout_s)]
        return command

    def start(self, wait_ready: bool = True, replay: bool = True) -> None:
        """Spawn the workers, start supervision, kick off journal replay.

        Parameters
        ----------
        wait_ready : bool, optional
            Block until every worker answers ``/healthz`` (or its start
            timeout expires).
        replay : bool, optional
            Re-dispatch unfinished journal entries from a previous run (in
            the background, so the front end can accept traffic while the
            backlog drains).
        """
        now = time.monotonic()
        for worker in self.workers:
            try:
                worker.spawn()
            except OSError as exc:
                # The supervision loop will retry with backoff; an initial
                # spawn failure must not take the whole fleet down.
                worker.consecutive_failures += 1
                worker.next_restart_at = now + self.restart_backoff_seconds
                worker.state = RESTARTING
                log_event(
                    "worker_spawn_error",
                    level="error",
                    worker=worker.index,
                    error=f"{type(exc).__name__}: {exc}",
                )
                continue
            log_event(
                "worker_spawn", worker=worker.index, pid=worker.pid, port=worker.port
            )
        if wait_ready:
            deadline = time.monotonic() + self.worker_start_timeout
            for worker in self.workers:
                while worker.state == STARTING and time.monotonic() < deadline:
                    try:
                        worker.last_healthz = worker.heartbeat_client.healthz()
                        worker.state = HEALTHY
                        worker.ever_healthy = True
                    except ServiceError:
                        time.sleep(0.05)
                if worker.state != HEALTHY:
                    log_event(
                        "worker_start_timeout", level="warning", worker=worker.index
                    )
        self._supervisor_thread = threading.Thread(
            target=self._supervise, name="repro-fleet-supervisor", daemon=True
        )
        self._supervisor_thread.start()
        if replay and self._journal_path:
            backlog = PendingJournal.load_unfinished(self._journal_path)
            self._replay_backlog = len(backlog)
            if backlog:
                self._replay_thread = threading.Thread(
                    target=self._replay,
                    args=(backlog,),
                    name="repro-fleet-replay",
                    daemon=True,
                )
                self._replay_thread.start()

    def stop(self, grace_seconds: float = 10.0) -> None:
        """Stop supervision and terminate every worker (no drain)."""
        self._stop.set()
        if self._supervisor_thread is not None:
            self._supervisor_thread.join(timeout=5.0)
        self._probe_pool.shutdown(wait=False)
        for worker in self.workers:
            worker.terminate(grace_seconds=grace_seconds)
        if self.journal is not None:
            self.journal.close()
        if self.replication is not None:
            self.replication.close()
        if self.acceptor is not None:
            self.acceptor.stop()

    def drain(self, timeout: float = 60.0) -> bool:
        """Graceful SIGTERM semantics: stop accepting, flush, stop workers.

        Parameters
        ----------
        timeout : float, optional
            Maximum seconds to wait for in-flight requests.

        Returns
        -------
        bool
            True when every in-flight request finished inside ``timeout``.
        """
        with self._lock:
            if self._draining:
                return True
            self._draining = True
        self._instruments["repro_fleet_draining"].set(1)
        log_event("drain_begin", inflight=self.inflight)
        deadline = time.monotonic() + timeout
        clean = True
        with self._idle:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    clean = False
                    break
                self._idle.wait(timeout=min(remaining, 0.5))
        if self.journal is not None and clean:
            self.journal.compact()
        self.stop()
        log_event("drain_complete", clean=clean)
        return clean

    @property
    def draining(self) -> bool:
        """True once a drain has begun."""
        with self._lock:
            return self._draining

    @property
    def inflight(self) -> int:
        """Requests currently being dispatched."""
        with self._lock:
            return self._inflight

    # ------------------------------------------------------------------ #
    # Supervision loop
    # ------------------------------------------------------------------ #

    def _supervise(self) -> None:
        while not self._stop.wait(self.heartbeat_seconds):
            if self.draining:
                continue
            self._renew_leadership()
            for worker in self.workers:
                with self._probe_lock:
                    if worker.index in self._probing:
                        # The previous probe of this worker is still in
                        # flight (hung worker riding out its heartbeat
                        # timeout); don't stack another behind it.
                        continue
                    self._probing.add(worker.index)
                try:
                    self._probe_pool.submit(self._probe_worker, worker)
                except RuntimeError:  # pool shut down mid-tick
                    with self._probe_lock:
                        self._probing.discard(worker.index)
                    return

    def _probe_worker(self, worker: WorkerProcess) -> None:
        try:
            self._check_worker(worker)
        except Exception as exc:  # noqa: BLE001 - never kill the pool
            log_event(
                "supervisor_error",
                level="error",
                worker=worker.index,
                error=f"{type(exc).__name__}: {exc}",
            )
        finally:
            with self._probe_lock:
                self._probing.discard(worker.index)

    def _renew_leadership(self) -> None:
        """Renew the lease and heartbeat the standby (HA primaries only)."""
        if self._deposed:
            return
        if self.lease is not None:
            try:
                self.lease.renew()
            except LeaseLostError as exc:
                self._stand_down(f"lease lost: {exc}")
                return
            except OSError as exc:
                # Includes injected lease.renew faults: a missed renewal is
                # survivable (the TTL gives us slack); log and carry on.
                log_event("lease_renew_error", level="warning", error=str(exc))
        if self.replication is not None:
            try:
                self.replication.heartbeat()
            except ReplicationFencedError as exc:
                self._stand_down(f"replication fenced: {exc}")

    def _stand_down(self, reason: str) -> None:
        """Fence ourselves: a higher epoch exists, stop accepting work."""
        with self._lock:
            if self._deposed:
                return
            self._deposed = True
        log_event("front_end_deposed", level="error",
                  epoch=self.epoch, reason=reason)

    def note_failover(self) -> None:
        """Record that this front end promoted from standby to primary."""
        with self._lock:
            self._failovers += 1
        self._instruments["repro_fleet_failovers_total"].inc()

    def _mirror_record(self, record: dict) -> None:
        """Synchronously replicate one journal record to the standby.

        Called by the journal inside its append (after the local fsync).
        A degraded link (standby down) is counted and tolerated —
        availability wins — but a *fence* (the standby promoted past us)
        raises :class:`StaleEpochError` so the request fails instead of
        being acknowledged by a deposed primary.
        """
        link = self.replication
        if link is None:
            return
        try:
            link.send_record(record)
        except ReplicationFencedError as exc:
            self._stand_down(f"replication fenced: {exc}")
            raise StaleEpochError(self.epoch, exc.fence_epoch) from exc

    def _replication_catch_up(self, link) -> None:
        """Resend the unfinished backlog after a replication (re)connect."""
        if not self._journal_path:
            return
        backlog = PendingJournal.load_unfinished(self._journal_path)
        for entry in backlog:
            record = {
                "op": "pending",
                "request_id": entry.request_id,
                "payload": entry.payload,
                "content_hash": entry.content_hash,
                "schema_version": JOURNAL_SCHEMA_VERSION,
            }
            if entry.attempts:
                record["attempts"] = entry.attempts
            if self.epoch:
                record["epoch"] = self.epoch
            link.send_record(record)
        if backlog:
            log_event("replication_catch_up", entries=len(backlog))

    def _check_worker(self, worker: WorkerProcess) -> None:
        now = time.monotonic()
        if not worker.alive():
            if worker.state != RESTARTING:
                delay = min(
                    self.restart_backoff_cap_seconds,
                    self.restart_backoff_seconds * (2**worker.consecutive_failures),
                )
                worker.consecutive_failures += 1
                worker.next_restart_at = now + delay
                worker.state = RESTARTING
                log_event(
                    "worker_down",
                    level="warning",
                    worker=worker.index,
                    restart_in_seconds=round(delay, 3),
                    consecutive_failures=worker.consecutive_failures,
                )
            elif now >= worker.next_restart_at:
                if not worker.ever_healthy and worker.port_rebinds == 0:
                    # The worker never came up on its assigned port — most
                    # likely it lost the free_port() allocate/bind race to
                    # another process.  Retry exactly once on a fresh port;
                    # routing is by index, so the move is invisible.
                    new_port = free_port(self.host)
                    worker.rebind(new_port, self._worker_command(new_port))
                    log_event(
                        "worker_rebind",
                        level="warning",
                        worker=worker.index,
                        port=new_port,
                    )
                try:
                    worker.spawn()
                except OSError as exc:
                    worker.consecutive_failures += 1
                    worker.next_restart_at = now + min(
                        self.restart_backoff_cap_seconds,
                        self.restart_backoff_seconds
                        * (2**worker.consecutive_failures),
                    )
                    log_event(
                        "worker_spawn_error",
                        level="error",
                        worker=worker.index,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    return
                worker.restarts += 1
                self._instruments["repro_fleet_worker_restarts_total"].inc()
                log_event(
                    "worker_restart",
                    worker=worker.index,
                    pid=worker.pid,
                    restarts=worker.restarts,
                )
            return
        # Process is alive: heartbeat it.
        try:
            _FAULT_HEARTBEAT.hit(context=str(worker.index))
            worker.last_healthz = worker.heartbeat_client.healthz()
        except (ServiceError, OSError) as exc:
            if worker.state == STARTING:
                if now - worker.spawned_at > self.worker_start_timeout:
                    log_event(
                        "worker_start_timeout", level="warning", worker=worker.index
                    )
                    worker.terminate(grace_seconds=1.0)
                return
            worker.missed_heartbeats += 1
            if worker.missed_heartbeats >= self.heartbeat_misses:
                log_event(
                    "worker_unresponsive",
                    level="warning",
                    worker=worker.index,
                    missed=worker.missed_heartbeats,
                    error=str(exc),
                )
                worker.state = UNHEALTHY
                worker.terminate(grace_seconds=1.0)
            return
        worker.missed_heartbeats = 0
        if worker.state != HEALTHY:
            worker.state = HEALTHY
            worker.ever_healthy = True
            worker.consecutive_failures = 0
            log_event("worker_healthy", worker=worker.index, pid=worker.pid)

    # ------------------------------------------------------------------ #
    # Routing and dispatch
    # ------------------------------------------------------------------ #

    def route(self, content_hash: str) -> list[WorkerProcess]:
        """Workers in rendezvous order for ``content_hash`` (all states)."""
        order = rendezvous_order(content_hash, [w.index for w in self.workers])
        by_index = {worker.index: worker for worker in self.workers}
        return [by_index[index] for index in order]

    def _pick_worker(
        self, ranked: list[WorkerProcess], tried: set[int], deadline: float
    ) -> WorkerProcess | None:
        while True:
            # First choice: healthy, untried this request, and not excluded
            # by its dispatch circuit breaker.  breaker.allow() is only
            # consulted for otherwise-eligible candidates because an open
            # breaker's first allow() consumes its half-open probe.
            for worker in ranked:
                if (
                    worker.state == HEALTHY
                    and worker.index not in tried
                    and worker.breaker.allow()
                ):
                    return worker
            # Next: healthy and untried even if the breaker objects —
            # availability beats tail-latency shaping when the ring is
            # otherwise empty.
            for worker in ranked:
                if worker.state == HEALTHY and worker.index not in tried:
                    return worker
            # Every healthy worker was already tried this request: allow a
            # second round rather than failing while capacity exists.
            for worker in ranked:
                if worker.state == HEALTHY:
                    return worker
            if time.monotonic() >= deadline or self._stop.is_set():
                return None
            time.sleep(0.05)

    def _forward(self, worker: WorkerProcess, payload: dict, content_hash: str) -> dict:
        _FAULT_FORWARD.hit(context=content_hash)
        headers = {"X-Repro-Epoch": str(self.epoch)} if self.epoch else None
        return worker.client.compile_payload(payload, headers=headers)

    def _hedge_threshold_seconds(self) -> float:
        """Latency past which the first attempt gets a hedged sibling."""
        quantile = self._instruments["repro_fleet_request_latency_seconds"].quantile(
            self.hedge_quantile
        )
        return max(self.hedge_after_seconds, quantile)

    def _forward_hedged(
        self,
        worker: WorkerProcess,
        ranked: list[WorkerProcess],
        tried: set[int],
        payload: dict,
        content_hash: str,
        request_id: str,
        hedge_allowed: bool,
    ) -> tuple[dict, WorkerProcess]:
        """Forward to ``worker``, optionally hedging a slow first attempt.

        With hedging enabled (``hedge_quantile``) and allowed (first
        attempt only — retries already have a failure signal), the primary
        forward runs on a helper thread; if it has not answered within the
        hedge-quantile latency, one hedged attempt fires at the
        next-ranked healthy worker and the first success wins.  ``/compile``
        is content-hash idempotent, so the losing attempt is harmless.

        Returns ``(body, serving_worker)``; raises the primary attempt's
        error when every launched attempt failed (only the primary's
        connection failures count toward the poison budget).
        """
        if not hedge_allowed or self.hedge_quantile is None or self._stop.is_set():
            return self._forward(worker, payload, content_hash), worker

        cond = threading.Condition()
        outcomes: list[tuple[WorkerProcess, dict | None, Exception | None]] = []

        def attempt(target: WorkerProcess) -> None:
            try:
                entry = (target, self._forward(target, payload, content_hash), None)
            except (ServiceError, OSError) as exc:
                entry = (target, None, exc)
            with cond:
                outcomes.append(entry)
                cond.notify_all()

        threading.Thread(
            target=attempt, args=(worker,), name="repro-hedge-primary", daemon=True
        ).start()
        threshold = self._hedge_threshold_seconds()
        with cond:
            cond.wait_for(lambda: outcomes, timeout=threshold)
            finished = list(outcomes)
        if finished:
            target, body, error = finished[0]
            if error is not None:
                raise error
            return body, target

        backup = None
        for candidate in ranked:
            if (
                candidate.index != worker.index
                and candidate.index not in tried
                and candidate.state == HEALTHY
                and candidate.breaker.allow()
            ):
                backup = candidate
                break
        if backup is None:
            # Nobody to hedge to: ride out the primary attempt.
            with cond:
                cond.wait_for(lambda: outcomes)
                target, body, error = outcomes[0]
            if error is not None:
                raise error
            return body, target

        tried.add(backup.index)
        if self.journal is not None:
            self.journal.record_attempt(request_id, backup.index)
        self._instruments["repro_fleet_hedged_requests_total"].inc()
        log_event(
            "dispatch_hedged",
            request_id=request_id,
            worker=worker.index,
            hedge_worker=backup.index,
            threshold_s=round(threshold, 4),
        )
        threading.Thread(
            target=attempt, args=(backup,), name="repro-hedge-backup", daemon=True
        ).start()
        with cond:
            while True:
                for target, body, error in outcomes:
                    if error is None:
                        if target is backup:
                            self._instruments["repro_fleet_hedge_wins_total"].inc()
                        return body, target
                if len(outcomes) >= 2:
                    break
                cond.wait()
            finished = list(outcomes)
        primary_error: Exception | None = None
        for target, _body, error in finished:
            if target is backup:
                status = error.status if isinstance(error, ServiceError) else 0
                if status == 0:
                    backup.breaker.record_failure()
            else:
                primary_error = error
        raise primary_error

    def dispatch(
        self,
        payload: dict,
        request_id: str | None = None,
        journal_accept: bool = True,
        prior_attempts: int = 0,
    ) -> dict:
        """Route one compile payload to a worker, retrying across failures.

        Parameters
        ----------
        payload : dict
            A ``/compile`` job payload (validated before any dispatch).
        request_id : str | None, optional
            Correlation id; generated when absent.
        journal_accept : bool, optional
            Write the ``pending`` journal line (False during replay, where
            the entry already exists).
        prior_attempts : int, optional
            Crashed dispatch attempts already charged to this request by a
            previous fleet run (recovered from the journal during replay);
            counted toward the ``max_job_attempts`` poison threshold.

        Returns
        -------
        dict
            The worker's outcome body, augmented with ``request_id`` and
            ``worker`` (the serving worker's index).

        Raises
        ------
        ValueError
            Malformed payload (journaled as terminally failed).
        FleetDrainingError
            The fleet is draining.
        PoisonedJobError
            The request crashed ``max_job_attempts`` workers and was
            quarantined (journaled ``poisoned``, answered HTTP 422).
        NoHealthyWorkerError
            All dispatch attempts exhausted.
        ServiceError
            A worker answered with an HTTP error (relayed verbatim).
        """
        request_id = request_id or uuid.uuid4().hex[:16]
        try:
            job = BatchJob.from_dict(payload)
        except (ValueError, TypeError) as exc:
            if self.journal is not None and journal_accept:
                # Journal the rejection so a replayed journal never retries
                # a payload that can never parse.
                self.journal.record_pending(request_id, payload, "invalid")
                self.journal.record_failed(request_id, str(exc))
            raise ValueError(str(exc)) from exc
        content_hash = job.content_hash
        with self._lock:
            if self._draining:
                raise FleetDrainingError("fleet is draining; not accepting work")
            if self._deposed:
                raise FleetDrainingError(
                    "front end deposed (stale leadership epoch); "
                    "retry against the new primary"
                )
            self._inflight += 1
        self._instruments["repro_fleet_requests_total"].inc()
        self._instruments["repro_fleet_inflight_requests"].inc()
        started = time.perf_counter()
        try:
            # Inside the try so a journal append rejected by the fence
            # (StaleEpochError from the replication mirror) still releases
            # the in-flight slot.
            if self.journal is not None and journal_accept:
                self.journal.record_pending(request_id, payload, content_hash)
            body = self._dispatch_attempts(
                payload, request_id, content_hash, prior_attempts
            )
            if self.journal is not None:
                self.journal.record_done(request_id)
            body["request_id"] = request_id
            return body
        finally:
            elapsed = time.perf_counter() - started
            self._instruments["repro_fleet_request_latency_seconds"].observe(elapsed)
            with self._idle:
                self._inflight -= 1
                self._instruments["repro_fleet_inflight_requests"].set(self._inflight)
                if self._inflight == 0:
                    self._idle.notify_all()

    def _dispatch_attempts(
        self,
        payload: dict,
        request_id: str,
        content_hash: str,
        prior_attempts: int = 0,
    ) -> dict:
        ranked = self.route(content_hash)
        tried: set[int] = set()
        last_error = "no healthy workers"
        crashed = int(prior_attempts)
        history: list[dict] = []
        deadline = time.monotonic() + self.dispatch_wait_seconds
        for attempt in range(self.dispatch_attempts):
            if crashed >= self.max_job_attempts:
                # Checked before (not only after) forwarding so a replayed
                # entry that already burned its attempts in previous runs is
                # quarantined without crashing yet another worker.
                self._quarantine_poisoned(request_id, crashed, last_error, history)
            worker = self._pick_worker(ranked, tried, deadline)
            if worker is None:
                break
            tried.add(worker.index)
            if self.journal is not None:
                self.journal.record_attempt(request_id, worker.index)
            try:
                body, served_by = self._forward_hedged(
                    worker,
                    ranked,
                    tried,
                    payload,
                    content_hash,
                    request_id,
                    hedge_allowed=(attempt == 0),
                )
            except (ServiceError, OSError) as exc:
                status = exc.status if isinstance(exc, ServiceError) else 0
                if status == 0:
                    # Connection-level failure: the worker died or hung
                    # mid-request.  Charge a crashed attempt, mark the link
                    # suspect and re-dispatch to the next worker in
                    # rendezvous order.
                    last_error = str(exc)
                    crashed += 1
                    history.append({"worker": worker.index, "error": last_error})
                    self._instruments["repro_fleet_retries_total"].inc()
                    worker.breaker.record_failure()
                    self._note_dispatch_failure(worker)
                    log_event(
                        "dispatch_retry",
                        level="warning",
                        request_id=request_id,
                        worker=worker.index,
                        attempt=attempt,
                        crashed_attempts=crashed,
                        error=last_error,
                    )
                    continue
                if (
                    status == 409
                    and isinstance(exc, ServiceError)
                    and exc.body.get("stale_epoch")
                ):
                    # The worker has seen a higher leadership epoch: we
                    # were deposed.  Stop accepting and fail the request so
                    # the client fails over to the new primary.
                    self._instruments["repro_fleet_fenced_dispatches_total"].inc()
                    self._stand_down(f"worker fenced dispatch: {exc}")
                # A real HTTP answer (400/429/500): the worker is fine, the
                # request outcome is terminal — journal and relay.
                if self.journal is not None:
                    self.journal.record_failed(request_id, f"HTTP {status}: {exc}")
                raise
            served_by.breaker.record_success()
            body["worker"] = served_by.index
            return body
        if crashed >= self.max_job_attempts:
            self._quarantine_poisoned(request_id, crashed, last_error, history)
        self._instruments["repro_fleet_request_failures_total"].inc()
        log_event(
            "dispatch_failed",
            level="error",
            request_id=request_id,
            error=last_error,
        )
        raise NoHealthyWorkerError(last_error)

    def _quarantine_poisoned(
        self,
        request_id: str,
        attempts: int,
        last_error: str,
        history: list[dict],
    ) -> None:
        """Journal a poison quarantine and raise :class:`PoisonedJobError`."""
        if self.journal is not None:
            self.journal.record_poisoned(request_id, attempts, last_error)
        with self._lock:
            self._poisoned_total += 1
        self._instruments["repro_fleet_poisoned_total"].inc()
        log_event(
            "poison_quarantine",
            level="error",
            request_id=request_id,
            attempts=attempts,
            max_job_attempts=self.max_job_attempts,
            error=last_error,
        )
        raise PoisonedJobError(
            request_id, attempts, history, self.max_job_attempts, last_error
        )

    def _note_dispatch_failure(self, worker: WorkerProcess) -> None:
        # Only demote the link when the process is actually gone; a single
        # timed-out request on a live worker is not a death sentence (the
        # heartbeat loop owns that call).
        if not worker.alive() and worker.state == HEALTHY:
            worker.state = UNHEALTHY

    def _replay(self, backlog: list[JournalEntry]) -> None:
        log_event("journal_replay_begin", entries=len(backlog))
        replayed = 0
        for entry in backlog:
            if self._stop.is_set() or self.draining:
                break
            try:
                self.dispatch(
                    entry.payload,
                    request_id=entry.request_id,
                    journal_accept=False,
                    prior_attempts=entry.attempts,
                )
                replayed += 1
                self._instruments["repro_fleet_journal_replayed_total"].inc()
            except PoisonedJobError as exc:
                log_event(
                    "journal_replay_poisoned",
                    level="warning",
                    request_id=entry.request_id,
                    attempts=exc.attempts,
                )
            except (ValueError, FleetDrainingError, NoHealthyWorkerError, ServiceError) as exc:
                log_event(
                    "journal_replay_error",
                    level="warning",
                    request_id=entry.request_id,
                    error=str(exc),
                )
            with self._lock:
                self._replay_backlog = max(0, self._replay_backlog - 1)
        if self.journal is not None and not self.draining:
            self.journal.compact()
        log_event("journal_replay_complete", replayed=replayed)

    # ------------------------------------------------------------------ #
    # Ops surface
    # ------------------------------------------------------------------ #

    def healthz(self) -> dict:
        """The fleet roll-up body served on ``GET /healthz``."""
        import repro

        with self._lock:
            inflight = self._inflight
            draining = self._draining
            poisoned = self._poisoned_total
            deposed = self._deposed
            failovers = self._failovers
        status = "ok"
        if draining:
            status = "draining"
        elif deposed:
            status = "deposed"
        return {
            "status": status,
            "role": "fleet",
            "ha": {
                "epoch": self.epoch,
                "deposed": deposed,
                "failovers": failovers,
                "lease": str(self.lease.path) if self.lease is not None else None,
                "replication": (
                    self.replication.snapshot()
                    if self.replication is not None
                    else None
                ),
                "acceptor": (
                    self.acceptor.snapshot() if self.acceptor is not None else None
                ),
            },
            "version": repro.__version__,
            "pid": os.getpid(),
            "uptime_seconds": time.time() - self.started_at,
            "num_workers": len(self.workers),
            "inflight": inflight,
            "requests_total": int(
                self._instruments["repro_fleet_requests_total"].value()
            ),
            "poisoned_total": poisoned,
            "max_job_attempts": self.max_job_attempts,
            "journal": {
                "enabled": self.journal is not None,
                "path": self._journal_path,
                "replay_backlog": self._replay_backlog,
            },
            "workers": [worker.snapshot() for worker in self.workers],
        }

    def render_metrics(self) -> str:
        """Refresh gauges/roll-ups and render the Prometheus exposition."""
        ins = self._instruments
        ins["repro_fleet_uptime_seconds"].set(time.time() - self.started_at)
        ins["repro_fleet_workers_total"].set(len(self.workers))
        healthy = sum(1 for worker in self.workers if worker.state == HEALTHY)
        ins["repro_fleet_workers_healthy"].set(healthy)
        with self._lock:
            ins["repro_fleet_inflight_requests"].set(self._inflight)
            ins["repro_fleet_journal_pending"].set(self._inflight + self._replay_backlog)
        served = cache_hits = cache_misses = 0
        sub_hits = sub_misses = 0
        deadline_requests = deadline_misses = admission_rejections = 0
        refinement_improvements = 0
        corrupt_entries = disk_errors = breaker_opens = 0
        breakers_open = compile_timeouts = 0
        for worker in self.workers:
            ins["repro_fleet_worker_up"].set(
                1.0 if worker.state == HEALTHY else 0.0, worker=str(worker.index)
            )
            body = worker.last_healthz or {}
            served += int(body.get("requests_served", 0))
            cache = body.get("cache") or {}
            cache_hits += int(cache.get("hits", 0))
            cache_misses += int(cache.get("misses", 0))
            subgraph = body.get("subgraph_cache") or {}
            sub_hits += int(subgraph.get("hits", 0))
            sub_misses += int(subgraph.get("misses", 0))
            portfolio = body.get("portfolio") or {}
            deadline_requests += int(portfolio.get("deadline_requests", 0))
            deadline_misses += int(portfolio.get("deadline_misses", 0))
            admission_rejections += int(portfolio.get("admission_rejections", 0))
            refinement_improvements += int(
                portfolio.get("refinement_improvements", 0)
            )
            disk_tiers = [cache, (subgraph.get("disk_tier") or {})]
            worker_breaker_open = False
            for tier in disk_tiers:
                corrupt_entries += int(tier.get("corrupt_entries", 0))
                disk_errors += int(tier.get("disk_errors", 0))
                breaker = tier.get("breaker") or {}
                breaker_opens += int(breaker.get("opens", 0))
                if breaker.get("state") == "open":
                    worker_breaker_open = True
            if worker_breaker_open:
                breakers_open += 1
            watchdog = body.get("watchdog") or {}
            compile_timeouts += int(watchdog.get("compile_timeouts", 0))
        ins["repro_fleet_worker_requests_served_total"].set_total(served)
        ins["repro_fleet_result_cache_hits_total"].set_total(cache_hits)
        ins["repro_fleet_result_cache_misses_total"].set_total(cache_misses)
        ins["repro_fleet_subgraph_cache_hits_total"].set_total(sub_hits)
        ins["repro_fleet_subgraph_cache_misses_total"].set_total(sub_misses)
        total = sub_hits + sub_misses
        ins["repro_fleet_subgraph_cache_hit_rate"].set(
            sub_hits / total if total else 0.0
        )
        ins["repro_fleet_deadline_requests_total"].set_total(deadline_requests)
        ins["repro_fleet_deadline_misses_total"].set_total(deadline_misses)
        ins["repro_fleet_admission_rejections_total"].set_total(
            admission_rejections
        )
        ins["repro_fleet_deadline_miss_rate"].set(
            deadline_misses / deadline_requests if deadline_requests else 0.0
        )
        ins["repro_fleet_refinement_improvements_total"].set_total(
            refinement_improvements
        )
        ins["repro_fleet_cache_corrupt_entries_total"].set_total(corrupt_entries)
        ins["repro_fleet_cache_disk_errors_total"].set_total(disk_errors)
        ins["repro_fleet_disk_breaker_opens_total"].set_total(breaker_opens)
        ins["repro_fleet_disk_breaker_open"].set(breakers_open)
        ins["repro_fleet_compile_timeouts_total"].set_total(compile_timeouts)
        with self._lock:
            deposed = self._deposed
        ins["repro_fleet_role"].set(0.0 if deposed else 1.0)
        ins["repro_fleet_epoch"].set(float(self.epoch))
        link = self.replication
        acceptor = self.acceptor
        ins["repro_fleet_replication_connected"].set(
            1.0 if (link is not None and link.connected) else 0.0
        )
        ins["repro_fleet_replication_records_total"].set_total(
            (link.records_total if link is not None else 0)
            + (acceptor.records_total if acceptor is not None else 0)
        )
        ins["repro_fleet_replication_failures_total"].set_total(
            link.failures_total if link is not None else 0
        )
        ins["repro_fleet_fenced_writes_total"].set_total(
            acceptor.fenced_total if acceptor is not None else 0
        )
        dispatch_open = 0
        dispatch_opens = 0
        for worker in self.workers:
            breaker = worker.breaker.snapshot()
            if breaker["open"]:
                dispatch_open += 1
            dispatch_opens += int(breaker["opens"])
        ins["repro_fleet_dispatch_breaker_open"].set(dispatch_open)
        ins["repro_fleet_dispatch_breaker_opens_total"].set_total(dispatch_opens)
        return self.registry.render()


class _FleetHandler(BaseHTTPRequestHandler):
    """Route front-end HTTP requests to the :class:`FleetSupervisor`."""

    protocol_version = "HTTP/1.1"
    server: "FleetServer"

    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Serve ``/healthz``, ``/metrics`` and ``/status/<worker>-<id>``."""
        supervisor = self.server.supervisor
        if self.path == "/healthz":
            self._send_json(200, supervisor.healthz())
            return
        if self.path == "/metrics":
            self._send_text(200, supervisor.render_metrics())
            return
        if self.path.startswith("/status/"):
            self._forward_status(self.path[len("/status/"):])
            return
        self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """Serve ``/compile`` (hash-routed) and ``/batch`` (forwarded)."""
        try:
            payload = self._read_json()
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        if self.path == "/compile":
            self._handle_compile(payload)
        elif self.path == "/batch":
            self._handle_batch(payload)
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    # ------------------------------------------------------------------ #

    def _handle_compile(self, payload: dict) -> None:
        supervisor = self.server.supervisor
        request_id = self.headers.get("X-Request-Id") or uuid.uuid4().hex[:16]
        started = time.perf_counter()
        status = 200
        worker: int | None = None
        try:
            body = supervisor.dispatch(payload, request_id=request_id)
            worker = body.get("worker")
        except ValueError as exc:
            status, body = 400, {"error": str(exc), "request_id": request_id}
        except FleetDrainingError as exc:
            status, body = 503, {"error": str(exc), "request_id": request_id}
        except PoisonedJobError as exc:
            status, body = 422, {
                "error": str(exc),
                "poisoned": True,
                "attempts": exc.attempts,
                "attempt_history": exc.attempt_history,
                "max_job_attempts": exc.max_job_attempts,
                "request_id": request_id,
            }
        except NoHealthyWorkerError as exc:
            status, body = 503, {
                "error": f"no worker could serve the request: {exc}",
                "request_id": request_id,
            }
        except StaleEpochError as exc:
            # The replication fence rejected our journal write mid-request:
            # we were deposed.  503 so the client retries against the
            # promoted standby.
            status, body = 503, {
                "error": str(exc),
                "stale_epoch": True,
                "request_id": request_id,
            }
        except ServiceError as exc:
            status = exc.status or 502
            body = dict(exc.body) or {"error": str(exc)}
            body["request_id"] = request_id
        except Exception as exc:  # noqa: BLE001 - never kill the front end
            status, body = 500, {
                "error": f"{type(exc).__name__}: {exc}",
                "request_id": request_id,
            }
        self._send_json(status, body, request_id=request_id)
        log_event(
            "request",
            request_id=request_id,
            path="/compile",
            status=status,
            worker=worker,
            latency_ms=round(1000.0 * (time.perf_counter() - started), 3),
        )

    def _handle_batch(self, payload: dict) -> None:
        supervisor = self.server.supervisor
        request_id = self.headers.get("X-Request-Id") or uuid.uuid4().hex[:16]
        if supervisor.draining:
            self._send_json(
                503,
                {"error": "fleet is draining; not accepting work",
                 "request_id": request_id},
                request_id=request_id,
            )
            return
        batch_hash = hashlib.sha256(
            json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
        ).hexdigest()
        for worker in supervisor.route(batch_hash):
            if worker.state != HEALTHY:
                continue
            try:
                body = worker.client.request("POST", "/batch", payload)
            except ServiceError as exc:
                if exc.status == 0:
                    continue
                relay = dict(exc.body) or {"error": str(exc)}
                relay["request_id"] = request_id
                self._send_json(exc.status or 502, relay, request_id=request_id)
                return
            # Prefix the job id with the worker index so /status can route
            # the poll back to the same worker.
            body["job_id"] = f"{worker.index}-{body['job_id']}"
            body["worker"] = worker.index
            body["request_id"] = request_id
            self._send_json(202, body, request_id=request_id)
            return
        self._send_json(
            503,
            {"error": "no healthy worker for batch", "request_id": request_id},
            request_id=request_id,
        )

    def _forward_status(self, job_id: str) -> None:
        supervisor = self.server.supervisor
        index_text, _, remote_id = job_id.partition("-")
        workers = {str(w.index): w for w in supervisor.workers}
        worker = workers.get(index_text)
        if worker is None or not remote_id:
            self._send_json(404, {"error": f"unknown job id {job_id!r}"})
            return
        try:
            body = worker.client.request("GET", f"/status/{remote_id}")
        except ServiceError as exc:
            body = dict(exc.body) or {"error": str(exc)}
            self._send_json(exc.status or 502, body)
            return
        body["job_id"] = job_id
        body["worker"] = worker.index
        self._send_json(200, body)

    # ------------------------------------------------------------------ #

    def _read_json(self) -> dict:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError as exc:
            self.close_connection = True
            raise ValueError("bad Content-Length header") from exc
        if length <= 0:
            raise ValueError("request body must be a JSON object")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _send_json(self, status: int, body: dict, request_id: str | None = None) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        if request_id is not None:
            self.send_header("X-Request-Id", request_id)
        self.end_headers()
        self.wfile.write(data)

    def _send_text(self, status: int, text: str) -> None:
        data = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Default request logging is replaced by structured JSON logs."""
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)


class FleetServer(ThreadingHTTPServer):
    """The thin HTTP front end bound to one :class:`FleetSupervisor`.

    Parameters
    ----------
    address : tuple[str, int]
        ``(host, port)`` to bind; port ``0`` picks a free port.
    supervisor : FleetSupervisor
        The supervisor requests are routed through.
    verbose : bool, optional
        Also emit http.server's per-request lines (JSON logs are always on).
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        supervisor: FleetSupervisor,
        verbose: bool = False,
    ):
        super().__init__(address, _FleetHandler)
        self.supervisor = supervisor
        self.verbose = verbose

    def drain_and_shutdown(self, timeout: float = 60.0) -> bool:
        """Graceful SIGTERM path: drain the supervisor, stop serving."""
        clean = self.supervisor.drain(timeout=timeout)
        self.shutdown()
        return clean


def install_sigterm_drain(server: FleetServer, timeout: float = 60.0) -> None:
    """Install SIGTERM/SIGINT handlers that drain ``server`` gracefully.

    The handler runs the drain on a helper thread: calling
    ``server.shutdown()`` from the signal frame would deadlock the serving
    loop it interrupts.
    """
    def _handler(signum, frame):  # noqa: ARG001 - signal API
        log_event("signal", signal=signal.Signals(signum).name)
        threading.Thread(
            target=server.drain_and_shutdown,
            kwargs={"timeout": timeout},
            name="repro-fleet-drain",
            daemon=True,
        ).start()

    signal.signal(signal.SIGTERM, _handler)
    signal.signal(signal.SIGINT, _handler)


def start_fleet(
    num_workers: int,
    host: str = "127.0.0.1",
    port: int = 0,
    wait_ready: bool = True,
    **supervisor_kwargs,
) -> tuple[FleetServer, FleetSupervisor, threading.Thread]:
    """Build and start a fleet, serving its front end on a daemon thread.

    Parameters
    ----------
    num_workers : int
        Number of compile-worker subprocesses.
    host, port : str, int
        Front-end bind address; port ``0`` picks a free port.
    wait_ready : bool, optional
        Block until every worker answers ``/healthz``.
    **supervisor_kwargs
        Forwarded to :class:`FleetSupervisor`.

    Returns
    -------
    tuple[FleetServer, FleetSupervisor, threading.Thread]
        The front end (query ``server.server_address``), the supervisor and
        the serving thread.  Call ``supervisor.stop()`` (or
        ``server.drain_and_shutdown()``) when done.
    """
    supervisor = FleetSupervisor(num_workers, host=host, **supervisor_kwargs)
    supervisor.start(wait_ready=wait_ready)
    server = FleetServer((host, port), supervisor)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-fleet-serve", daemon=True
    )
    thread.start()
    return server, supervisor, thread
