"""Closed-loop load generator for the compilation service.

``run_loadgen`` drives a running :class:`repro.service.server.CompileServer`
with ``concurrency`` worker threads, each issuing the next request as soon as
its previous one returns (closed loop, so the offered load adapts to the
server).  The workload is a deterministic round-robin over a list of job
payloads — typically the cross product of graph families, sizes and seeds —
and the report aggregates what a capacity test needs: throughput, latency
percentiles (p50/p95/p99) and the cache-hit rate.

Because jobs repeat across rounds (and across runs, if the server has a
persistent cache directory), a *second* identical run is expected to be
served almost entirely from cache — ``repro loadgen --min-cache-hit-rate``
turns that expectation into a checkable exit code, which CI uses.

Deadline-bounded workloads (``workload_payloads(deadline_ms=...)``) route the
server through the anytime portfolio compiler; the report then additionally
tracks the deadline-miss rate, admission-control rejections (HTTP 429, which
are counted separately from failures) and the mean served quality, and
``repro loadgen --max-deadline-miss-rate`` gates on the miss rate the same
way ``--min-cache-hit-rate`` gates on caching.

As a fault-injection harness, ``run_loadgen(kill_worker_after=K)`` SIGKILLs
one healthy compile worker of a *fleet* front end (pids come from the
fleet's ``/healthz`` roll-up) after K requests have completed — the CI
``fleet-smoke`` job uses it to assert that a worker crash mid-load completes
the run with zero failed requests.  ``kill_front_end_after=K`` escalates
the drill to the front end itself: the primary is SIGKILLed mid-load and
the run (given a multi-address ``url`` and generous retries) must complete
against the promoted standby with zero lost requests and zero duplicate
accepts — every request carries a unique ``X-Request-Id``, and a response
echoing an already-seen id fails the run.
"""

from __future__ import annotations

import itertools
import os
import signal
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Sequence

from repro.service.client import ServiceClient, ServiceError

__all__ = ["LoadReport", "percentile", "run_loadgen", "workload_payloads"]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` (linear interpolation).

    Parameters
    ----------
    values : Sequence[float]
        Samples; must be non-empty.
    q : float
        Percentile in ``[0, 100]``.

    Returns
    -------
    float
        The interpolated percentile.
    """
    if not values:
        raise ValueError("cannot take a percentile of no samples")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (q / 100.0) * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def workload_payloads(
    families: Sequence[str],
    sizes: Sequence[int],
    seeds: Sequence[int] = (11,),
    kind: str = "compile",
    emitter_limit_factor: float = 1.5,
    backend: str | None = None,
    deadline_ms: float | None = None,
    priority: str | None = None,
) -> list[dict]:
    """The cross product of families/sizes/seeds as ``/compile`` payloads.

    Parameters
    ----------
    families : Sequence[str]
        Graph families (any :data:`repro.pipeline.jobs.GRAPH_FAMILIES` name).
    sizes : Sequence[int]
        Graph sizes (per-family semantics; e.g. distance for ``surface``).
    seeds : Sequence[int], optional
        Graph seeds.
    kind : str, optional
        Job kind for every payload.
    emitter_limit_factor : float, optional
        The paper's ``N_e^limit / N_e^min`` knob.
    backend : str | None, optional
        Pin the GF(2) backend for every job (``None`` = server default).
    deadline_ms : float | None, optional
        Attach an anytime-compilation deadline to every payload, routing
        the server through the portfolio compiler.
    priority : str | None, optional
        Admission-control priority class for every payload (``"high"``,
        ``"normal"`` or ``"low"``; ``None`` = server default).

    Returns
    -------
    list[dict]
        One payload per combination, in deterministic order.
    """
    payloads = []
    for family, size, seed in itertools.product(families, sizes, seeds):
        payload: dict = {
            "family": family,
            "size": size,
            "seed": seed,
            "kind": kind,
            "emitter_limit_factor": emitter_limit_factor,
        }
        if backend is not None:
            payload["backend"] = backend
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if priority is not None:
            payload["priority"] = priority
        payloads.append(payload)
    return payloads


@dataclass
class LoadReport:
    """Aggregated outcome of one load-generation run."""

    requests: int = 0
    errors: int = 0
    cache_hits: int = 0
    coalesced: int = 0
    wall_seconds: float = 0.0
    latencies_seconds: list[float] = field(default_factory=list)
    first_errors: list[str] = field(default_factory=list)
    poisoned: int = 0
    killed_worker_index: int | None = None
    killed_worker_pid: int | None = None
    killed_after_requests: int | None = None
    killed_front_end_pid: int | None = None
    killed_front_end_after: int | None = None
    orphan_worker_pids: list[int] = field(default_factory=list)
    duplicate_accepts: int = 0
    deadline_requests: int = 0
    deadline_misses: int = 0
    admission_rejections: int = 0
    quality_cnots: list[float] = field(default_factory=list)
    quality_durations: list[float] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every request succeeded exactly once."""
        return self.errors == 0 and self.requests > 0 and self.duplicate_accepts == 0

    @property
    def throughput_rps(self) -> float:
        """Completed requests per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.requests / self.wall_seconds

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of successful requests answered from the result cache."""
        completed = self.requests - self.errors
        if completed <= 0:
            return 0.0
        return self.cache_hits / completed

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of deadline-bounded requests that returned late."""
        if self.deadline_requests <= 0:
            return 0.0
        return self.deadline_misses / self.deadline_requests

    def latency_ms(self, q: float) -> float:
        """Latency percentile ``q`` in milliseconds (0 with no samples)."""
        if not self.latencies_seconds:
            return 0.0
        return 1000.0 * percentile(self.latencies_seconds, q)

    def summary(self) -> dict:
        """JSON-serialisable aggregate (what the CLI prints)."""
        body = {
            "requests": self.requests,
            "errors": self.errors,
            "wall_seconds": self.wall_seconds,
            "throughput_rps": self.throughput_rps,
            "latency_p50_ms": self.latency_ms(50),
            "latency_p95_ms": self.latency_ms(95),
            "latency_p99_ms": self.latency_ms(99),
            "cache_hit_rate": self.cache_hit_rate,
            "coalesced": self.coalesced,
        }
        if self.deadline_requests:
            body["deadline_requests"] = self.deadline_requests
            body["deadline_misses"] = self.deadline_misses
            body["deadline_miss_rate"] = self.deadline_miss_rate
        if self.admission_rejections:
            body["admission_rejections"] = self.admission_rejections
        if self.poisoned:
            body["poisoned"] = self.poisoned
        if self.quality_cnots:
            body["mean_emitter_cnots"] = sum(self.quality_cnots) / len(
                self.quality_cnots
            )
            body["mean_duration"] = sum(self.quality_durations) / len(
                self.quality_durations
            )
        if self.killed_worker_pid is not None:
            body["killed_worker_index"] = self.killed_worker_index
            body["killed_worker_pid"] = self.killed_worker_pid
            body["killed_after_requests"] = self.killed_after_requests
        if self.killed_front_end_pid is not None:
            body["killed_front_end_pid"] = self.killed_front_end_pid
            body["killed_front_end_after"] = self.killed_front_end_after
            body["duplicate_accepts"] = self.duplicate_accepts
            body["orphan_worker_pids"] = self.orphan_worker_pids
        return body

    def to_text(self) -> str:
        """Human-readable report block."""
        lines = [
            f"requests:      {self.requests}  ({self.errors} errors)",
            f"wall:          {self.wall_seconds:.3f}s  "
            f"({self.throughput_rps:.1f} req/s)",
            f"latency p50:   {self.latency_ms(50):.1f} ms",
            f"latency p95:   {self.latency_ms(95):.1f} ms",
            f"latency p99:   {self.latency_ms(99):.1f} ms",
            f"cache hits:    {self.cache_hits} ({100.0 * self.cache_hit_rate:.1f}%)"
            f"  coalesced: {self.coalesced}",
        ]
        if self.deadline_requests:
            lines.append(
                f"deadlines:     {self.deadline_misses}/{self.deadline_requests} "
                f"missed ({100.0 * self.deadline_miss_rate:.1f}%)"
                f"  rejected: {self.admission_rejections}"
            )
            if self.quality_cnots:
                mean_cnots = sum(self.quality_cnots) / len(self.quality_cnots)
                mean_duration = sum(self.quality_durations) / len(
                    self.quality_durations
                )
                lines.append(
                    f"quality:       {mean_cnots:.2f} mean emitter CNOTs, "
                    f"{mean_duration:.2f} mean duration"
                )
        if self.poisoned:
            lines.append(f"poisoned:      {self.poisoned} request(s) quarantined (HTTP 422)")
        if self.killed_worker_pid is not None:
            lines.append(
                f"fault inject: SIGKILLed worker {self.killed_worker_index} "
                f"(pid {self.killed_worker_pid}) after "
                f"{self.killed_after_requests} requests"
            )
        if self.killed_front_end_pid is not None:
            lines.append(
                f"fault inject: SIGKILLed front end "
                f"(pid {self.killed_front_end_pid}) after "
                f"{self.killed_front_end_after} requests; "
                f"duplicate accepts: {self.duplicate_accepts}"
            )
        for message in self.first_errors:
            lines.append(f"error: {message}")
        return "\n".join(lines)


def _kill_one_worker(url: str, timeout: float, report: LoadReport, lock) -> None:
    """SIGKILL one healthy compile worker of the fleet serving ``url``.

    The victim is the first worker with a pid in the fleet's ``/healthz``
    roll-up.  Raises :class:`ValueError` when the target is not a fleet
    front end (single ``repro serve`` instances expose no worker pids).
    """
    body = ServiceClient(url, timeout=timeout).healthz()
    workers = body.get("workers")
    if not workers:
        raise ValueError(
            "--kill-worker-after needs a fleet front end "
            "(repro serve --workers N > 1); /healthz lists no workers"
        )
    victims = [w for w in workers if w.get("pid") and w.get("state") == "healthy"]
    victims = victims or [w for w in workers if w.get("pid")]
    if not victims:
        raise ValueError("no worker with a pid to kill in /healthz")
    victim = victims[0]
    os.kill(int(victim["pid"]), signal.SIGKILL)
    with lock:
        report.killed_worker_index = victim.get("index")
        report.killed_worker_pid = int(victim["pid"])


def _kill_front_end(url: str, timeout: float, report: LoadReport, lock) -> None:
    """SIGKILL the front-end process serving ``url`` (failover drill).

    ``url`` may be a comma-separated address list; the kill always targets
    the *first* address — the primary — so a standby listed second can take
    over.  The primary's own pid comes from its ``/healthz`` body; worker
    pids from the roll-up are recorded as orphans (SIGKILL gives the
    supervisor no chance to reap them, so the harness caller cleans up).
    """
    primary_url = str(url).split(",")[0].strip()
    body = ServiceClient(primary_url, timeout=timeout).healthz()
    pid = body.get("pid")
    if not pid:
        raise ValueError(
            "--kill-front-end-after needs /healthz to report the front-end pid"
        )
    orphans = [
        int(w["pid"]) for w in (body.get("workers") or []) if w.get("pid")
    ]
    os.kill(int(pid), signal.SIGKILL)
    with lock:
        report.killed_front_end_pid = int(pid)
        report.orphan_worker_pids = orphans


def run_loadgen(
    url: str,
    payloads: Sequence[dict],
    requests: int = 50,
    concurrency: int = 4,
    timeout: float = 120.0,
    retries: int = 1,
    kill_worker_after: int | None = None,
    kill_front_end_after: int | None = None,
    poison_payload: dict | None = None,
) -> LoadReport:
    """Drive the service closed-loop and aggregate a :class:`LoadReport`.

    Parameters
    ----------
    url : str
        Server root, e.g. ``"http://127.0.0.1:8765"``.
    payloads : Sequence[dict]
        ``/compile`` payloads, issued round-robin (request ``i`` sends
        ``payloads[i % len(payloads)]``) so the mix is deterministic.
    requests : int, optional
        Total number of requests across all workers.
    concurrency : int, optional
        Number of closed-loop worker threads.
    timeout : float, optional
        Per-request socket timeout in seconds (a hung server fails the
        request instead of stalling the closed loop forever).
    retries : int, optional
        Retries per request after a connection failure or HTTP 503 (the
        fleet front end briefly mid-recovery); compiles are content-hash
        idempotent, so a retried POST is safe.
    kill_worker_after : int | None, optional
        Fault injection: after this many requests have *completed*, SIGKILL
        one healthy compile worker of the fleet serving ``url``.  The
        target must be a fleet front end (its ``/healthz`` lists worker
        pids); the killed worker is recorded on the report.
    kill_front_end_after : int | None, optional
        Failover drill: after this many requests have *completed*, SIGKILL
        the front-end process itself (the first address when ``url`` lists
        several).  Pair with a multi-address ``url`` and generous
        ``retries`` so in-flight requests fail over to the promoted
        standby; every request carries a unique ``X-Request-Id`` and the
        run only reports ``ok`` when no id was accepted twice.
    poison_payload : dict | None, optional
        Chaos testing: send this payload as the *last* request of the run
        (index ``requests - 1``) instead of the round-robin mix.  A 422
        answer whose body carries ``"poisoned": true`` (the fleet's
        poison-quarantine response) is counted in ``report.poisoned``
        rather than as an error.

    Returns
    -------
    LoadReport
        Aggregated latencies, throughput, error and cache-hit counters.
    """
    if not payloads:
        raise ValueError("loadgen needs at least one payload")
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    if kill_worker_after is not None and not 0 <= kill_worker_after < requests:
        raise ValueError(
            f"kill_worker_after must be in [0, {requests}), got {kill_worker_after}"
        )
    if kill_front_end_after is not None and not 0 <= kill_front_end_after < requests:
        raise ValueError(
            f"kill_front_end_after must be in [0, {requests}), "
            f"got {kill_front_end_after}"
        )

    report = LoadReport()
    lock = threading.Lock()
    counter = itertools.count()
    kill_pending = kill_worker_after is not None
    kill_fe_pending = kill_front_end_after is not None
    accepted_ids: set[str] = set()

    def worker() -> None:
        """One closed-loop client: issue requests until the counter runs out."""
        nonlocal kill_pending, kill_fe_pending
        client = ServiceClient(url, timeout=timeout, retries=retries)
        while True:
            index = next(counter)
            if index >= requests:
                return
            if poison_payload is not None and index == requests - 1:
                payload = poison_payload
            else:
                payload = payloads[index % len(payloads)]
            started = time.perf_counter()
            error = None
            rejected = False
            quarantined = False
            cache_hit = False
            coalesced = False
            portfolio: dict = {}
            # A unique id per logical request: retried/hedged/failed-over
            # POSTs reuse it, so a response echoing an id already seen
            # means one acceptance was double-counted somewhere.
            request_id = uuid.uuid4().hex[:16]
            accepted_id: str | None = None
            try:
                body = client.compile_payload(
                    payload, headers={"X-Request-Id": request_id}
                )
                cache_hit = bool(body.get("cache_hit"))
                coalesced = bool(body.get("coalesced"))
                accepted_id = str(body.get("request_id") or request_id)
                portfolio = (body.get("result") or {}).get("portfolio") or {}
            except ServiceError as exc:
                if exc.status == 429:
                    # Admission control turned the request away on purpose;
                    # count it separately instead of as a server failure.
                    rejected = True
                elif exc.status == 422 and (exc.body or {}).get("poisoned"):
                    # The fleet quarantined the request as poisoned — the
                    # expected outcome of a chaos poison payload, not a
                    # server failure.
                    quarantined = True
                else:
                    error = str(exc)
            latency = time.perf_counter() - started
            fire_kill = False
            fire_fe_kill = False
            with lock:
                report.requests += 1
                if rejected:
                    report.admission_rejections += 1
                elif quarantined:
                    report.poisoned += 1
                elif error is None:
                    if accepted_id is not None:
                        if accepted_id in accepted_ids:
                            report.duplicate_accepts += 1
                        else:
                            accepted_ids.add(accepted_id)
                    report.latencies_seconds.append(latency)
                    report.cache_hits += int(cache_hit)
                    report.coalesced += int(coalesced)
                    if payload.get("deadline_ms") is not None:
                        report.deadline_requests += 1
                        report.deadline_misses += int(
                            bool(portfolio.get("deadline_missed"))
                        )
                    quality = portfolio.get("quality") or {}
                    if quality:
                        report.quality_cnots.append(
                            float(quality.get("num_emitter_emitter_cnots", 0.0))
                        )
                        report.quality_durations.append(
                            float(quality.get("duration", 0.0))
                        )
                else:
                    report.errors += 1
                    if len(report.first_errors) < 3:
                        report.first_errors.append(error)
                if kill_pending and report.requests > kill_worker_after:
                    kill_pending = False
                    fire_kill = True
                    report.killed_after_requests = report.requests
                if kill_fe_pending and report.requests > kill_front_end_after:
                    kill_fe_pending = False
                    fire_fe_kill = True
                    report.killed_front_end_after = report.requests
            if fire_kill:
                try:
                    # Outside the lock: the kill takes an HTTP round-trip.
                    _kill_one_worker(url, timeout, report, lock)
                except (ServiceError, ValueError, OSError) as exc:
                    # Surface the failed injection as a run failure instead
                    # of silently reporting a kill that never happened.
                    with lock:
                        report.errors += 1
                        report.first_errors.append(f"kill-worker failed: {exc}")
            if fire_fe_kill:
                try:
                    _kill_front_end(url, timeout, report, lock)
                except (ServiceError, ValueError, OSError) as exc:
                    with lock:
                        report.errors += 1
                        report.first_errors.append(f"kill-front-end failed: {exc}")

    started = time.perf_counter()
    threads = [
        threading.Thread(target=worker, name=f"repro-loadgen-{i}", daemon=True)
        for i in range(min(concurrency, requests))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.wall_seconds = time.perf_counter() - started
    return report
