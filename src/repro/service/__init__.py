"""The compilation service: serve graph-state compilations over HTTP.

This subsystem turns the batch pipeline (:mod:`repro.pipeline`) into a
long-running server for interactive and high-volume traffic:

* :mod:`repro.service.server` — :class:`CompileService` (micro-batched
  execution, async batches, counters) and :class:`CompileServer` (stdlib
  ``ThreadingHTTPServer`` exposing ``/compile``, ``/batch``,
  ``/status/<job>`` and ``/healthz`` with JSON bodies);
* :mod:`repro.service.batcher` — the :class:`MicroBatcher` that coalesces
  concurrent requests into single :class:`repro.pipeline.runner.BatchRunner`
  batches;
* :mod:`repro.service.client` — :class:`ServiceClient`, a dependency-free
  ``urllib`` client used by tests and the load generator;
* :mod:`repro.service.loadgen` — the closed-loop load generator behind
  ``repro loadgen`` (throughput, p50/p95/p99 latency, cache-hit rate), with
  ``kill_worker_after`` fault injection against a fleet;
* :mod:`repro.service.fleet` — the supervised multi-process compile fleet
  behind ``repro serve --workers N``: content-hash (rendezvous) routing,
  heartbeat health checks with exponential-backoff restarts, a persistent
  pending-queue journal with crash replay, and SIGTERM graceful drain;
* :mod:`repro.service.metrics` — the Prometheus ``/metrics`` instruments,
  the exposition validator CI scrapes against, and structured JSON logs.

Everything is stdlib-only on top of the package's existing dependencies; the
CLI entry points are ``repro serve`` and ``repro loadgen``.
"""

from repro.service.batcher import BatcherStats, MicroBatcher
from repro.service.client import ServiceClient, ServiceError
from repro.service.fleet import (
    FleetServer,
    FleetSupervisor,
    WorkerProcess,
    rendezvous_order,
    start_fleet,
)
from repro.service.metrics import (
    FLEET_METRICS,
    MetricsRegistry,
    log_event,
    validate_exposition,
)
from repro.service.loadgen import LoadReport, percentile, run_loadgen, workload_payloads
from repro.service.server import (
    CompileServer,
    CompileService,
    ServiceBusyError,
    ServiceRequestError,
    start_server,
)

__all__ = [
    "BatcherStats",
    "MicroBatcher",
    "FleetServer",
    "FleetSupervisor",
    "WorkerProcess",
    "rendezvous_order",
    "start_fleet",
    "FLEET_METRICS",
    "MetricsRegistry",
    "log_event",
    "validate_exposition",
    "ServiceClient",
    "ServiceError",
    "LoadReport",
    "percentile",
    "run_loadgen",
    "workload_payloads",
    "CompileServer",
    "CompileService",
    "ServiceBusyError",
    "ServiceRequestError",
    "start_server",
]
