"""Micro-batching of concurrent compile requests onto the batch pipeline.

The HTTP server handles every request on its own thread
(:class:`http.server.ThreadingHTTPServer`), but compilations are cheapest
when they travel together: one :meth:`repro.pipeline.runner.BatchRunner.run`
call amortises cache lookups and process-pool dispatch over the whole batch.
:class:`MicroBatcher` is the funnel between the two worlds — request threads
:meth:`~MicroBatcher.submit` a job and block; a single dispatcher thread
drains the queue, waits a short *batching window* for stragglers, executes
the collected jobs as one batch and wakes every submitter with its own
:class:`repro.pipeline.runner.JobOutcome`.

The first request of a quiet period pays at most ``window_seconds`` of extra
latency; under load the window is always full and the batcher converges to
back-to-back batches of up to ``max_batch`` jobs.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

from repro.pipeline.jobs import BatchJob
from repro.pipeline.runner import BatchRunner, JobOutcome

__all__ = ["BatcherStats", "MicroBatcher"]


@dataclass
class BatcherStats:
    """Counters describing the batching behaviour so far."""

    requests: int = 0
    batches: int = 0
    largest_batch: int = 0

    def as_dict(self) -> dict:
        """JSON-serialisable snapshot (served by ``/healthz``)."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "mean_batch_size": self.requests / self.batches if self.batches else 0.0,
        }


@dataclass
class _Pending:
    """One submitted job waiting for its outcome."""

    job: BatchJob
    done: threading.Event = field(default_factory=threading.Event)
    outcome: JobOutcome | None = None


class MicroBatcher:
    """Collect concurrent jobs into batches and run them on a shared runner.

    Parameters
    ----------
    runner : BatchRunner
        Executes each collected batch (and owns the result cache, so cached
        jobs are answered without compiling).
    window_seconds : float, optional
        How long the dispatcher keeps collecting after the first job of a
        batch arrives.
    max_batch : int, optional
        Upper bound on jobs per batch; a full batch dispatches immediately.
    """

    def __init__(
        self,
        runner: BatchRunner,
        window_seconds: float = 0.02,
        max_batch: int = 32,
    ):
        if window_seconds < 0:
            raise ValueError(f"window_seconds must be >= 0, got {window_seconds}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.runner = runner
        self.window_seconds = float(window_seconds)
        self.max_batch = int(max_batch)
        self.stats = BatcherStats()
        self._queue: queue.Queue[_Pending | None] = queue.Queue()
        self._closed = threading.Event()
        # Serialises the closed-check-then-enqueue of submit() against
        # close(), so no submission can slip into the queue after the final
        # drain (which would leave its thread waiting forever).
        self._submit_lock = threading.Lock()
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-microbatcher", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------ #

    def submit(self, job: BatchJob, timeout_seconds: float | None = None) -> JobOutcome:
        """Enqueue ``job`` and block until its batch has been executed.

        Parameters
        ----------
        job : BatchJob
            The compilation job to run.
        timeout_seconds : float | None, optional
            Per-request watchdog bound: when the outcome is not available
            within this many wall-clock seconds, return a structured
            timeout outcome (``error_kind="timeout"``) instead of blocking
            forever.  The underlying batch keeps running to completion —
            Python threads cannot be interrupted — but the caller's thread
            (and its HTTP connection) is released immediately.

        Returns
        -------
        JobOutcome
            The job's outcome; failures are captured in ``outcome.error``
            rather than raised (matching the pipeline's semantics).
        """
        pending = _Pending(job=job)
        with self._submit_lock:
            if self._closed.is_set():
                raise RuntimeError("MicroBatcher is closed")
            self._queue.put(pending)
        if not pending.done.wait(timeout=timeout_seconds):
            return JobOutcome(
                job=job,
                result=None,
                error=(
                    f"compile watchdog: no outcome within {timeout_seconds:g}s "
                    f"for {job.label}"
                ),
                error_kind="timeout",
                elapsed_seconds=float(timeout_seconds),
            )
        assert pending.outcome is not None
        return pending.outcome

    def close(self, timeout: float = 5.0) -> None:
        """Stop the dispatcher thread; pending jobs are failed, not run."""
        with self._submit_lock:
            if self._closed.is_set():
                return
            self._closed.set()
        self._queue.put(None)  # wake the dispatcher
        self._thread.join(timeout=timeout)
        self._drain_cancelled()

    # ------------------------------------------------------------------ #

    def _collect(self) -> list[_Pending]:
        """Block for the next job, then gather stragglers within the window."""
        first = self._queue.get()
        if first is None:
            return []
        batch = [first]
        deadline = time.monotonic() + self.window_seconds
        while len(batch) < self.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is None:
                break
            batch.append(item)
        return batch

    def _dispatch_loop(self) -> None:
        while not self._closed.is_set():
            batch = self._collect()
            if not batch:
                continue
            self.stats.requests += len(batch)
            self.stats.batches += 1
            self.stats.largest_batch = max(self.stats.largest_batch, len(batch))
            try:
                report = self.runner.run([pending.job for pending in batch])
                outcomes = report.outcomes
            except Exception as exc:  # noqa: BLE001 - fail the batch, not the server
                outcomes = [
                    JobOutcome(
                        job=pending.job,
                        result=None,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    for pending in batch
                ]
            for pending, outcome in zip(batch, outcomes):
                pending.outcome = outcome
                pending.done.set()

    def _drain_cancelled(self) -> None:
        """Fail anything still queued after :meth:`close`."""
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is not None:
                item.outcome = JobOutcome(
                    job=item.job, result=None, error="service shut down"
                )
                item.done.set()
