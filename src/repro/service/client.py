"""A small stdlib HTTP client for the compilation service.

:class:`ServiceClient` speaks the JSON protocol of
:class:`repro.service.server.CompileServer` with nothing but
``urllib.request``, so tests, the load generator and user scripts need no
extra dependencies::

    from repro.service.client import ServiceClient

    client = ServiceClient("http://127.0.0.1:8765")
    client.wait_until_ready()
    body = client.compile(family="lattice", size=12, kind="compile")
    print(body["cache_hit"], body["result"]["ours"]["num_emitters"])
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

__all__ = ["ServiceClient", "ServiceError", "RETRYABLE_STATUSES"]


class ServiceError(RuntimeError):
    """An HTTP error response from the service.

    Attributes
    ----------
    status : int
        HTTP status code (0 when the server was unreachable).
    body : dict
        Parsed JSON error body (may be empty).
    """

    def __init__(self, status: int, message: str, body: dict | None = None):
        super().__init__(f"HTTP {status}: {message}" if status else message)
        self.status = status
        self.body = body or {}


#: HTTP statuses worth one more try: 0 is a connection failure or socket
#: timeout (the server may be mid-restart), 503 is the fleet front end
#: briefly out of healthy workers (or draining — in which case the retry
#: fails the same way and the error propagates).
RETRYABLE_STATUSES = (0, 503)


class ServiceClient:
    """Typed access to the service endpoints.

    Parameters
    ----------
    base_url : str | Sequence[str]
        Server root, e.g. ``"http://127.0.0.1:8765"``.  An HA front-end
        *pair* is given as a sequence (or one comma-separated string) of
        roots; retryable failures rotate to the next address, so callers
        ride out a primary failover transparently (``/compile`` is
        content-hash idempotent — re-POSTing to the promoted standby is
        safe even when the first answer was lost in flight).
    timeout : float, optional
        Per-request socket timeout in seconds (connect *and* read): a hung
        or killed worker fails the request after ``timeout`` instead of
        stalling the caller forever.
    retries : int, optional
        Extra attempts after a retryable failure (connection refused/reset,
        socket timeout, HTTP 503).  ``/compile`` requests are content-hash
        idempotent, so re-POSTing after an ambiguous failure is safe.
    retry_backoff_seconds : float, optional
        Sleep before each retry (gives a crashed worker's supervisor a
        beat to re-route or restart).
    """

    def __init__(
        self,
        base_url,
        timeout: float = 120.0,
        retries: int = 0,
        retry_backoff_seconds: float = 0.25,
    ):
        if isinstance(base_url, str):
            urls = [part for part in base_url.split(",") if part.strip()]
        else:
            urls = list(base_url)
        if not urls:
            raise ValueError("base_url must name at least one server root")
        self.base_urls = [url.strip().rstrip("/") for url in urls]
        self._url_index = 0
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.retry_backoff_seconds = float(retry_backoff_seconds)

    # ------------------------------------------------------------------ #

    @property
    def base_url(self) -> str:
        """The address requests currently go to (rotates on failover)."""
        return self.base_urls[self._url_index]

    def _rotate(self) -> None:
        self._url_index = (self._url_index + 1) % len(self.base_urls)

    def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: dict | None = None,
    ) -> dict:
        """Issue one JSON request (with retries) and return the parsed body.

        Parameters
        ----------
        method : str
            ``"GET"`` or ``"POST"``.
        path : str
            Endpoint path, e.g. ``"/healthz"``.
        payload : dict | None, optional
            JSON body for POST requests.
        headers : dict | None, optional
            Extra request headers (e.g. ``X-Request-Id``).

        Returns
        -------
        dict
            The parsed JSON response.

        Raises
        ------
        ServiceError
            On any non-2xx response or connection failure, after
            :attr:`retries` extra attempts for retryable failures.  With a
            multi-address front-end list, each retryable failure also
            rotates to the next address.
        """
        attempts = self.retries + 1
        for attempt in range(attempts):
            try:
                # Headers passed positionally only when present, so tests
                # (and callers) that stub a 3-argument _request_once keep
                # working unchanged.
                if headers:
                    return self._request_once(method, path, payload, headers)
                return self._request_once(method, path, payload)
            except ServiceError as exc:
                last_try = attempt == attempts - 1
                if last_try or exc.status not in RETRYABLE_STATUSES:
                    raise
                if len(self.base_urls) > 1:
                    self._rotate()
                time.sleep(self.retry_backoff_seconds)
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_once(
        self,
        method: str,
        path: str,
        payload: dict | None,
        extra_headers: dict | None = None,
    ) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if extra_headers:
            headers.update(extra_headers)
        base_url = self.base_url
        request = urllib.request.Request(
            f"{base_url}{path}", data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read())
            except (ValueError, OSError):
                body = {}
            raise ServiceError(
                exc.code, str(body.get("error", exc.reason)), body
            ) from exc
        except (urllib.error.URLError, OSError, ValueError) as exc:
            raise ServiceError(0, f"cannot reach {base_url}: {exc}") from exc

    # ------------------------------------------------------------------ #

    def healthz(self) -> dict:
        """``GET /healthz``."""
        return self.request("GET", "/healthz")

    def compile(self, **job) -> dict:
        """``POST /compile`` with a flat job payload.

        Parameters
        ----------
        **job
            Job fields (``family``, ``size``, ``seed``, ``kind``, ...) as
            accepted by :meth:`repro.pipeline.jobs.BatchJob.from_dict`.

        Returns
        -------
        dict
            The outcome body; ``body["result"]`` holds the job record.
        """
        return self.request("POST", "/compile", job)

    def compile_payload(self, payload: dict, headers: dict | None = None) -> dict:
        """``POST /compile`` with an explicit payload dict."""
        return self.request("POST", "/compile", payload, headers=headers)

    def submit_batch(self, jobs: list[dict]) -> str:
        """``POST /batch``; returns the job id to poll."""
        return self.request("POST", "/batch", {"jobs": jobs})["job_id"]

    def status(self, job_id: str) -> dict:
        """``GET /status/<job>``."""
        return self.request("GET", f"/status/{job_id}")

    def wait_for_batch(
        self, job_id: str, timeout: float = 120.0, poll_seconds: float = 0.05
    ) -> dict:
        """Poll ``/status/<job>`` until the batch is done (or errored).

        Raises
        ------
        TimeoutError
            If the batch is still running after ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        while True:
            body = self.status(job_id)
            if body["status"] in ("done", "error"):
                return body
            if time.monotonic() > deadline:
                raise TimeoutError(f"batch {job_id} still {body['status']!r}")
            time.sleep(poll_seconds)

    def wait_until_ready(self, timeout: float = 10.0) -> dict:
        """Poll ``/healthz`` until the server answers (for fresh servers).

        Raises
        ------
        ServiceError
            If the server is still unreachable after ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except ServiceError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.05)
