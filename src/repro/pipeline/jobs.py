"""Declarative compilation jobs and the worker that executes them.

A :class:`BatchJob` is a frozen, picklable, JSON-serialisable description of
one compilation experiment.  Jobs never carry live objects (graphs, configs,
hardware models) — only the recipe to rebuild them — so they can cross
process boundaries cheaply and their SHA-256 content hash identifies the
result for caching.

Job kinds:

* ``"comparison"`` — compile with the framework *and* the GraphiQ-like
  baseline under identical hardware assumptions; record the three
  hardware-aware metrics (#emitter-emitter CNOTs, duration, photon loss) and
  the wall-clock time of each compiler.
* ``"compile"`` — framework only; record the full result summary.
* ``"duration"`` — the Fig. 10(d-f) primitive: framework under
  ``N_e^limit = factor * N_e^min``, baseline under the matching explicit
  emitter cap.
* ``"lc_stem_edges"`` — the Fig. 11(b) primitive: partition with and without
  the local-complementation budget and count stem edges.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path

from repro.graphs.generators import (
    benchmark_graph,
    complete_graph,
    erdos_renyi_graph,
    ghz_graph,
    linear_cluster,
    percolated_lattice,
    random_regular_graph,
    repeater_graph_state,
    ring_graph,
    rotated_surface_code_graph,
    star_graph,
    steane_code_graph,
    watts_strogatz_graph,
    waxman_graph,
)
from repro.core.ordering import ORDERING_STRATEGIES
from repro.graphs.graph_state import GraphState
from repro.graphs.lazy import STREAM_FAMILIES
from repro.hardware.models import get_hardware_model
from repro.utils.backend import BACKENDS
from repro.utils.faults import FaultPoint

__all__ = [
    "GraphSpec",
    "BatchJob",
    "JOB_KINDS",
    "run_job",
    "JournalEntry",
    "PendingJournal",
    "StaleEpochError",
    "fsync_dir",
]

#: Graph families a :class:`GraphSpec` can rebuild.
GRAPH_FAMILIES = (
    "lattice",
    "tree",
    "random",
    "waxman",
    "linear",
    "ring",
    "star",
    "complete",
    "repeater",
    # Scenario zoo (random topologies).
    "regular",
    "smallworld",
    "erdos",
    "percolated",
    # Scenario zoo (GHZ / QEC-flavoured states).
    "ghz",
    "steane",
    "surface",
)

JOB_KINDS = ("comparison", "compile", "duration", "lc_stem_edges")

#: Admission/scheduling priority classes carried on the wire.  ``high``
#: bypasses deadline admission control, ``normal`` is admitted when the
#: estimated queue wait fits the deadline, ``low`` is rejected earlier
#: (when the wait exceeds half the deadline).
PRIORITY_CLASSES = ("high", "normal", "low")

#: Bump when a change invalidates previously cached results (new metrics,
#: changed semantics of an existing job kind, …).  v2: first-class
#: ``ordering`` field (emission-ordering strategy) on every job.  v3: the
#: reduction engine emits leftover DISCONNECT operations in deterministic
#: sorted order (one-pass ``disconnect_all_emitter_edges``), which reorders
#: trailing CZ gates and the timing-derived metrics of affected circuits.
#: v4: per-leaf ordering searches run in canonical space with a
#: canonical-key-derived RNG (isomorphism-memoized subgraph compilation),
#: which changes the winning orders — and hence circuits/metrics — of
#: partitioned graphs.  v5: first-class ``deadline_ms``/``priority`` wire
#: fields; deadline-bounded compile/comparison jobs run through the anytime
#: portfolio compiler (:mod:`repro.core.portfolio`), which changes the
#: winning circuit whenever a later rung beats the natural baseline.
#: v6: first-class ``compile_timeout_s`` wire field (the per-request
#: watchdog bound enforced by service workers).  v7: first-class
#: ``stream``/``stream_chunk`` wire fields — streamed ``compile`` jobs run
#: :func:`repro.core.streaming.compile_stream` from a lazy generator spec
#: instead of materialising the graph (new fields change every content
#: hash, and streamed records carry window/memory stats instead of a
#: circuit summary).
JOB_SCHEMA_VERSION = 7


@dataclass(frozen=True)
class GraphSpec:
    """Recipe for one benchmark graph: ``(family, size, seed)``.

    Parameters
    ----------
    family : str
        One of :data:`GRAPH_FAMILIES`.  For ``"surface"`` the ``size`` is the
        code *distance* (odd, >= 3); for ``"steane"`` it must be 7 (the code
        is fixed); for ``"regular"`` the degree is 3 for even sizes and 4 for
        odd ones (so the degree sum stays even), requiring ``size >= 4``.
        Grid families (``"lattice"``, ``"percolated"``) round the size down
        to the closest ``rows x cols`` rectangle, so the built graph may have
        slightly fewer vertices than requested.
    size : int
        Target number of vertices (see the per-family caveats above).
    seed : int, optional
        RNG seed for the stochastic families; deterministic families ignore
        it (it still participates in the content hash).
    """

    family: str
    size: int
    seed: int = 11

    def __post_init__(self) -> None:
        if self.family not in GRAPH_FAMILIES:
            raise ValueError(
                f"unknown graph family {self.family!r}; expected one of "
                f"{GRAPH_FAMILIES}"
            )
        if self.size < 1:
            raise ValueError(f"size must be positive, got {self.size}")
        if self.family == "steane" and self.size != 7:
            raise ValueError("the Steane code graph has exactly 7 vertices")
        if self.family == "surface" and (self.size < 3 or self.size % 2 == 0):
            raise ValueError(
                f"surface size is the code distance (odd, >= 3), got {self.size}"
            )
        if self.family == "regular" and self.size < 4:
            raise ValueError("regular graphs need size >= 4")
        if self.family == "smallworld" and self.size < 3:
            raise ValueError("smallworld graphs need size >= 3")

    def build(self) -> GraphState:
        """Construct the graph exactly as the evaluation harness would."""
        if self.family in ("lattice", "tree", "random"):
            return benchmark_graph(self.family, self.size, seed=self.seed)
        if self.family == "waxman":
            return waxman_graph(self.size, seed=self.seed)
        if self.family == "linear":
            return linear_cluster(self.size)
        if self.family == "ring":
            return ring_graph(self.size)
        if self.family == "star":
            return star_graph(self.size)
        if self.family == "complete":
            return complete_graph(self.size)
        if self.family == "regular":
            degree = 3 if self.size % 2 == 0 else 4
            return random_regular_graph(self.size, degree=degree, seed=self.seed)
        if self.family == "smallworld":
            k = min(4, self.size - 1)
            return watts_strogatz_graph(self.size, k=max(2, k), seed=self.seed)
        if self.family == "erdos":
            return erdos_renyi_graph(self.size, seed=self.seed)
        if self.family == "percolated":
            import math

            rows = max(2, int(math.floor(math.sqrt(self.size))))
            cols = max(2, self.size // rows)
            return percolated_lattice(rows, cols, seed=self.seed)
        if self.family == "ghz":
            return ghz_graph(self.size)
        if self.family == "steane":
            return steane_code_graph()
        if self.family == "surface":
            return rotated_surface_code_graph(self.size)
        return repeater_graph_state(self.size)


@dataclass(frozen=True)
class BatchJob:
    """One unit of work for the batch pipeline.

    Parameters
    ----------
    graph : GraphSpec
        The target graph recipe.
    kind : str, optional
        One of :data:`JOB_KINDS`.
    emitter_limit_factor : float, optional
        The paper's ``N_e^limit / N_e^min`` knob.
    hardware : str, optional
        Hardware preset name (see
        :func:`repro.hardware.models.get_hardware_model`).
    backend : str | None, optional
        GF(2)/tableau backend pinned for this job (``None`` keeps the worker
        process default).
    ordering : str | None, optional
        Emission-ordering strategy (one of
        :data:`repro.core.ordering.ORDERING_STRATEGIES`); ``None`` keeps the
        compiler-config default (``"natural"``).
    verify : bool, optional
        Re-simulate compiled circuits on the stabilizer tableau.
    deadline_ms : float | None, optional
        Anytime deadline in milliseconds: ``compile``/``comparison`` jobs
        run the framework side through the portfolio compiler
        (:mod:`repro.core.portfolio`), returning the verified best-so-far
        at the deadline and recording a ``portfolio`` section.  The service
        additionally applies admission control against this deadline.
    priority : str, optional
        One of :data:`PRIORITY_CLASSES` (admission-control class).
    compile_timeout_s : float | None, optional
        Per-request wall-clock watchdog bound enforced by service workers:
        a compile that produces no outcome within this many seconds is
        answered with a structured timeout error (HTTP 504) instead of
        hanging the request.  ``None`` keeps the worker's configured
        default (``repro serve --compile-timeout-s``).
    stream : bool, optional
        Run the job through the streaming partition-compile pipeline
        (:func:`repro.core.streaming.compile_stream`): the graph is built
        region by region from a lazy generator spec and never materialised,
        so peak memory is bounded by the window, not the graph.  Only
        ``compile`` jobs of the streamable families
        (:data:`repro.graphs.lazy.STREAM_FAMILIES`) accept it; the record
        carries window/memory statistics instead of a circuit summary.
    stream_chunk : int | None, optional
        Region granularity for streamed jobs (rows per region for the
        lattice families, photons per region for GHZ).  ``None`` uses the
        compiler config's ``stream_chunk`` for the lattice families and the
        GHZ spec's own default.  Requires ``stream=True``.
    config_overrides : tuple[tuple[str, object], ...], optional
        Extra :class:`repro.core.config.CompilerConfig` fields applied on top
        of the fast benchmark profile, as a sorted tuple of ``(name, value)``
        pairs (kept hashable for caching).
    """

    graph: GraphSpec
    kind: str = "comparison"
    emitter_limit_factor: float = 1.5
    hardware: str = "quantum_dot"
    backend: str | None = None
    ordering: str | None = None
    verify: bool = False
    deadline_ms: float | None = None
    priority: str = "normal"
    compile_timeout_s: float | None = None
    stream: bool = False
    stream_chunk: int | None = None
    config_overrides: tuple[tuple[str, object], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {self.kind!r}; expected one of {JOB_KINDS}"
            )
        if self.deadline_ms is not None:
            if self.deadline_ms <= 0:
                raise ValueError(
                    f"deadline_ms must be > 0, got {self.deadline_ms}"
                )
            if self.kind not in ("comparison", "compile"):
                raise ValueError(
                    "deadline_ms only applies to 'comparison'/'compile' jobs, "
                    f"not {self.kind!r}"
                )
        if self.priority not in PRIORITY_CLASSES:
            raise ValueError(
                f"priority must be one of {PRIORITY_CLASSES}, "
                f"got {self.priority!r}"
            )
        if self.compile_timeout_s is not None and self.compile_timeout_s <= 0:
            raise ValueError(
                f"compile_timeout_s must be > 0, got {self.compile_timeout_s}"
            )
        if self.stream:
            if self.kind != "compile":
                raise ValueError(
                    f"stream=True only applies to 'compile' jobs, not {self.kind!r}"
                )
            if self.graph.family not in STREAM_FAMILIES:
                raise ValueError(
                    f"stream=True requires a streamable family "
                    f"{STREAM_FAMILIES}, got {self.graph.family!r}"
                )
            if self.deadline_ms is not None:
                raise ValueError(
                    "stream=True jobs do not support deadline_ms (the "
                    "streaming pipeline has no anytime portfolio)"
                )
        if self.stream_chunk is not None:
            if not self.stream:
                raise ValueError("stream_chunk requires stream=True")
            if self.stream_chunk < 1:
                raise ValueError(
                    f"stream_chunk must be >= 1, got {self.stream_chunk}"
                )
        if self.backend is not None and self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS} or None, got {self.backend!r}"
            )
        if self.ordering is not None and self.ordering not in ORDERING_STRATEGIES:
            raise ValueError(
                f"ordering must be one of {ORDERING_STRATEGIES} or None, "
                f"got {self.ordering!r}"
            )
        get_hardware_model(self.hardware)  # validate the preset name early
        object.__setattr__(
            self, "config_overrides", tuple(sorted(tuple(self.config_overrides)))
        )

    def with_overrides(self, **kwargs) -> "BatchJob":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def as_dict(self) -> dict:
        """JSON-serialisable description of the job (stable key order)."""
        data = asdict(self)
        data["config_overrides"] = [list(pair) for pair in self.config_overrides]
        data["schema_version"] = JOB_SCHEMA_VERSION
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "BatchJob":
        """Rebuild a job from its :meth:`as_dict` form (or any JSON payload).

        This is the wire format of the compilation service: the ``graph``
        entry may be a nested ``{"family", "size", "seed"}`` mapping, or the
        three keys may be given flat at the top level.  Unknown keys raise
        ``ValueError`` so that client typos fail loudly instead of silently
        compiling the wrong thing.

        Parameters
        ----------
        data : dict
            A job description, e.g. parsed from a JSON request body.

        Returns
        -------
        BatchJob
            The validated job (construction re-runs all field validation).
        """
        if not isinstance(data, dict):
            raise ValueError(f"job payload must be a mapping, got {type(data).__name__}")
        payload = dict(data)
        payload.pop("schema_version", None)
        graph = payload.pop("graph", None)
        if graph is None:
            graph = {
                key: payload.pop(key)
                for key in ("family", "size", "seed")
                if key in payload
            }
        if not isinstance(graph, dict) or "family" not in graph or "size" not in graph:
            raise ValueError(
                "job payload needs a graph: either {'graph': {'family', 'size', "
                "'seed'}} or flat 'family'/'size'/'seed' keys"
            )
        unknown_graph = set(graph) - {"family", "size", "seed"}
        if unknown_graph:
            raise ValueError(f"unknown graph keys: {sorted(unknown_graph)}")
        allowed = {
            "kind",
            "emitter_limit_factor",
            "hardware",
            "backend",
            "ordering",
            "verify",
            "deadline_ms",
            "priority",
            "compile_timeout_s",
            "stream",
            "stream_chunk",
            "config_overrides",
        }
        unknown = set(payload) - allowed
        if unknown:
            raise ValueError(f"unknown job keys: {sorted(unknown)}")
        overrides = payload.pop("config_overrides", ())
        if isinstance(overrides, dict):
            # The natural JSON-object encoding ({"field": value, ...}).
            overrides = sorted(overrides.items())
        try:
            overrides = tuple((str(name), value) for name, value in overrides)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                "config_overrides must be a mapping or a sequence of "
                "(name, value) pairs"
            ) from exc
        spec = GraphSpec(
            family=str(graph["family"]),
            size=int(graph["size"]),
            seed=int(graph.get("seed", 11)),
        )
        return cls(graph=spec, config_overrides=overrides, **payload)

    @property
    def content_hash(self) -> str:
        """SHA-256 over the canonical JSON description; the cache key."""
        canonical = json.dumps(self.as_dict(), sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @property
    def label(self) -> str:
        """Short human-readable identifier used in reports and tables."""
        base = (
            f"{self.kind}:{self.graph.family}-{self.graph.size}"
            f"@{self.emitter_limit_factor}x#{self.graph.seed}"
        )
        if self.ordering is not None:
            base += f"+{self.ordering}"
        if self.stream:
            base += "&stream"
        if self.deadline_ms is not None:
            base += f"~{self.deadline_ms:g}ms"
        if self.priority != "normal":
            base += f"!{self.priority}"
        return base


# --------------------------------------------------------------------------- #
# Worker
# --------------------------------------------------------------------------- #

#: Fires at the start of every job execution; ``crash``/``sleep`` rules
#: with a ``match`` on the job label simulate poison jobs and pathological
#: instances deterministically.
_FAULT_COMPILE = FaultPoint("compile.step")

#: Fires before the pending journal fsyncs an appended record.
_FAULT_FSYNC = FaultPoint("journal.fsync")


def _job_config(job: BatchJob):
    """The fast benchmark profile of the evaluation harness, plus overrides."""
    from repro.evaluation.experiments import fast_config

    config = fast_config(
        emitter_limit_factor=job.emitter_limit_factor,
        hardware=get_hardware_model(job.hardware),
        verify=job.verify,
    )
    overrides = dict(job.config_overrides)
    overrides.setdefault("gf2_backend", job.backend)
    if job.ordering is not None:
        overrides.setdefault("ordering_strategy", job.ordering)
    if job.deadline_ms is not None:
        overrides.setdefault("deadline_ms", job.deadline_ms)
    return config.with_overrides(**overrides)


def _timed_compile(compiler, graph) -> tuple[object, float]:
    start = time.perf_counter()
    result = compiler.compile(graph)
    return result, time.perf_counter() - start


def run_job(job: BatchJob) -> dict:
    """Execute one job and return its JSON-serialisable result record.

    This function is pure apart from wall-clock timing fields (prefixed
    ``seconds_``): the metric fields of the record are a deterministic
    function of the job description, which is what makes content-hash caching
    sound.  It is defined at module level so that
    :class:`concurrent.futures.ProcessPoolExecutor` can pickle it.
    """
    from repro.baseline.naive import BaselineCompiler
    from repro.core.compiler import EmitterCompiler
    from repro.core.partition import GraphPartitioner
    from repro.utils.backend import use_backend

    _FAULT_COMPILE.hit(context=job.label)
    if job.stream:
        # Streaming path: never materialise the graph — build the lazy spec
        # and walk it region by region.  The record carries window/memory
        # statistics instead of a circuit summary.
        from repro.core.streaming import compile_stream
        from repro.graphs.lazy import make_stream_spec

        config = _job_config(job)
        chunk = job.stream_chunk
        if chunk is None and job.graph.family != "ghz":
            chunk = config.stream_chunk
        spec = make_stream_spec(
            job.graph.family, job.graph.size, seed=job.graph.seed, chunk=chunk
        )
        with use_backend(config.gf2_backend):
            result = compile_stream(spec)
        return {
            "job": job.as_dict(),
            "label": job.label,
            "num_qubits": result.num_vertices,
            "num_edges": result.num_edges,
            "stream": {
                "family": result.family,
                "num_regions": result.num_regions,
                "window_capacity": result.window_capacity,
                "peak_window_photons": result.peak_window_photons,
                "num_emitters": result.num_emitters,
                "emitters_over_budget": result.emitters_over_budget,
                "num_operations": result.num_operations,
                "num_emissions": result.num_emissions,
                "num_emitter_emitter_gates": result.num_emitter_emitter_gates,
                "op_counts": result.op_counts,
            },
            "seconds_ours": result.elapsed_seconds,
        }

    graph = job.graph.build()
    config = _job_config(job)
    record: dict = {
        "job": job.as_dict(),
        "label": job.label,
        "num_qubits": graph.num_vertices,
        "num_edges": graph.num_edges,
    }

    if job.kind in ("comparison", "compile"):
        if config.deadline_ms is not None or config.portfolio_budget is not None:
            # Anytime path: race the portfolio rungs under the job's budget
            # and record the winner plus the full anytime provenance.
            from repro.core.portfolio import PortfolioCompiler

            portfolio = PortfolioCompiler(config).compile(
                graph, family=job.graph.family
            )
            ours = portfolio.result
            record["ours"] = ours.summary()
            record["seconds_ours"] = portfolio.elapsed_seconds
            record["portfolio"] = portfolio.as_record()
        else:
            ours, ours_seconds = _timed_compile(EmitterCompiler(config), graph)
            record["ours"] = ours.summary()
            record["seconds_ours"] = ours_seconds
        if job.kind == "comparison":
            with use_backend(config.gf2_backend):
                baseline, baseline_seconds = _timed_compile(
                    BaselineCompiler(hardware=config.hardware, verify=job.verify),
                    graph,
                )
            record["baseline"] = baseline.metrics.as_dict()
            record["seconds_baseline"] = baseline_seconds
        return record

    if job.kind == "duration":
        import math

        ours, ours_seconds = _timed_compile(EmitterCompiler(config), graph)
        baseline_limit = max(
            1, math.ceil(job.emitter_limit_factor * ours.minimum_emitters)
        )
        with use_backend(config.gf2_backend):
            baseline, baseline_seconds = _timed_compile(
                BaselineCompiler(
                    hardware=config.hardware, emitter_limit=baseline_limit
                ),
                graph,
            )
        record["ours"] = ours.summary()
        record["baseline"] = baseline.metrics.as_dict()
        record["baseline_emitter_limit"] = baseline_limit
        record["seconds_ours"] = ours_seconds
        record["seconds_baseline"] = baseline_seconds
        return record

    # kind == "lc_stem_edges"
    with use_backend(config.gf2_backend):
        start = time.perf_counter()
        without_lc = GraphPartitioner(config.with_overrides(lc_budget=0)).partition(
            graph
        )
        with_lc = GraphPartitioner(config).partition(graph)
        elapsed = time.perf_counter() - start
    record["stem_edges_no_lc"] = without_lc.num_stem_edges
    record["stem_edges_with_lc"] = with_lc.num_stem_edges
    record["stem_edge_reduction"] = (
        without_lc.num_stem_edges - with_lc.num_stem_edges
    )
    record["seconds_partition"] = elapsed
    return record


# --------------------------------------------------------------------------- #
# Pending-queue journal
# --------------------------------------------------------------------------- #

#: Bump when the journal line format changes incompatibly.
JOURNAL_SCHEMA_VERSION = 1


class StaleEpochError(RuntimeError):
    """A write carried an epoch older than the journal's fenced minimum.

    Raised by :meth:`PendingJournal.append_replica` (and surfaced by the
    replication acceptor) when a deposed primary keeps streaming records
    after a standby promoted with a higher epoch.  The write is rejected
    so a split brain can never corrupt the replica journal.
    """

    def __init__(self, epoch: int, min_epoch: int):
        super().__init__(
            f"stale epoch {epoch} rejected (fence requires >= {min_epoch})"
        )
        self.epoch = epoch
        self.min_epoch = min_epoch


def fsync_dir(path: str | Path) -> None:
    """fsync a directory so a just-renamed entry survives a crash.

    ``os.replace`` makes the rename atomic but not durable: on some
    filesystems the *directory entry* itself is only persisted once the
    parent directory is fsynced.  Best-effort on platforms whose
    directories cannot be opened for reading (e.g. Windows).
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@dataclass
class JournalEntry:
    """One accepted-but-unfinished request recovered from a journal.

    Parameters
    ----------
    request_id : str
        The front end's request id (also the JSON-log correlation id).
    payload : dict
        The raw job payload, replayable through
        :meth:`BatchJob.from_dict`.
    content_hash : str
        The job's content hash at accept time (routing/cache key).
    attempts : int, optional
        Dispatch attempts recorded before the crash.
    """

    request_id: str
    payload: dict
    content_hash: str
    attempts: int = 0


class PendingJournal:
    """Append-only JSONL journal of accepted compile requests.

    The fleet front end (:mod:`repro.service.fleet`) writes one ``pending``
    line when it accepts a request and one ``done``/``failed`` line when the
    request finishes, flushing after every line.  If the process is killed
    mid-batch, :meth:`load_unfinished` recovers every request that was
    accepted but never completed, and the next fleet start replays them into
    the shared result cache so no accepted work is lost.

    Lines are self-describing JSON objects::

        {"op": "pending", "request_id": ..., "payload": {...},
         "content_hash": ..., "schema_version": 1}
        {"op": "attempt", "request_id": ..., "worker": 2}
        {"op": "done", "request_id": ...}
        {"op": "failed", "request_id": ..., "error": "..."}
        {"op": "poisoned", "request_id": ..., "attempts": 3, "error": "..."}

    A torn final line (the writer died mid-``write``) is tolerated and
    ignored on load.  ``failed`` marks *terminal* client-side errors
    (malformed payloads) that must not be replayed; ``poisoned`` marks
    requests quarantined after crashing ``max_job_attempts`` workers —
    also terminal, also never replayed.  ``attempt`` lines make the
    attempt count *authoritative across restarts*: replay resumes a
    request at its recorded attempt count, and :meth:`compact` carries
    the count forward on the rewritten ``pending`` line.

    Parameters
    ----------
    path : str | Path
        Journal file location; parent directories are created on demand.
    mirror : callable, optional
        Called with every record *after* the local fsync and before the
        append returns.  The HA primary installs the replication link's
        send here, so an acknowledged request is durable on both peers
        before the client ever sees a 200.  Exceptions propagate to the
        writer (a fenced primary must fail the request, not hide it).
    """

    def __init__(self, path: str | Path, mirror=None):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._handle = None
        self._mirror = mirror
        self._epoch = 0
        self._min_epoch = 0

    # ------------------------------------------------------------------ #

    def set_epoch(self, epoch: int) -> None:
        """Stamp every subsequent record with the leadership ``epoch``."""
        self._epoch = int(epoch)

    def set_mirror(self, mirror) -> None:
        """Install (or clear) the synchronous replication hook."""
        self._mirror = mirror

    def fence(self, min_epoch: int) -> None:
        """Reject subsequent replica appends below ``min_epoch``."""
        self._min_epoch = max(self._min_epoch, int(min_epoch))

    def _append(self, record: dict) -> None:
        if self._epoch and "epoch" not in record:
            record["epoch"] = self._epoch
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()
            _FAULT_FSYNC.hit(context=str(record.get("op", "")))
            os.fsync(self._handle.fileno())
            if self._mirror is not None:
                self._mirror(record)

    def append_replica(self, record: dict) -> None:
        """Append one replicated record received from the primary.

        Raises
        ------
        StaleEpochError
            If the record's epoch is below the fence set by
            :meth:`fence` (split-brain protection after promotion).
        """
        epoch = int(record.get("epoch", 0))
        if epoch < self._min_epoch:
            raise StaleEpochError(epoch, self._min_epoch)
        self._append(dict(record))

    def record_pending(
        self, request_id: str, payload: dict, content_hash: str, attempts: int = 0
    ) -> None:
        """Journal the acceptance of one request (before dispatch).

        ``attempts`` carries a previously recorded attempt count forward
        (compaction and replay-of-replay); fresh requests leave it at 0.
        """
        record = {
            "op": "pending",
            "request_id": request_id,
            "payload": payload,
            "content_hash": content_hash,
            "schema_version": JOURNAL_SCHEMA_VERSION,
        }
        if attempts:
            record["attempts"] = attempts
        self._append(record)

    def record_attempt(self, request_id: str, worker: int) -> None:
        """Journal one dispatch attempt (so replay knows the attempt count)."""
        self._append({"op": "attempt", "request_id": request_id, "worker": worker})

    def record_done(self, request_id: str) -> None:
        """Journal the successful completion of a request."""
        self._append({"op": "done", "request_id": request_id})

    def record_failed(self, request_id: str, error: str) -> None:
        """Journal a *terminal* failure (bad payload — never replayed)."""
        self._append({"op": "failed", "request_id": request_id, "error": error})

    def record_poisoned(self, request_id: str, attempts: int, error: str) -> None:
        """Journal a poison-job quarantine (terminal — never replayed)."""
        self._append(
            {
                "op": "poisoned",
                "request_id": request_id,
                "attempts": attempts,
                "error": error,
            }
        )

    def close(self) -> None:
        """Close the underlying file handle (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    # ------------------------------------------------------------------ #

    @staticmethod
    def load_unfinished(path: str | Path) -> list[JournalEntry]:
        """Replay a journal file and return the entries still unfinished.

        Parameters
        ----------
        path : str | Path
            Journal file; a missing file yields an empty list.

        Returns
        -------
        list[JournalEntry]
            Accepted requests with neither a ``done`` nor a ``failed`` line,
            in acceptance order.
        """
        path = Path(path)
        if not path.exists():
            return []
        pending: dict[str, JournalEntry] = {}
        with path.open("r", encoding="utf-8") as handle:
            for raw in handle:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    record = json.loads(raw)
                except ValueError:
                    # Torn tail line from a killed writer; everything before
                    # it was flushed line-by-line, so just stop here.
                    break
                op = record.get("op")
                request_id = record.get("request_id")
                if not request_id:
                    continue
                if op == "pending":
                    pending[request_id] = JournalEntry(
                        request_id=request_id,
                        payload=record.get("payload") or {},
                        content_hash=str(record.get("content_hash", "")),
                        attempts=int(record.get("attempts", 0)),
                    )
                elif op == "attempt" and request_id in pending:
                    pending[request_id].attempts += 1
                elif op in ("done", "failed", "poisoned"):
                    pending.pop(request_id, None)
        return list(pending.values())

    def compact(self) -> int:
        """Rewrite the journal keeping only unfinished entries.

        Attempt counts are carried forward on the rewritten ``pending``
        lines, so compaction never resets a request's quarantine budget.

        Returns
        -------
        int
            Number of unfinished entries kept.
        """
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            unfinished = PendingJournal.load_unfinished(self.path)
            temp = self.path.with_suffix(self.path.suffix + ".compact")
            with temp.open("w", encoding="utf-8") as handle:
                for entry in unfinished:
                    record = {
                        "op": "pending",
                        "request_id": entry.request_id,
                        "payload": entry.payload,
                        "content_hash": entry.content_hash,
                        "schema_version": JOURNAL_SCHEMA_VERSION,
                    }
                    if entry.attempts:
                        record["attempts"] = entry.attempts
                    handle.write(
                        json.dumps(record, sort_keys=True, default=str) + "\n"
                    )
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp, self.path)
            # The rename is atomic but only durable once the parent
            # directory entry is persisted; without this a crash right
            # after compaction can resurrect the pre-compaction journal.
            fsync_dir(self.path.parent)
        return len(unfinished)
