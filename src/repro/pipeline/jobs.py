"""Declarative compilation jobs and the worker that executes them.

A :class:`BatchJob` is a frozen, picklable, JSON-serialisable description of
one compilation experiment.  Jobs never carry live objects (graphs, configs,
hardware models) — only the recipe to rebuild them — so they can cross
process boundaries cheaply and their SHA-256 content hash identifies the
result for caching.

Job kinds:

* ``"comparison"`` — compile with the framework *and* the GraphiQ-like
  baseline under identical hardware assumptions; record the three
  hardware-aware metrics (#emitter-emitter CNOTs, duration, photon loss) and
  the wall-clock time of each compiler.
* ``"compile"`` — framework only; record the full result summary.
* ``"duration"`` — the Fig. 10(d-f) primitive: framework under
  ``N_e^limit = factor * N_e^min``, baseline under the matching explicit
  emitter cap.
* ``"lc_stem_edges"`` — the Fig. 11(b) primitive: partition with and without
  the local-complementation budget and count stem edges.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field, replace

from repro.graphs.generators import (
    benchmark_graph,
    complete_graph,
    linear_cluster,
    repeater_graph_state,
    ring_graph,
    star_graph,
    waxman_graph,
)
from repro.graphs.graph_state import GraphState
from repro.hardware.models import get_hardware_model
from repro.utils.backend import BACKENDS

__all__ = ["GraphSpec", "BatchJob", "JOB_KINDS", "run_job"]

#: Graph families a :class:`GraphSpec` can rebuild.
GRAPH_FAMILIES = (
    "lattice",
    "tree",
    "random",
    "waxman",
    "linear",
    "ring",
    "star",
    "complete",
    "repeater",
)

JOB_KINDS = ("comparison", "compile", "duration", "lc_stem_edges")

#: Bump when a change invalidates previously cached results (new metrics,
#: changed semantics of an existing job kind, …).
JOB_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class GraphSpec:
    """Recipe for one benchmark graph: ``(family, size, seed)``."""

    family: str
    size: int
    seed: int = 11

    def __post_init__(self) -> None:
        if self.family not in GRAPH_FAMILIES:
            raise ValueError(
                f"unknown graph family {self.family!r}; expected one of "
                f"{GRAPH_FAMILIES}"
            )
        if self.size < 1:
            raise ValueError(f"size must be positive, got {self.size}")

    def build(self) -> GraphState:
        """Construct the graph exactly as the evaluation harness would."""
        if self.family in ("lattice", "tree", "random"):
            return benchmark_graph(self.family, self.size, seed=self.seed)
        if self.family == "waxman":
            return waxman_graph(self.size, seed=self.seed)
        if self.family == "linear":
            return linear_cluster(self.size)
        if self.family == "ring":
            return ring_graph(self.size)
        if self.family == "star":
            return star_graph(self.size)
        if self.family == "complete":
            return complete_graph(self.size)
        return repeater_graph_state(self.size)


@dataclass(frozen=True)
class BatchJob:
    """One unit of work for the batch pipeline.

    Attributes:
        graph: the target graph recipe.
        kind: one of :data:`JOB_KINDS`.
        emitter_limit_factor: the paper's ``N_e^limit / N_e^min`` knob.
        hardware: hardware preset name (see
            :func:`repro.hardware.models.get_hardware_model`).
        backend: GF(2)/tableau backend pinned for this job (``None`` keeps
            the worker process default).
        verify: re-simulate compiled circuits on the stabilizer tableau.
        config_overrides: extra :class:`repro.core.config.CompilerConfig`
            fields applied on top of the fast benchmark profile, as a sorted
            tuple of ``(name, value)`` pairs (kept hashable for caching).
    """

    graph: GraphSpec
    kind: str = "comparison"
    emitter_limit_factor: float = 1.5
    hardware: str = "quantum_dot"
    backend: str | None = None
    verify: bool = False
    config_overrides: tuple[tuple[str, object], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {self.kind!r}; expected one of {JOB_KINDS}"
            )
        if self.backend is not None and self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS} or None, got {self.backend!r}"
            )
        get_hardware_model(self.hardware)  # validate the preset name early
        object.__setattr__(
            self, "config_overrides", tuple(sorted(tuple(self.config_overrides)))
        )

    def with_overrides(self, **kwargs) -> "BatchJob":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def as_dict(self) -> dict:
        """JSON-serialisable description of the job (stable key order)."""
        data = asdict(self)
        data["config_overrides"] = [list(pair) for pair in self.config_overrides]
        data["schema_version"] = JOB_SCHEMA_VERSION
        return data

    @property
    def content_hash(self) -> str:
        """SHA-256 over the canonical JSON description; the cache key."""
        canonical = json.dumps(self.as_dict(), sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @property
    def label(self) -> str:
        """Short human-readable identifier used in reports and tables."""
        return (
            f"{self.kind}:{self.graph.family}-{self.graph.size}"
            f"@{self.emitter_limit_factor}x#{self.graph.seed}"
        )


# --------------------------------------------------------------------------- #
# Worker
# --------------------------------------------------------------------------- #


def _job_config(job: BatchJob):
    """The fast benchmark profile of the evaluation harness, plus overrides."""
    from repro.evaluation.experiments import fast_config

    config = fast_config(
        emitter_limit_factor=job.emitter_limit_factor,
        hardware=get_hardware_model(job.hardware),
        verify=job.verify,
    )
    overrides = dict(job.config_overrides)
    overrides.setdefault("gf2_backend", job.backend)
    return config.with_overrides(**overrides)


def _timed_compile(compiler, graph) -> tuple[object, float]:
    start = time.perf_counter()
    result = compiler.compile(graph)
    return result, time.perf_counter() - start


def run_job(job: BatchJob) -> dict:
    """Execute one job and return its JSON-serialisable result record.

    This function is pure apart from wall-clock timing fields (prefixed
    ``seconds_``): the metric fields of the record are a deterministic
    function of the job description, which is what makes content-hash caching
    sound.  It is defined at module level so that
    :class:`concurrent.futures.ProcessPoolExecutor` can pickle it.
    """
    from repro.baseline.naive import BaselineCompiler
    from repro.core.compiler import EmitterCompiler
    from repro.core.partition import GraphPartitioner
    from repro.utils.backend import use_backend

    graph = job.graph.build()
    config = _job_config(job)
    record: dict = {
        "job": job.as_dict(),
        "label": job.label,
        "num_qubits": graph.num_vertices,
        "num_edges": graph.num_edges,
    }

    if job.kind in ("comparison", "compile"):
        ours, ours_seconds = _timed_compile(EmitterCompiler(config), graph)
        record["ours"] = ours.summary()
        record["seconds_ours"] = ours_seconds
        if job.kind == "comparison":
            with use_backend(config.gf2_backend):
                baseline, baseline_seconds = _timed_compile(
                    BaselineCompiler(hardware=config.hardware, verify=job.verify),
                    graph,
                )
            record["baseline"] = baseline.metrics.as_dict()
            record["seconds_baseline"] = baseline_seconds
        return record

    if job.kind == "duration":
        import math

        ours, ours_seconds = _timed_compile(EmitterCompiler(config), graph)
        baseline_limit = max(
            1, math.ceil(job.emitter_limit_factor * ours.minimum_emitters)
        )
        with use_backend(config.gf2_backend):
            baseline, baseline_seconds = _timed_compile(
                BaselineCompiler(
                    hardware=config.hardware, emitter_limit=baseline_limit
                ),
                graph,
            )
        record["ours"] = ours.summary()
        record["baseline"] = baseline.metrics.as_dict()
        record["baseline_emitter_limit"] = baseline_limit
        record["seconds_ours"] = ours_seconds
        record["seconds_baseline"] = baseline_seconds
        return record

    # kind == "lc_stem_edges"
    with use_backend(config.gf2_backend):
        start = time.perf_counter()
        without_lc = GraphPartitioner(config.with_overrides(lc_budget=0)).partition(
            graph
        )
        with_lc = GraphPartitioner(config).partition(graph)
        elapsed = time.perf_counter() - start
    record["stem_edges_no_lc"] = without_lc.num_stem_edges
    record["stem_edges_with_lc"] = with_lc.num_stem_edges
    record["stem_edge_reduction"] = (
        without_lc.num_stem_edges - with_lc.num_stem_edges
    )
    record["seconds_partition"] = elapsed
    return record
