"""The batch runner: fan jobs across processes, cache results, keep metrics.

:class:`BatchRunner` executes a list of :class:`repro.pipeline.jobs.BatchJob`
descriptions and returns a :class:`BatchReport`:

* with ``max_workers=1`` (the default) jobs run serially in-process, which is
  deterministic, picklable-free and what the figure sweeps use under pytest;
* with ``max_workers>1`` uncached jobs are dispatched to a
  :class:`concurrent.futures.ProcessPoolExecutor`, one future per job, and
  results are reassembled in submission order;
* a :class:`repro.pipeline.cache.ResultCache` (enabled by passing
  ``cache_dir``) is consulted before any work is dispatched and updated with
  every fresh result, so a repeated sweep only pays for jobs it has not seen.

A failing job never takes the batch down: its exception is captured in the
corresponding :class:`JobOutcome` and the remaining jobs keep running.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.pipeline.cache import ResultCache
from repro.pipeline.jobs import BatchJob, run_job

__all__ = ["BatchReport", "BatchRunner", "JobOutcome"]


@dataclass
class JobOutcome:
    """What happened to one job of a batch.

    ``cache_hit`` means the result came from the persistent cache;
    ``coalesced`` means the job was an in-batch duplicate answered by
    another job's fresh execution.  Both flavours cost no compilation, but
    only ``cache_hit`` implies a configured cache.  ``error_kind``
    classifies machine-readable failures (currently only ``"timeout"``,
    set by the service watchdog) so transports can map them to statuses.
    """

    job: BatchJob
    result: dict | None
    error: str | None = None
    error_kind: str | None = None
    cache_hit: bool = False
    coalesced: bool = False
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None


@dataclass
class BatchReport:
    """Outcomes of one :meth:`BatchRunner.run` call, in submission order."""

    outcomes: list[JobOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def num_jobs(self) -> int:
        return len(self.outcomes)

    @property
    def num_cache_hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cache_hit)

    @property
    def num_coalesced(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.coalesced)

    @property
    def num_errors(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.error is not None)

    @property
    def results(self) -> list[dict | None]:
        """Per-job result records (``None`` where the job failed)."""
        return [outcome.result for outcome in self.outcomes]

    def summary(self) -> dict:
        """Aggregate numbers for logs, tables and the CLI."""
        compute_seconds = sum(
            outcome.elapsed_seconds
            for outcome in self.outcomes
            if not outcome.cache_hit
        )
        return {
            "num_jobs": self.num_jobs,
            "num_cache_hits": self.num_cache_hits,
            "num_coalesced": self.num_coalesced,
            "num_errors": self.num_errors,
            "wall_seconds": self.wall_seconds,
            "compute_seconds": compute_seconds,
        }

    def raise_first_error(self) -> None:
        """Re-raise the first captured job failure (no-op on a clean batch)."""
        for outcome in self.outcomes:
            if outcome.error is not None:
                raise RuntimeError(
                    f"job {outcome.job.label} failed: {outcome.error}"
                )


class BatchRunner:
    """Execute batches of compilation jobs, optionally parallel and cached.

    Parameters
    ----------
    max_workers : int, optional
        Process-pool width; ``1`` runs serially in-process.
    cache_dir : str | Path | None, optional
        Directory for the content-hash result cache; ``None`` disables
        caching.
    """

    def __init__(
        self,
        max_workers: int = 1,
        cache_dir: str | Path | None = None,
    ):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = int(max_workers)
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        # The process pool is created on first parallel use and reused across
        # run() calls: long-running callers (the compilation service) would
        # otherwise pay a full executor spawn per micro-batch.  The lock
        # serialises create/discard against concurrent run() callers (the
        # service drives one runner from two threads).
        self._pool: ProcessPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def close(self) -> None:
        """Shut down the reusable process pool, if one was created."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None

    def _get_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            return self._pool

    def _discard_pool(self, pool: ProcessPoolExecutor) -> None:
        """Retire a broken executor (only if it is still the current one)."""
        with self._pool_lock:
            if self._pool is pool:
                pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None

    # ------------------------------------------------------------------ #

    def run(self, jobs: Sequence[BatchJob]) -> BatchReport:
        """Run ``jobs`` and return their outcomes in submission order.

        Identical jobs within one batch (same content hash) are coalesced:
        the job is executed once and every duplicate shares the outcome with
        its ``coalesced`` flag set (``cache_hit`` stays reserved for the
        persistent cache).  This is what makes micro-batched concurrent
        requests for the same graph — the service's hottest pattern — cost a
        single compilation even on a cold cache.
        """
        started = time.perf_counter()
        outcomes: list[JobOutcome | None] = [None] * len(jobs)

        pending: list[tuple[int, BatchJob]] = []
        duplicates: list[tuple[int, int]] = []  # (job index, position in pending)
        first_position: dict[str, int] = {}
        for index, job in enumerate(jobs):
            key = job.content_hash
            if key in first_position:
                duplicates.append((index, first_position[key]))
                continue
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                outcomes[index] = JobOutcome(job=job, result=cached, cache_hit=True)
            else:
                first_position[key] = len(pending)
                pending.append((index, job))

        fresh: list[JobOutcome] = []
        if pending:
            if self.max_workers == 1 or len(pending) == 1:
                fresh = [self._run_one(job) for _, job in pending]
            else:
                fresh = self._run_pool([job for _, job in pending])
            for (index, job), outcome in zip(pending, fresh):
                outcomes[index] = outcome
                if self.cache is not None and outcome.ok:
                    self.cache.put(job.content_hash, outcome.result)

        # Duplicates can only reference pending (to-be-run) jobs: when the
        # first occurrence was itself a cache hit, later occurrences take the
        # cache path above instead of registering as duplicates.
        for index, position in duplicates:
            primary = fresh[position]
            outcomes[index] = JobOutcome(
                job=jobs[index],
                result=primary.result,
                error=primary.error,
                coalesced=primary.error is None,
                elapsed_seconds=0.0,
            )

        report = BatchReport(
            outcomes=[outcome for outcome in outcomes if outcome is not None]
        )
        report.wall_seconds = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------ #

    @staticmethod
    def _run_one(job: BatchJob) -> JobOutcome:
        start = time.perf_counter()
        try:
            result = run_job(job)
        except Exception as exc:  # noqa: BLE001 - captured per job by design
            return JobOutcome(
                job=job,
                result=None,
                error=f"{type(exc).__name__}: {exc}",
                elapsed_seconds=time.perf_counter() - start,
            )
        return JobOutcome(
            job=job, result=result, elapsed_seconds=time.perf_counter() - start
        )

    def _run_pool(self, jobs: list[BatchJob]) -> list[JobOutcome]:
        pool = self._get_pool()
        outcomes: list[JobOutcome | None] = [None] * len(jobs)
        broken = False
        futures = {pool.submit(run_job, job): i for i, job in enumerate(jobs)}
        for future, index in futures.items():
            job = jobs[index]
            try:
                result = future.result()
            except BrokenProcessPool as exc:
                broken = True
                outcomes[index] = JobOutcome(
                    job=job, result=None, error=f"{type(exc).__name__}: {exc}"
                )
                continue
            except Exception as exc:  # noqa: BLE001 - captured per job
                outcomes[index] = JobOutcome(
                    job=job, result=None, error=f"{type(exc).__name__}: {exc}"
                )
                continue
            # The in-worker timings are the honest per-job cost; waiting
            # on the future here mostly measures the other jobs.
            elapsed = sum(
                value
                for key, value in result.items()
                if key.startswith("seconds_") and isinstance(value, (int, float))
            )
            outcomes[index] = JobOutcome(
                job=job, result=result, elapsed_seconds=elapsed
            )
        if broken:
            # A crashed worker poisons the whole executor; discard it so the
            # next run() starts from a fresh pool instead of failing forever.
            self._discard_pool(pool)
        return [outcome for outcome in outcomes if outcome is not None]
