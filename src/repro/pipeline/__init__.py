"""Batch-compilation pipeline.

The evaluation harness — and anyone sweeping compiler configurations at
scale — always runs the same primitive many times: *build a benchmark graph,
compile it (framework and/or baseline), collect metrics*.  This subpackage
turns that primitive into declarative, picklable job descriptions and runs
lists of them through a process pool with content-addressed result caching:

* :mod:`repro.pipeline.jobs` — :class:`GraphSpec` / :class:`BatchJob`
  descriptions plus the pure worker function :func:`run_job`;
* :mod:`repro.pipeline.cache` — a JSON file cache keyed by the SHA-256 hash
  of the job description, so re-running a sweep only pays for new jobs;
* :mod:`repro.pipeline.runner` — :class:`BatchRunner`, which fans jobs across
  a :class:`concurrent.futures.ProcessPoolExecutor` (or runs them serially)
  and returns a :class:`BatchReport` with per-job metrics, cache-hit counts
  and error capture.

The figure sweeps in :mod:`repro.evaluation.figures` are built on this
pipeline, and the ``repro batch`` CLI subcommand exposes it directly.
"""

from repro.pipeline.cache import ResultCache
from repro.pipeline.jobs import BatchJob, GraphSpec, run_job
from repro.pipeline.runner import BatchReport, BatchRunner, JobOutcome

__all__ = [
    "BatchJob",
    "BatchReport",
    "BatchRunner",
    "GraphSpec",
    "JobOutcome",
    "ResultCache",
    "run_job",
]
