"""Content-addressed JSON result cache for batch jobs.

Each cached entry is one JSON file named after the job's SHA-256 content
hash.  The cache is deliberately dumb — no locking, no eviction — because
entries are immutable (a key never maps to two different results, by
construction of the content hash) and writes are atomic (``os.replace`` of a
temp file), so concurrent workers can only ever race to write identical
bytes.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

__all__ = ["ResultCache"]


class ResultCache:
    """A directory of ``<content-hash>.json`` job results.

    Parameters
    ----------
    cache_dir : str | Path
        Directory to store entries in (created on first write).

    Attributes
    ----------
    hits : int
        Number of successful :meth:`get` lookups.
    misses : int
        Number of :meth:`get` lookups that found nothing.
    """

    def __init__(self, cache_dir: str | Path):
        self.cache_dir = Path(cache_dir)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        if not key or any(ch in key for ch in "/\\"):
            raise ValueError(f"invalid cache key {key!r}")
        return self.cache_dir / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """Return the cached result for ``key``, or ``None``.

        Unreadable or corrupt entries count as misses (and are left in place
        for post-mortem inspection; the pipeline simply recomputes them).
        """
        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
            result = entry["result"]
        except (OSError, ValueError, KeyError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: dict) -> None:
        """Store ``result`` under ``key`` atomically."""
        path = self._path(key)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        payload = json.dumps({"key": key, "result": result}, sort_keys=True)
        fd, temp_name = tempfile.mkstemp(
            dir=self.cache_dir, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        if not self.cache_dir.is_dir():
            return 0
        # "[!.]*" keeps orphaned ".tmp-*" files (from killed writers) out of
        # the count; pathlib's glob, unlike the shell's, matches dotfiles.
        return sum(1 for _ in self.cache_dir.glob("[!.]*.json"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache(dir={str(self.cache_dir)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
