"""Content-addressed JSON result cache for batch jobs.

Each cached entry is one JSON file named after the job's SHA-256 content
hash.  The cache is deliberately dumb — no locking, no eviction — because
entries are immutable (a key never maps to two different results, by
construction of the content hash) and writes are atomic (``os.replace`` of a
temp file), so concurrent workers can only ever race to write identical
bytes.

Two hardening layers sit on top of that simplicity:

* **Corruption safety** — every entry carries a SHA-256 checksum of its
  result payload, verified on read.  An entry that fails to parse or to
  verify is *quarantined* (moved to ``<cache>/corrupt/``) with a
  structured log event and counted in :meth:`ResultCache.stats`, so a
  bit-flipped file can neither be served as a circuit nor silently miss
  forever.
* **A disk circuit breaker** — after ``breaker_threshold`` *consecutive*
  I/O failures the cache stops touching the disk entirely (reads miss,
  writes are skipped) until ``breaker_cooldown_seconds`` elapse, then
  lets a single half-open probe through.  A dying disk degrades the
  service to memory-only instead of adding one error per request.

Disk I/O is wrapped in the ``disk_cache.read`` / ``disk_cache.write``
fault points (:mod:`repro.utils.faults`), so every failure mode above is
deterministically injectable in tests and CI.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from pathlib import Path

from repro.utils.faults import FaultPoint

__all__ = ["DiskCircuitBreaker", "ResultCache"]

_FAULT_READ = FaultPoint("disk_cache.read")
_FAULT_WRITE = FaultPoint("disk_cache.write")


def _log_event(event: str, **fields) -> None:
    # Lazy import: the pipeline layer must not hard-depend on the service
    # layer at import time (metrics itself is stdlib-only).
    from repro.service.metrics import log_event

    log_event(event, **fields)


def result_checksum(result: dict) -> str:
    """SHA-256 over the canonical JSON encoding of a result payload."""
    canonical = json.dumps(result, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class DiskCircuitBreaker:
    """Consecutive-failure breaker with a half-open probe.

    States: ``closed`` (normal), ``open`` (disk bypassed until the
    cooldown expires), ``half_open`` (exactly one probe in flight; its
    outcome closes or re-opens the breaker).

    Parameters
    ----------
    threshold : int
        Consecutive failures that trip the breaker open.
    cooldown_seconds : float
        How long the breaker stays open before allowing a probe.
    """

    def __init__(self, threshold: int = 5, cooldown_seconds: float = 30.0):
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        if cooldown_seconds <= 0:
            raise ValueError("breaker cooldown must be > 0")
        self.threshold = threshold
        self.cooldown_seconds = cooldown_seconds
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._open_until = 0.0
        self.opens = 0

    @property
    def state(self) -> str:
        """Current state: ``closed``, ``open`` or ``half_open``."""
        with self._lock:
            return self._state

    @property
    def is_open(self) -> bool:
        """Whether disk traffic is currently being bypassed."""
        return self.state != "closed"

    def allow(self) -> bool:
        """Whether the caller may touch the disk right now."""
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open" and time.monotonic() >= self._open_until:
                # One probe: further calls see half_open and are refused
                # until the probe reports success or failure.
                self._state = "half_open"
                return True
            return False

    def record_success(self) -> None:
        """Note a successful disk operation: close the breaker."""
        with self._lock:
            self._consecutive_failures = 0
            self._state = "closed"

    def record_failure(self) -> None:
        """Note a failed disk operation; may trip the breaker open."""
        with self._lock:
            self._consecutive_failures += 1
            tripped = (
                self._state == "half_open"
                or self._consecutive_failures >= self.threshold
            )
            if tripped and self._state != "open":
                self._state = "open"
                self._open_until = time.monotonic() + self.cooldown_seconds
                self.opens += 1

    def snapshot(self) -> dict:
        """Observability view for ``/healthz``."""
        with self._lock:
            return {
                "state": self._state,
                "open": self._state != "closed",
                "opens": self.opens,
                "consecutive_failures": self._consecutive_failures,
                "threshold": self.threshold,
                "cooldown_seconds": self.cooldown_seconds,
            }


class ResultCache:
    """A directory of checksummed ``<content-hash>.json`` job results.

    Parameters
    ----------
    cache_dir : str | Path
        Directory to store entries in (created on first write).
    breaker_threshold : int
        Consecutive disk failures before the circuit breaker opens.
    breaker_cooldown_seconds : float
        How long the breaker bypasses the disk before a half-open probe.

    Attributes
    ----------
    hits : int
        Number of successful :meth:`get` lookups.
    misses : int
        Number of :meth:`get` lookups that found nothing.
    corrupt_entries : int
        Entries that failed checksum/shape validation and were quarantined.
    disk_errors : int
        I/O failures (reads and writes) observed by the breaker.
    """

    CORRUPT_DIR = "corrupt"

    def __init__(
        self,
        cache_dir: str | Path,
        *,
        breaker_threshold: int = 5,
        breaker_cooldown_seconds: float = 30.0,
    ):
        self.cache_dir = Path(cache_dir)
        self.hits = 0
        self.misses = 0
        self.corrupt_entries = 0
        self.disk_errors = 0
        self.breaker = DiskCircuitBreaker(
            threshold=breaker_threshold, cooldown_seconds=breaker_cooldown_seconds
        )

    def _path(self, key: str) -> Path:
        if not key or any(ch in key for ch in "/\\"):
            raise ValueError(f"invalid cache key {key!r}")
        return self.cache_dir / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """Return the cached result for ``key``, or ``None``.

        A missing entry is a plain miss.  An I/O failure counts against
        the circuit breaker.  A corrupt entry (unparseable JSON, missing
        fields, key or checksum mismatch) is quarantined to
        ``<cache>/corrupt/`` with a structured log event — it will never
        be served, and never silently miss again.
        """
        path = self._path(key)
        if not self.breaker.allow():
            self.misses += 1
            return None
        try:
            raw = path.read_bytes()
            raw = _FAULT_READ.hit(context=key, data=raw)
        except FileNotFoundError:
            # A missing file is a miss, not a disk failure.
            self.misses += 1
            return None
        except OSError as exc:
            self._record_disk_error("read", key, exc)
            self.misses += 1
            return None
        self.breaker.record_success()
        result = self._validate(key, path, raw)
        if result is None:
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _validate(self, key: str, path: Path, raw: bytes) -> dict | None:
        """Parse and checksum-verify an entry; quarantine it on failure."""
        reason = None
        result = None
        try:
            entry = json.loads(raw)
            result = entry["result"]
            if entry["key"] != key:
                reason = "key mismatch"
            elif entry["sha256"] != result_checksum(result):
                reason = "checksum mismatch"
        except (ValueError, KeyError, TypeError) as exc:
            reason = f"unparseable entry: {exc}"
        if reason is None:
            return result
        self._quarantine(path, key, reason)
        return None

    def _quarantine(self, path: Path, key: str, reason: str) -> None:
        self.corrupt_entries += 1
        destination = self.cache_dir / self.CORRUPT_DIR / path.name
        try:
            destination.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, destination)
            moved = str(destination)
        except OSError:
            # Quarantine is best effort: fall back to deleting the entry so
            # it at least cannot be re-read.
            try:
                path.unlink()
            except OSError:
                pass
            moved = None
        _log_event(
            "cache_corrupt_entry",
            level="warning",
            key=key,
            reason=reason,
            quarantined_to=moved,
        )

    def put(self, key: str, result: dict) -> None:
        """Store ``result`` under ``key`` atomically, with a checksum.

        Disk failures are swallowed (logged, counted, fed to the circuit
        breaker): a cache-write failure must never fail the compilation
        whose result it was trying to persist.
        """
        if not self.breaker.allow():
            return
        path = self._path(key)
        payload = json.dumps(
            {"key": key, "sha256": result_checksum(result), "result": result},
            sort_keys=True,
        )
        temp_name = None
        try:
            _FAULT_WRITE.hit(context=key)
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            fd, temp_name = tempfile.mkstemp(
                dir=self.cache_dir, prefix=".tmp-", suffix=".json"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(temp_name, path)
        except OSError as exc:
            if temp_name is not None:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
            self._record_disk_error("write", key, exc)
            return
        self.breaker.record_success()

    def _record_disk_error(self, op: str, key: str, exc: OSError) -> None:
        self.disk_errors += 1
        self.breaker.record_failure()
        _log_event(
            "cache_disk_error",
            level="warning",
            op=op,
            key=key,
            error=str(exc),
            breaker_state=self.breaker.state,
        )

    def stats(self) -> dict:
        """Counters and breaker state for ``/healthz``."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt_entries": self.corrupt_entries,
            "disk_errors": self.disk_errors,
            "breaker": self.breaker.snapshot(),
        }

    def __len__(self) -> int:
        if not self.cache_dir.is_dir():
            return 0
        # "[!.]*" keeps orphaned ".tmp-*" files (from killed writers) out of
        # the count; pathlib's glob, unlike the shell's, matches dotfiles.
        # The glob is non-recursive, so the corrupt/ quarantine is excluded.
        return sum(1 for _ in self.cache_dir.glob("[!.]*.json"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache(dir={str(self.cache_dir)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"corrupt={self.corrupt_entries}, breaker={self.breaker.state})"
        )
