"""repro — a compilation framework for emitter-photonic graph states.

This package reproduces the DAC 2025 paper *"A Scalable and Robust
Compilation Framework for Emitter-Photonic Graph State"*: it compiles a target
photonic graph state into a deterministic generation circuit for emitter-based
hardware (quantum dots, colour centres, Rydberg atoms), minimising
emitter-emitter CNOTs, circuit duration and accumulated photon loss.

Quickstart::

    from repro import compile_graph, BaselineCompiler, lattice_graph

    graph = lattice_graph(4, 5)
    ours = compile_graph(graph)
    base = BaselineCompiler().compile(graph)
    print(ours.num_emitter_emitter_cnots, "vs", base.metrics.num_emitter_emitter_cnots)

All GF(2)/stabilizer kernels run on a word-packed fast path by default; the
original dense implementation is kept as a bit-exact oracle, and a third
``arena`` backend (preallocated ``np.uint64`` word arenas with vectorised
batched elimination) takes over bulk Gauss--Jordan from the measured
crossover width. Each is selectable per call (``backend="dense"``), per
compilation (``CompilerConfig(gf2_backend=...)``), or process-wide::

    from repro import set_default_backend, use_backend

    set_default_backend("dense")          # or REPRO_GF2_BACKEND=dense
    with use_backend("packed"):
        ...                               # temporarily back on the fast path

Per-leaf ordering searches are memoized by exact graph isomorphism: the
partitioner emits the same small subgraph over and over up to relabeling, and
the subgraph compile cache (:mod:`repro.core.compile_cache`, on by default)
answers every repeat by remapping the cached result through the canonical
permutation — bit-identical circuits, a fraction of the cost.

Whole sweeps go through the batch pipeline — declarative picklable jobs,
process-pool fan-out and content-hash result caching::

    from repro import BatchJob, BatchRunner, GraphSpec

    jobs = [BatchJob(graph=GraphSpec("lattice", n)) for n in (10, 20, 30)]
    report = BatchRunner(max_workers=4, cache_dir=".repro-cache").run(jobs)
    print(report.summary())               # second run reports cache hits

or, from the shell (the figure sweeps use the same machinery)::

    repro batch --families lattice tree --sizes 10 20 30 \\
        --workers 4 --cache-dir .repro-cache

Long-running traffic goes through the compilation service — an HTTP server
(:mod:`repro.service`) that micro-batches concurrent requests onto the same
pipeline and serves repeats from a persistent disk cache::

    repro serve --port 8765 --cache-dir .repro-service-cache   # terminal 1
    repro loadgen --url http://127.0.0.1:8765 \\
        --families lattice surface --sizes 12 --requests 50    # terminal 2

(the load generator prints throughput, p50/p95/p99 latency and the cache-hit
rate; a second identical run is served almost entirely from cache).

Public API highlights:

* :class:`repro.core.compiler.EmitterCompiler` / :class:`repro.core.config.CompilerConfig`
  — the paper's framework.
* :class:`repro.baseline.naive.BaselineCompiler` — the GraphiQ-like baseline.
* :mod:`repro.graphs` — graph-state containers, generators, local
  complementation and entanglement measures.
* :mod:`repro.circuit` — the emitter-photon circuit IR, scheduling, metrics
  and stabilizer-backed verification.
* :mod:`repro.hardware` — hardware presets and the photon-loss model.
* :mod:`repro.evaluation` — the harness that regenerates every figure of the
  paper's evaluation.
* :mod:`repro.pipeline` — the batch-compilation pipeline (jobs, process-pool
  runner, content-hash cache) behind the sweeps and ``repro batch``.
* :mod:`repro.service` — the compilation server (``repro serve``), its
  micro-batcher, HTTP client and load generator (``repro loadgen``).
* :mod:`repro.utils.backend` / :mod:`repro.utils.gf2_packed` /
  :mod:`repro.utils.gf2_arena` — the GF(2) backend switch, the word-packed
  kernels and the vectorised arena kernels.
* :mod:`repro.core.streaming` / :mod:`repro.graphs.lazy` — streaming
  partition-compile of lazily-specified graph families with bounded peak
  memory (``repro compile --stream``).
"""

from repro.baseline.naive import BaselineCompiler, BaselineResult
from repro.circuit.circuit import Circuit
from repro.circuit.metrics import CircuitMetrics, compute_metrics
from repro.circuit.timing import GateDurations, Schedule, schedule_circuit
from repro.circuit.validation import (
    simulate_circuit,
    validate_circuit_constraints,
    verify_circuit_generates,
)
from repro.core.compiler import CompilationResult, EmitterCompiler, compile_graph
from repro.core.config import CompilerConfig
from repro.core.ordering import OrderingResult, optimize_emission_ordering
from repro.core.portfolio import PortfolioCompiler, PortfolioResult, compile_anytime
from repro.graphs.entanglement import cut_rank, height_function, minimum_emitters
from repro.graphs.generators import (
    benchmark_graph,
    complete_graph,
    erdos_renyi_graph,
    ghz_graph,
    lattice_graph,
    linear_cluster,
    percolated_lattice,
    random_regular_graph,
    random_tree,
    repeater_graph_state,
    ring_graph,
    rotated_surface_code_graph,
    star_graph,
    steane_code_graph,
    tree_graph,
    watts_strogatz_graph,
    waxman_graph,
)
from repro.graphs.graph_state import GraphState
from repro.graphs.incremental import CutRankEngine
from repro.hardware.loss import PhotonLossModel
from repro.hardware.models import (
    HardwareModel,
    get_hardware_model,
    nv_center,
    quantum_dot,
    rydberg_atom,
    siv_center,
)
from repro.pipeline.cache import ResultCache
from repro.pipeline.jobs import BatchJob, GraphSpec
from repro.pipeline.runner import BatchReport, BatchRunner
from repro.service.client import ServiceClient
from repro.service.server import CompileServer, CompileService, start_server
from repro.stabilizer.tableau import StabilizerState
from repro.utils.backend import (
    get_default_backend,
    set_default_backend,
    use_backend,
)

__version__ = "1.10.0"

__all__ = [
    "__version__",
    "BaselineCompiler",
    "BaselineResult",
    "Circuit",
    "CircuitMetrics",
    "compute_metrics",
    "GateDurations",
    "Schedule",
    "schedule_circuit",
    "simulate_circuit",
    "validate_circuit_constraints",
    "verify_circuit_generates",
    "CompilationResult",
    "EmitterCompiler",
    "compile_anytime",
    "compile_graph",
    "CompilerConfig",
    "OrderingResult",
    "optimize_emission_ordering",
    "cut_rank",
    "height_function",
    "minimum_emitters",
    "benchmark_graph",
    "complete_graph",
    "erdos_renyi_graph",
    "ghz_graph",
    "lattice_graph",
    "linear_cluster",
    "percolated_lattice",
    "random_regular_graph",
    "random_tree",
    "repeater_graph_state",
    "ring_graph",
    "rotated_surface_code_graph",
    "star_graph",
    "steane_code_graph",
    "tree_graph",
    "watts_strogatz_graph",
    "waxman_graph",
    "GraphState",
    "CutRankEngine",
    "PhotonLossModel",
    "PortfolioCompiler",
    "PortfolioResult",
    "HardwareModel",
    "get_hardware_model",
    "nv_center",
    "quantum_dot",
    "rydberg_atom",
    "siv_center",
    "StabilizerState",
    "BatchJob",
    "BatchReport",
    "BatchRunner",
    "GraphSpec",
    "ResultCache",
    "ServiceClient",
    "CompileServer",
    "CompileService",
    "start_server",
    "get_default_backend",
    "set_default_backend",
    "use_backend",
]
