"""repro — a compilation framework for emitter-photonic graph states.

This package reproduces the DAC 2025 paper *"A Scalable and Robust
Compilation Framework for Emitter-Photonic Graph State"*: it compiles a target
photonic graph state into a deterministic generation circuit for emitter-based
hardware (quantum dots, colour centres, Rydberg atoms), minimising
emitter-emitter CNOTs, circuit duration and accumulated photon loss.

Quickstart::

    from repro import EmitterCompiler, BaselineCompiler, lattice_graph

    graph = lattice_graph(4, 5)
    ours = EmitterCompiler().compile(graph)
    base = BaselineCompiler().compile(graph)
    print(ours.num_emitter_emitter_cnots, "vs", base.metrics.num_emitter_emitter_cnots)

Public API highlights:

* :class:`repro.core.compiler.EmitterCompiler` / :class:`repro.core.config.CompilerConfig`
  — the paper's framework.
* :class:`repro.baseline.naive.BaselineCompiler` — the GraphiQ-like baseline.
* :mod:`repro.graphs` — graph-state containers, generators, local
  complementation and entanglement measures.
* :mod:`repro.circuit` — the emitter-photon circuit IR, scheduling, metrics
  and stabilizer-backed verification.
* :mod:`repro.hardware` — hardware presets and the photon-loss model.
* :mod:`repro.evaluation` — the harness that regenerates every figure of the
  paper's evaluation.
"""

from repro.baseline.naive import BaselineCompiler, BaselineResult
from repro.circuit.circuit import Circuit
from repro.circuit.metrics import CircuitMetrics, compute_metrics
from repro.circuit.timing import GateDurations, Schedule, schedule_circuit
from repro.circuit.validation import (
    simulate_circuit,
    validate_circuit_constraints,
    verify_circuit_generates,
)
from repro.core.compiler import CompilationResult, EmitterCompiler
from repro.core.config import CompilerConfig
from repro.graphs.entanglement import cut_rank, height_function, minimum_emitters
from repro.graphs.generators import (
    benchmark_graph,
    complete_graph,
    lattice_graph,
    linear_cluster,
    random_tree,
    repeater_graph_state,
    ring_graph,
    star_graph,
    tree_graph,
    waxman_graph,
)
from repro.graphs.graph_state import GraphState
from repro.hardware.loss import PhotonLossModel
from repro.hardware.models import (
    HardwareModel,
    get_hardware_model,
    nv_center,
    quantum_dot,
    rydberg_atom,
    siv_center,
)
from repro.stabilizer.tableau import StabilizerState

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "BaselineCompiler",
    "BaselineResult",
    "Circuit",
    "CircuitMetrics",
    "compute_metrics",
    "GateDurations",
    "Schedule",
    "schedule_circuit",
    "simulate_circuit",
    "validate_circuit_constraints",
    "verify_circuit_generates",
    "CompilationResult",
    "EmitterCompiler",
    "CompilerConfig",
    "cut_rank",
    "height_function",
    "minimum_emitters",
    "benchmark_graph",
    "complete_graph",
    "lattice_graph",
    "linear_cluster",
    "random_tree",
    "repeater_graph_state",
    "ring_graph",
    "star_graph",
    "tree_graph",
    "waxman_graph",
    "GraphState",
    "PhotonLossModel",
    "HardwareModel",
    "get_hardware_model",
    "nv_center",
    "quantum_dot",
    "rydberg_atom",
    "siv_center",
    "StabilizerState",
]
