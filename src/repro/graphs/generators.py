"""Benchmark graph-state families.

The paper evaluates three graph families (Fig. 9):

* **Lattice** — a 2-D square grid, the elementary resource of
  measurement-based quantum computing;
* **Tree** — connected acyclic graphs, the structure of QRAM routers and of
  tree codes for quantum error correction;
* **Random (Waxman)** — the Waxman random-geometric model, covering the
  communication topologies of distributed quantum computing and quantum
  networks.

This module also ships several standard extras used by the examples and the
test-suite: linear cluster states, rings, stars (GHZ-equivalent), complete
graphs and repeater graph states (RGS).

All generators return :class:`repro.graphs.graph_state.GraphState` instances
with integer vertex labels ``0..n-1`` and are deterministic for a fixed
``seed``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graphs.graph_state import GraphState
from repro.utils.misc import check_positive, make_rng

__all__ = [
    "lattice_graph",
    "tree_graph",
    "random_tree",
    "waxman_graph",
    "linear_cluster",
    "ring_graph",
    "star_graph",
    "complete_graph",
    "repeater_graph_state",
    "benchmark_graph",
]


def lattice_graph(rows: int, cols: int) -> GraphState:
    """A 2-D square-grid cluster state with ``rows x cols`` vertices.

    Vertex ``(r, c)`` is labelled ``r * cols + c``; nearest neighbours along
    rows and columns are connected.
    """
    check_positive("rows", rows)
    check_positive("cols", cols)
    graph = GraphState(vertices=range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                graph.add_edge(v, v + 1)
            if r + 1 < rows:
                graph.add_edge(v, v + cols)
    return graph


def tree_graph(depth: int, branching: int) -> GraphState:
    """A complete ``branching``-ary tree of the given ``depth``.

    ``depth = 0`` yields a single vertex.  This is the regular-tree shape used
    by QRAM routers; for irregular trees use :func:`random_tree`.
    """
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    check_positive("branching", branching)
    graph = GraphState(vertices=[0])
    next_label = 1
    frontier = [0]
    for _ in range(depth):
        new_frontier = []
        for parent in frontier:
            for _ in range(branching):
                child = next_label
                next_label += 1
                graph.add_vertex(child)
                graph.add_edge(parent, child)
                new_frontier.append(child)
        frontier = new_frontier
    return graph


def random_tree(num_vertices: int, seed: int | np.random.Generator | None = None) -> GraphState:
    """A uniformly random labelled tree on ``num_vertices`` vertices.

    Generated from a random Prüfer sequence, so every labelled tree is equally
    likely.  ``num_vertices = 1`` and ``2`` are handled explicitly.
    """
    check_positive("num_vertices", num_vertices)
    rng = make_rng(seed)
    if num_vertices == 1:
        return GraphState(vertices=[0])
    if num_vertices == 2:
        return GraphState(vertices=[0, 1], edges=[(0, 1)])
    prufer = [int(rng.integers(0, num_vertices)) for _ in range(num_vertices - 2)]
    degree = [1] * num_vertices
    for v in prufer:
        degree[v] += 1
    graph = GraphState(vertices=range(num_vertices))
    import heapq

    leaves = [v for v in range(num_vertices) if degree[v] == 1]
    heapq.heapify(leaves)
    for v in prufer:
        leaf = heapq.heappop(leaves)
        graph.add_edge(leaf, v)
        degree[v] -= 1
        if degree[v] == 1:
            heapq.heappush(leaves, v)
    last_two = [v for v in range(num_vertices) if degree[v] == 1 and graph.degree(v) == 0]
    # The two remaining vertices of the Prüfer decoding are joined directly.
    remaining = sorted(leaves)
    if len(remaining) >= 2:
        graph.add_edge(remaining[0], remaining[1])
    elif len(last_two) == 2:  # pragma: no cover - defensive fallback
        graph.add_edge(last_two[0], last_two[1])
    return graph


def waxman_graph(
    num_vertices: int,
    alpha: float = 0.6,
    beta: float = 0.2,
    seed: int | np.random.Generator | None = None,
    ensure_connected: bool = True,
) -> GraphState:
    """A Waxman random geometric graph (Waxman 1988).

    Vertices are placed uniformly in the unit square; an edge between ``u``
    and ``v`` at Euclidean distance ``d`` is created with probability
    ``alpha * exp(-d / (beta * L))`` where ``L`` is the maximal distance.

    Args:
        num_vertices: number of vertices.
        alpha: overall edge density knob (0, 1].  The defaults give sparse
            communication-network-like topologies (average degree roughly
            3-5), which is the regime quantum-network benchmarks target.
        beta: decay-length knob (0, 1]; larger values favour long edges.
        seed: RNG seed or generator for reproducibility.
        ensure_connected: when True, missing connectivity is repaired by
            linking consecutive components with their closest vertex pair
            (the paper's benchmarks are connected communication topologies).
    """
    check_positive("num_vertices", num_vertices)
    if not 0 < alpha <= 1:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if not 0 < beta <= 1:
        raise ValueError(f"beta must be in (0, 1], got {beta}")
    rng = make_rng(seed)
    positions = {v: (float(rng.random()), float(rng.random())) for v in range(num_vertices)}
    max_distance = math.sqrt(2.0)
    graph = GraphState(vertices=range(num_vertices))
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            du = positions[u]
            dv = positions[v]
            distance = math.dist(du, dv)
            probability = alpha * math.exp(-distance / (beta * max_distance))
            if rng.random() < probability:
                graph.add_edge(u, v)
    if ensure_connected and num_vertices > 1:
        components = graph.connected_components()
        while len(components) > 1:
            comp_a = components[0]
            comp_b = components[1]
            best_pair = None
            best_distance = float("inf")
            for u in comp_a:
                for v in comp_b:
                    distance = math.dist(positions[u], positions[v])
                    if distance < best_distance:
                        best_distance = distance
                        best_pair = (u, v)
            assert best_pair is not None
            graph.add_edge(*best_pair)
            components = graph.connected_components()
    return graph


def linear_cluster(num_vertices: int) -> GraphState:
    """A 1-D cluster (path) state ``0 - 1 - ... - (n-1)``."""
    check_positive("num_vertices", num_vertices)
    edges = [(i, i + 1) for i in range(num_vertices - 1)]
    return GraphState(vertices=range(num_vertices), edges=edges)


def ring_graph(num_vertices: int) -> GraphState:
    """A cycle graph state; requires at least 3 vertices."""
    if num_vertices < 3:
        raise ValueError(f"a ring needs at least 3 vertices, got {num_vertices}")
    edges = [(i, (i + 1) % num_vertices) for i in range(num_vertices)]
    return GraphState(vertices=range(num_vertices), edges=edges)


def star_graph(num_vertices: int) -> GraphState:
    """A star graph state (LC-equivalent to the GHZ state) with centre 0."""
    check_positive("num_vertices", num_vertices)
    edges = [(0, i) for i in range(1, num_vertices)]
    return GraphState(vertices=range(num_vertices), edges=edges)


def complete_graph(num_vertices: int) -> GraphState:
    """The complete graph state on ``num_vertices`` vertices."""
    check_positive("num_vertices", num_vertices)
    edges = [(i, j) for i in range(num_vertices) for j in range(i + 1, num_vertices)]
    return GraphState(vertices=range(num_vertices), edges=edges)


def repeater_graph_state(num_arms: int) -> GraphState:
    """The repeater graph state (RGS) of Azuma, Tamaki & Lo (2015).

    The RGS with ``num_arms`` arms has ``2 * num_arms`` vertices: an inner
    fully connected core of ``num_arms`` vertices, each attached to one outer
    leaf.  It is the standard resource for all-photonic quantum repeaters and
    the benchmark of Kaur et al. (2024).
    """
    check_positive("num_arms", num_arms)
    inner = list(range(num_arms))
    outer = list(range(num_arms, 2 * num_arms))
    graph = GraphState(vertices=range(2 * num_arms))
    for i in range(num_arms):
        for j in range(i + 1, num_arms):
            graph.add_edge(inner[i], inner[j])
    for i in range(num_arms):
        graph.add_edge(inner[i], outer[i])
    return graph


def benchmark_graph(
    family: str,
    num_vertices: int,
    seed: int | np.random.Generator | None = None,
) -> GraphState:
    """Build a benchmark graph of roughly ``num_vertices`` vertices.

    ``family`` is one of ``"lattice"``, ``"tree"`` or ``"random"`` (Waxman),
    matching the paper's three benchmark columns.  Lattice sizes are rounded
    to the closest feasible ``rows x cols`` rectangle (as square as possible),
    so the returned graph may have slightly fewer vertices than requested;
    tree and random graphs match the request exactly.
    """
    check_positive("num_vertices", num_vertices)
    family = family.lower()
    if family == "lattice":
        rows = max(2, int(math.floor(math.sqrt(num_vertices))))
        cols = max(2, num_vertices // rows)
        return lattice_graph(rows, cols)
    if family == "tree":
        return random_tree(num_vertices, seed=seed)
    if family in ("random", "waxman"):
        return waxman_graph(num_vertices, seed=seed)
    raise ValueError(
        f"unknown benchmark family {family!r}; expected 'lattice', 'tree' or 'random'"
    )
