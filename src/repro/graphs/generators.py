"""Benchmark graph-state families.

The paper evaluates three graph families (Fig. 9):

* **Lattice** — a 2-D square grid, the elementary resource of
  measurement-based quantum computing;
* **Tree** — connected acyclic graphs, the structure of QRAM routers and of
  tree codes for quantum error correction;
* **Random (Waxman)** — the Waxman random-geometric model, covering the
  communication topologies of distributed quantum computing and quantum
  networks.

This module also ships several standard extras used by the examples and the
test-suite: linear cluster states, rings, stars (GHZ-equivalent), complete
graphs and repeater graph states (RGS).

Beyond the paper's families, the *scenario zoo* covers the workload diversity
that the batch pipeline and the compilation service are exercised with:

* **Random regular** (:func:`random_regular_graph`) — expander-like
  topologies with uniform degree;
* **Small world** (:func:`watts_strogatz_graph`) — Watts–Strogatz rewired
  rings, high clustering with short paths;
* **Erdős–Rényi** (:func:`erdos_renyi_graph`) — the classic ``G(n, p)``
  random-graph model;
* **Percolated lattice** (:func:`percolated_lattice`) — a cluster state with
  fabrication defects: bond percolation applied to the 2-D grid;
* **QEC-flavoured graph states** — GHZ (:func:`ghz_graph`), the 7-qubit
  Steane code (:func:`steane_code_graph`) and the rotated surface code
  (:func:`rotated_surface_code_graph`).

All generators return :class:`repro.graphs.graph_state.GraphState` instances
with integer vertex labels ``0..n-1`` and are deterministic for a fixed
``seed``.  Every family is also registered as a picklable
:class:`repro.pipeline.jobs.GraphSpec` kind, so it can be swept through
``repro batch``, served by ``repro serve`` and driven by ``repro loadgen``.
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np

from repro.graphs.graph_state import GraphState
from repro.utils.misc import check_positive, make_rng

__all__ = [
    "lattice_graph",
    "tree_graph",
    "random_tree",
    "waxman_graph",
    "linear_cluster",
    "ring_graph",
    "star_graph",
    "complete_graph",
    "repeater_graph_state",
    "random_regular_graph",
    "watts_strogatz_graph",
    "erdos_renyi_graph",
    "percolated_lattice",
    "ghz_graph",
    "steane_code_graph",
    "rotated_surface_code_graph",
    "benchmark_graph",
]


def lattice_graph(rows: int, cols: int) -> GraphState:
    """A 2-D square-grid cluster state with ``rows x cols`` vertices.

    Vertex ``(r, c)`` is labelled ``r * cols + c``; nearest neighbours along
    rows and columns are connected.
    """
    check_positive("rows", rows)
    check_positive("cols", cols)
    graph = GraphState(vertices=range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                graph.add_edge(v, v + 1)
            if r + 1 < rows:
                graph.add_edge(v, v + cols)
    return graph


def tree_graph(depth: int, branching: int) -> GraphState:
    """A complete ``branching``-ary tree of the given ``depth``.

    ``depth = 0`` yields a single vertex.  This is the regular-tree shape used
    by QRAM routers; for irregular trees use :func:`random_tree`.
    """
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    check_positive("branching", branching)
    graph = GraphState(vertices=[0])
    next_label = 1
    frontier = [0]
    for _ in range(depth):
        new_frontier = []
        for parent in frontier:
            for _ in range(branching):
                child = next_label
                next_label += 1
                graph.add_vertex(child)
                graph.add_edge(parent, child)
                new_frontier.append(child)
        frontier = new_frontier
    return graph


def random_tree(num_vertices: int, seed: int | np.random.Generator | None = None) -> GraphState:
    """A uniformly random labelled tree on ``num_vertices`` vertices.

    Generated from a random Prüfer sequence, so every labelled tree is equally
    likely.  ``num_vertices = 1`` and ``2`` are handled explicitly.
    """
    check_positive("num_vertices", num_vertices)
    rng = make_rng(seed)
    if num_vertices == 1:
        return GraphState(vertices=[0])
    if num_vertices == 2:
        return GraphState(vertices=[0, 1], edges=[(0, 1)])
    prufer = [int(rng.integers(0, num_vertices)) for _ in range(num_vertices - 2)]
    degree = [1] * num_vertices
    for v in prufer:
        degree[v] += 1
    graph = GraphState(vertices=range(num_vertices))
    import heapq

    leaves = [v for v in range(num_vertices) if degree[v] == 1]
    heapq.heapify(leaves)
    for v in prufer:
        leaf = heapq.heappop(leaves)
        graph.add_edge(leaf, v)
        degree[v] -= 1
        if degree[v] == 1:
            heapq.heappush(leaves, v)
    last_two = [v for v in range(num_vertices) if degree[v] == 1 and graph.degree(v) == 0]
    # The two remaining vertices of the Prüfer decoding are joined directly.
    remaining = sorted(leaves)
    if len(remaining) >= 2:
        graph.add_edge(remaining[0], remaining[1])
    elif len(last_two) == 2:  # pragma: no cover - defensive fallback
        graph.add_edge(last_two[0], last_two[1])
    return graph


def waxman_graph(
    num_vertices: int,
    alpha: float = 0.6,
    beta: float = 0.2,
    seed: int | np.random.Generator | None = None,
    ensure_connected: bool = True,
) -> GraphState:
    """A Waxman random geometric graph (Waxman 1988).

    Vertices are placed uniformly in the unit square; an edge between ``u``
    and ``v`` at Euclidean distance ``d`` is created with probability
    ``alpha * exp(-d / (beta * L))`` where ``L`` is the maximal distance.

    Args:
        num_vertices: number of vertices.
        alpha: overall edge density knob (0, 1].  The defaults give sparse
            communication-network-like topologies (average degree roughly
            3-5), which is the regime quantum-network benchmarks target.
        beta: decay-length knob (0, 1]; larger values favour long edges.
        seed: RNG seed or generator for reproducibility.
        ensure_connected: when True, missing connectivity is repaired by
            linking consecutive components with their closest vertex pair
            (the paper's benchmarks are connected communication topologies).
    """
    check_positive("num_vertices", num_vertices)
    if not 0 < alpha <= 1:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if not 0 < beta <= 1:
        raise ValueError(f"beta must be in (0, 1], got {beta}")
    rng = make_rng(seed)
    positions = {v: (float(rng.random()), float(rng.random())) for v in range(num_vertices)}
    max_distance = math.sqrt(2.0)
    graph = GraphState(vertices=range(num_vertices))
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            du = positions[u]
            dv = positions[v]
            distance = math.dist(du, dv)
            probability = alpha * math.exp(-distance / (beta * max_distance))
            if rng.random() < probability:
                graph.add_edge(u, v)
    if ensure_connected and num_vertices > 1:
        components = graph.connected_components()
        while len(components) > 1:
            comp_a = components[0]
            comp_b = components[1]
            best_pair = None
            best_distance = float("inf")
            for u in comp_a:
                for v in comp_b:
                    distance = math.dist(positions[u], positions[v])
                    if distance < best_distance:
                        best_distance = distance
                        best_pair = (u, v)
            assert best_pair is not None
            graph.add_edge(*best_pair)
            components = graph.connected_components()
    return graph


def linear_cluster(num_vertices: int) -> GraphState:
    """A 1-D cluster (path) state ``0 - 1 - ... - (n-1)``."""
    check_positive("num_vertices", num_vertices)
    edges = [(i, i + 1) for i in range(num_vertices - 1)]
    return GraphState(vertices=range(num_vertices), edges=edges)


def ring_graph(num_vertices: int) -> GraphState:
    """A cycle graph state; requires at least 3 vertices."""
    if num_vertices < 3:
        raise ValueError(f"a ring needs at least 3 vertices, got {num_vertices}")
    edges = [(i, (i + 1) % num_vertices) for i in range(num_vertices)]
    return GraphState(vertices=range(num_vertices), edges=edges)


def star_graph(num_vertices: int) -> GraphState:
    """A star graph state (LC-equivalent to the GHZ state) with centre 0."""
    check_positive("num_vertices", num_vertices)
    edges = [(0, i) for i in range(1, num_vertices)]
    return GraphState(vertices=range(num_vertices), edges=edges)


def complete_graph(num_vertices: int) -> GraphState:
    """The complete graph state on ``num_vertices`` vertices."""
    check_positive("num_vertices", num_vertices)
    edges = [(i, j) for i in range(num_vertices) for j in range(i + 1, num_vertices)]
    return GraphState(vertices=range(num_vertices), edges=edges)


def repeater_graph_state(num_arms: int) -> GraphState:
    """The repeater graph state (RGS) of Azuma, Tamaki & Lo (2015).

    The RGS with ``num_arms`` arms has ``2 * num_arms`` vertices: an inner
    fully connected core of ``num_arms`` vertices, each attached to one outer
    leaf.  It is the standard resource for all-photonic quantum repeaters and
    the benchmark of Kaur et al. (2024).
    """
    check_positive("num_arms", num_arms)
    inner = list(range(num_arms))
    outer = list(range(num_arms, 2 * num_arms))
    graph = GraphState(vertices=range(2 * num_arms))
    for i in range(num_arms):
        for j in range(i + 1, num_arms):
            graph.add_edge(inner[i], inner[j])
    for i in range(num_arms):
        graph.add_edge(inner[i], outer[i])
    return graph


# --------------------------------------------------------------------------- #
# Scenario zoo: random topologies
# --------------------------------------------------------------------------- #


def _derived_int_seed(seed: int | np.random.Generator | None) -> int:
    """Derive a deterministic integer seed for the ``networkx`` generators."""
    rng = make_rng(seed)
    return int(rng.integers(0, 2**31 - 1))


def _link_components(graph: GraphState) -> None:
    """Connect a graph in place by joining consecutive components.

    Components are ordered by their smallest vertex label and linked through
    their minimum-label vertices, so the repair is deterministic.
    """
    components = sorted(
        (sorted(component) for component in graph.connected_components()),
        key=lambda component: component[0],
    )
    for left, right in zip(components, components[1:]):
        graph.add_edge(left[0], right[0])


def random_regular_graph(
    num_vertices: int,
    degree: int = 3,
    seed: int | np.random.Generator | None = None,
    ensure_connected: bool = True,
) -> GraphState:
    """A uniformly random ``degree``-regular graph state.

    Random regular graphs are expander-like: every vertex has the same
    degree, mixing is fast and there is no geometric structure — the opposite
    corner of the workload space from lattices and trees.

    Parameters
    ----------
    num_vertices : int
        Number of vertices; ``num_vertices * degree`` must be even and
        ``degree < num_vertices``.
    degree : int, optional
        Uniform vertex degree (default 3, the smallest degree for which the
        random graph is almost surely connected).
    seed : int | numpy.random.Generator | None, optional
        RNG seed for reproducibility.
    ensure_connected : bool, optional
        Redraw (up to 200 times, deterministically) until the sample is
        connected; only meaningful for ``degree >= 2``.

    Returns
    -------
    GraphState
        The sampled regular graph state.
    """
    check_positive("num_vertices", num_vertices)
    if degree < 0 or degree >= num_vertices:
        raise ValueError(
            f"degree must satisfy 0 <= degree < num_vertices, got {degree}"
        )
    if (num_vertices * degree) % 2 != 0:
        raise ValueError(
            f"num_vertices * degree must be even, got {num_vertices} * {degree}"
        )
    if degree == 0:
        return GraphState(vertices=range(num_vertices))
    base_seed = _derived_int_seed(seed)
    sample = None
    for attempt in range(200):
        sample = nx.random_regular_graph(
            degree, num_vertices, seed=(base_seed + attempt) % (2**31 - 1)
        )
        if not ensure_connected or degree < 2 or nx.is_connected(sample):
            return GraphState.from_networkx(sample)
    raise RuntimeError(
        f"could not sample a connected {degree}-regular graph on "
        f"{num_vertices} vertices in 200 attempts"
    )


def watts_strogatz_graph(
    num_vertices: int,
    k: int = 4,
    rewire_probability: float = 0.1,
    seed: int | np.random.Generator | None = None,
) -> GraphState:
    """A connected Watts–Strogatz small-world graph state.

    Starts from a ring lattice where every vertex is joined to its ``k``
    nearest neighbours and rewires each edge with probability
    ``rewire_probability`` — high clustering with short average paths, the
    regime of realistic interconnect topologies.

    Parameters
    ----------
    num_vertices : int
        Number of vertices (at least 3).
    k : int, optional
        Ring-lattice neighbourhood size, ``2 <= k < num_vertices`` (odd ``k``
        behaves like ``k - 1``, as in ``networkx``).
    rewire_probability : float, optional
        Per-edge rewiring probability in ``[0, 1]``.
    seed : int | numpy.random.Generator | None, optional
        RNG seed for reproducibility.

    Returns
    -------
    GraphState
        A connected small-world graph state.
    """
    if num_vertices < 3:
        raise ValueError(f"num_vertices must be >= 3, got {num_vertices}")
    if not 2 <= k < num_vertices:
        raise ValueError(f"k must satisfy 2 <= k < num_vertices, got {k}")
    if not 0.0 <= rewire_probability <= 1.0:
        raise ValueError(
            f"rewire_probability must be in [0, 1], got {rewire_probability}"
        )
    sample = nx.connected_watts_strogatz_graph(
        num_vertices, k, rewire_probability, tries=200, seed=_derived_int_seed(seed)
    )
    return GraphState.from_networkx(sample)


def erdos_renyi_graph(
    num_vertices: int,
    edge_probability: float | None = None,
    seed: int | np.random.Generator | None = None,
    ensure_connected: bool = True,
) -> GraphState:
    """An Erdős–Rényi ``G(n, p)`` random graph state.

    Parameters
    ----------
    num_vertices : int
        Number of vertices.
    edge_probability : float | None, optional
        Independent edge probability in ``[0, 1]``.  ``None`` picks
        ``min(1, 2 ln(n) / n)`` — just above the sharp connectivity
        threshold ``ln(n) / n``, so the default samples are sparse but
        (almost always) connected.
    seed : int | numpy.random.Generator | None, optional
        RNG seed for reproducibility.
    ensure_connected : bool, optional
        Deterministically link residual components (smallest-label vertices
        of consecutive components) so the returned state is connected.

    Returns
    -------
    GraphState
        The sampled random graph state.
    """
    check_positive("num_vertices", num_vertices)
    if edge_probability is None:
        edge_probability = (
            min(1.0, 2.0 * math.log(num_vertices) / num_vertices)
            if num_vertices > 1
            else 0.0
        )
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError(
            f"edge_probability must be in [0, 1], got {edge_probability}"
        )
    sample = nx.gnp_random_graph(
        num_vertices, edge_probability, seed=_derived_int_seed(seed)
    )
    graph = GraphState.from_networkx(sample)
    if ensure_connected and num_vertices > 1:
        _link_components(graph)
    return graph


def percolated_lattice(
    rows: int,
    cols: int,
    survival: float = 0.85,
    seed: int | np.random.Generator | None = None,
    ensure_connected: bool = True,
) -> GraphState:
    """A defective 2-D cluster state: bond percolation on the square grid.

    Each edge of the perfect ``rows x cols`` lattice survives independently
    with probability ``survival``.  This models fabrication defects and
    photon loss in lattice-based architectures, where the delivered resource
    state is never the ideal grid.

    Parameters
    ----------
    rows, cols : int
        Grid dimensions (vertex ``(r, c)`` is labelled ``r * cols + c``).
    survival : float, optional
        Per-edge survival probability in ``(0, 1]``.
    seed : int | numpy.random.Generator | None, optional
        RNG seed for reproducibility.
    ensure_connected : bool, optional
        Re-add dropped lattice edges (in deterministic scan order) until the
        graph is connected again, so the defect model never fragments the
        state.

    Returns
    -------
    GraphState
        The percolated lattice graph state, on the full vertex set.
    """
    if not 0.0 < survival <= 1.0:
        raise ValueError(f"survival must be in (0, 1], got {survival}")
    rng = make_rng(seed)
    graph = lattice_graph(rows, cols)
    dropped = []
    for edge in sorted(graph.edges()):
        if rng.random() > survival:
            graph.remove_edge(*edge)
            dropped.append(edge)
    if ensure_connected:
        while not graph.is_connected():
            components = graph.connected_components()
            membership = {}
            for index, component in enumerate(components):
                for vertex in component:
                    membership[vertex] = index
            for u, v in dropped:
                if membership[u] != membership[v]:
                    graph.add_edge(u, v)
                    break
            else:  # pragma: no cover - unreachable: the full grid is connected
                raise RuntimeError("percolation repair failed")
    return graph


# --------------------------------------------------------------------------- #
# Scenario zoo: GHZ and QEC-flavoured graph states
# --------------------------------------------------------------------------- #


def ghz_graph(num_vertices: int, representation: str = "star") -> GraphState:
    """The graph state locally equivalent to the ``n``-qubit GHZ state.

    The GHZ state's local-Clifford equivalence class contains exactly the
    star and the complete graph; both representations are offered because
    they stress the compiler differently (the star is emitter-friendly, the
    complete graph maximises edge count).  The W state, by contrast, is not a
    stabilizer state and therefore has no graph-state representation — the
    zoo deliberately has no W generator.

    Parameters
    ----------
    num_vertices : int
        Number of qubits.
    representation : {"star", "complete"}, optional
        Which member of the LC class to return.

    Returns
    -------
    GraphState
        The requested GHZ-class graph state.
    """
    if representation == "star":
        return star_graph(num_vertices)
    if representation == "complete":
        return complete_graph(num_vertices)
    raise ValueError(
        f"representation must be 'star' or 'complete', got {representation!r}"
    )


def _css_x_check_graph(
    num_data: int, x_checks: list[tuple[int, ...]]
) -> GraphState:
    """Bipartite graph state of a CSS code from its X-stabilizer supports.

    Every CSS codeword stabilized state is local-Clifford equivalent to a
    bipartite graph state whose two sides are the data qubits and the X-type
    checks, with an edge wherever a check acts on a qubit (the Tanner-graph
    construction of Chen/Lo and Audenaert/Plenio).  Data qubits are labelled
    ``0 .. num_data - 1``; check vertices follow.
    """
    graph = GraphState(vertices=range(num_data + len(x_checks)))
    for offset, support in enumerate(x_checks):
        check_vertex = num_data + offset
        for qubit in support:
            graph.add_edge(check_vertex, qubit)
    return graph


def steane_code_graph() -> GraphState:
    """The 7-qubit Steane code state as a bipartite graph state.

    The Steane ``[[7, 1, 3]]`` code is the CSS code of the classical
    ``[7, 4]`` Hamming code.  Bringing the Hamming parity-check matrix to
    standard form ``[I_3 | A]`` and applying the CSS Tanner-graph
    construction yields a 7-vertex bipartite graph state (4 data vertices, 3
    check vertices, 9 edges) in the code state's local-Clifford class.

    Returns
    -------
    GraphState
        A 7-vertex graph state representing the Steane code state.
    """
    # Hamming [7,4] in standard form [I_3 | A]: A's columns are the syndromes
    # (1,1,0), (1,0,1), (0,1,1), (1,1,1) of the four data positions.
    return _css_x_check_graph(
        num_data=4,
        x_checks=[(0, 1, 3), (0, 2, 3), (1, 2, 3)],
    )


def rotated_surface_code_graph(distance: int) -> GraphState:
    """The rotated surface code of odd ``distance`` as a graph state.

    Vertices are the ``distance**2`` data qubits of the rotated layout plus
    one vertex per X-type plaquette (``(distance**2 - 1) / 2`` of them), with
    an edge wherever a plaquette touches a data qubit — the CSS Tanner-graph
    construction restricted to the X checks.  This is the resource the
    fusion-based and emitter-based surface-code proposals generate photonic
    fragments of.

    Parameters
    ----------
    distance : int
        Code distance; odd and at least 3.

    Returns
    -------
    GraphState
        Graph state on ``distance**2 + (distance**2 - 1) // 2`` vertices.
    """
    if distance < 3 or distance % 2 == 0:
        raise ValueError(f"distance must be odd and >= 3, got {distance}")
    d = distance
    x_checks: list[tuple[int, ...]] = []
    for r in range(d + 1):
        for c in range(d + 1):
            support = tuple(
                rr * d + cc
                for rr, cc in ((r - 1, c - 1), (r - 1, c), (r, c - 1), (r, c))
                if 0 <= rr < d and 0 <= cc < d
            )
            if len(support) < 2:
                continue  # corner positions carry no stabilizer
            is_x_type = (r + c) % 2 == 0
            interior = 1 <= r <= d - 1 and 1 <= c <= d - 1
            # Boundary plaquettes exist only on two of the four sides: X-type
            # semicircles on the top/bottom rows, Z-type on the left/right
            # columns (the defining truncation of the rotated layout).
            if not interior and (c == 0 or c == d):
                continue  # left/right boundary: Z-type only, not in the graph
            if not interior and not is_x_type:
                continue  # top/bottom boundary keeps only X-type plaquettes
            if is_x_type:
                x_checks.append(support)
    return _css_x_check_graph(num_data=d * d, x_checks=x_checks)


def benchmark_graph(
    family: str,
    num_vertices: int,
    seed: int | np.random.Generator | None = None,
) -> GraphState:
    """Build a benchmark graph of roughly ``num_vertices`` vertices.

    ``family`` is one of ``"lattice"``, ``"tree"`` or ``"random"`` (Waxman),
    matching the paper's three benchmark columns.  Lattice sizes are rounded
    to the closest feasible ``rows x cols`` rectangle (as square as possible),
    so the returned graph may have slightly fewer vertices than requested;
    tree and random graphs match the request exactly.
    """
    check_positive("num_vertices", num_vertices)
    family = family.lower()
    if family == "lattice":
        rows = max(2, int(math.floor(math.sqrt(num_vertices))))
        cols = max(2, num_vertices // rows)
        return lattice_graph(rows, cols)
    if family == "tree":
        return random_tree(num_vertices, seed=seed)
    if family in ("random", "waxman"):
        return waxman_graph(num_vertices, seed=seed)
    raise ValueError(
        f"unknown benchmark family {family!r}; expected 'lattice', 'tree' or 'random'"
    )
