"""Lazy, region-chunked generator specs for very large graph families.

The streaming partition-compile pipeline (:mod:`repro.core.streaming`) never
materialises the target graph: it walks a *lazy generator spec* region by
region, admitting each region's vertices and edges into a bounded working
window.  A spec therefore has to expose its family through a random-access
regional interface rather than one big :class:`networkx` object:

* ``region(j)`` — the vertex ids of region ``j`` (ascending; the regions
  partition ``0..n-1`` minus the pinned hub set);
* ``region_edges(j)`` — every edge incident to region ``j`` whose other
  endpoint lies in region ``j`` itself, region ``j + 1`` or the pinned set
  (each edge of the graph is yielded by exactly one region);
* ``pinned()`` — high-degree hub vertices (e.g. a GHZ star centre) that must
  stay in the window for the whole compile.

The *region locality contract* — every edge connects vertices at most one
region apart, or a pinned hub — is what bounds the streaming window: regions
are admitted in descending order and a region's photons can be reduced as
soon as the next-lower region is present.  Stochastic families must be
**memoryless**: :class:`PercolatedLatticeStreamSpec` decides each edge with a
deterministic per-edge hash of ``(seed, u, v)`` so that region ``j`` can be
generated without replaying the RNG stream of regions ``0..j-1``.

``materialize()`` builds the identical graph eagerly; it exists for the
bit-identity oracle tests and the CLI's ``--stream --verify`` path, and is
obviously only usable at small sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.graphs.graph_state import GraphState
from repro.utils.misc import check_positive

__all__ = [
    "GHZStreamSpec",
    "LatticeStreamSpec",
    "PercolatedLatticeStreamSpec",
    "STREAM_FAMILIES",
    "make_stream_spec",
]

Edge = tuple[int, int]

#: Families the streaming pipeline can walk lazily.
STREAM_FAMILIES = ("lattice", "percolated", "ghz")

_MASK64 = (1 << 64) - 1


def _mix64(seed: int, u: int, v: int) -> float:
    """Deterministic per-edge uniform deviate in ``[0, 1)`` (splitmix-style).

    Depends only on ``(seed, u, v)``, so edge decisions are random-access:
    any region can be generated without an RNG stream shared across regions.
    """
    x = (
        (seed + 0x9E3779B97F4A7C15) * 0xBF58476D1CE4E5B9
        + u * 0x94D049BB133111EB
        + v * 0xD6E8FEB86659FD93
    ) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x / 2.0**64


@dataclass(frozen=True)
class LatticeStreamSpec:
    """A ``rows x cols`` square-grid cluster state, chunked into row bands.

    Vertex ``(r, c)`` is labelled ``r * cols + c`` exactly like
    :func:`repro.graphs.generators.lattice_graph`; region ``j`` holds rows
    ``j * chunk_rows .. min((j + 1) * chunk_rows, rows) - 1``, so the
    streaming window never exceeds two bands (``O(chunk_rows * cols)``
    vertices) regardless of ``rows``.
    """

    rows: int
    cols: int
    chunk_rows: int = 4

    family = "lattice"

    def __post_init__(self) -> None:
        check_positive("rows", self.rows)
        check_positive("cols", self.cols)
        check_positive("chunk_rows", self.chunk_rows)

    @property
    def num_vertices(self) -> int:
        return self.rows * self.cols

    @property
    def num_regions(self) -> int:
        return -(-self.rows // self.chunk_rows)

    def pinned(self) -> tuple[int, ...]:
        return ()

    def _band(self, j: int) -> range:
        if not 0 <= j < self.num_regions:
            raise IndexError(f"region {j} out of range (0..{self.num_regions - 1})")
        return range(j * self.chunk_rows, min((j + 1) * self.chunk_rows, self.rows))

    def region(self, j: int) -> range:
        band = self._band(j)
        return range(band.start * self.cols, band.stop * self.cols)

    def _candidate_edges(self, j: int) -> Iterator[Edge]:
        for r in self._band(j):
            for c in range(self.cols):
                v = r * self.cols + c
                if c + 1 < self.cols:
                    yield (v, v + 1)
                if r + 1 < self.rows:
                    yield (v, v + self.cols)

    def region_edges(self, j: int) -> Iterator[Edge]:
        return self._candidate_edges(j)

    def materialize(self) -> GraphState:
        from repro.graphs.generators import lattice_graph

        return lattice_graph(self.rows, self.cols)


@dataclass(frozen=True)
class PercolatedLatticeStreamSpec(LatticeStreamSpec):
    """Bond-percolated lattice with memoryless, hash-decided edges.

    Every grid edge survives independently with probability ``survival``,
    decided by :func:`_mix64` on ``(seed, u, v)`` — no RNG stream, so any
    region is generated in isolation.  Unlike
    :func:`repro.graphs.generators.percolated_lattice` there is no
    connectivity repair (repair needs the global component structure, which a
    streaming walk never holds); the compiler handles disconnected defect
    states natively, so no repair is needed for correctness.
    """

    survival: float = 0.85
    seed: int = 11

    family = "percolated"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.survival <= 1.0:
            raise ValueError(f"survival must be in (0, 1], got {self.survival}")

    def region_edges(self, j: int) -> Iterator[Edge]:
        for u, v in self._candidate_edges(j):
            if _mix64(self.seed, u, v) < self.survival:
                yield (u, v)

    def materialize(self) -> GraphState:
        graph = GraphState(vertices=range(self.num_vertices))
        for j in range(self.num_regions):
            for u, v in self.region_edges(j):
                graph.add_edge(u, v)
        return graph


@dataclass(frozen=True)
class GHZStreamSpec:
    """The ``n``-qubit GHZ star graph, leaves chunked, hub pinned.

    Matches :func:`repro.graphs.generators.ghz_graph` (star representation):
    vertex 0 is the centre, every other vertex is a leaf attached to it.  The
    centre is *pinned* — admitted before the first region and reduced after
    the last — because every region touches it; the window therefore holds
    one leaf chunk plus the hub.
    """

    num_vertices: int
    chunk: int = 1024

    family = "ghz"

    def __post_init__(self) -> None:
        check_positive("num_vertices", self.num_vertices)
        check_positive("chunk", self.chunk)

    @property
    def num_regions(self) -> int:
        return max(1, -(-(self.num_vertices - 1) // self.chunk))

    def pinned(self) -> tuple[int, ...]:
        return (0,)

    def region(self, j: int) -> range:
        if not 0 <= j < self.num_regions:
            raise IndexError(f"region {j} out of range (0..{self.num_regions - 1})")
        start = 1 + j * self.chunk
        return range(start, min(start + self.chunk, self.num_vertices))

    def region_edges(self, j: int) -> Iterator[Edge]:
        for leaf in self.region(j):
            yield (0, leaf)

    def materialize(self) -> GraphState:
        from repro.graphs.generators import ghz_graph

        return ghz_graph(self.num_vertices)


def make_stream_spec(
    family: str,
    size: int,
    seed: int = 11,
    chunk: int | None = None,
    survival: float = 0.85,
) -> "LatticeStreamSpec | PercolatedLatticeStreamSpec | GHZStreamSpec":
    """Build a stream spec from the batch pipeline's ``(family, size, seed)``.

    Grid families round ``size`` down to the closest ``rows x cols``
    rectangle using the same convention as
    :class:`repro.pipeline.jobs.GraphSpec` (``rows = floor(sqrt(size))``),
    so a streamed job targets the same shape as its materialised twin.
    ``chunk`` is the region size (lattice rows per band, GHZ leaves per
    chunk); ``None`` picks the family default.
    """
    if family not in STREAM_FAMILIES:
        raise ValueError(
            f"unknown streaming family {family!r}; expected one of {STREAM_FAMILIES}"
        )
    check_positive("size", size)
    if family == "ghz":
        return GHZStreamSpec(num_vertices=size, chunk=chunk or 1024)
    rows = max(2, int(math.floor(math.sqrt(size))))
    cols = max(2, size // rows)
    if family == "lattice":
        return LatticeStreamSpec(rows=rows, cols=cols, chunk_rows=chunk or 4)
    return PercolatedLatticeStreamSpec(
        rows=rows, cols=cols, chunk_rows=chunk or 4, survival=survival, seed=seed
    )
