"""Local complementation (LC) of graph states.

Applying the local Clifford unitary

``U_v = exp(-i pi/4 X_v)  *  prod_{b in N(v)} exp(+i pi/4 Z_b)``

to a graph state ``|G>`` produces the graph state ``|tau_v(G)>`` where
``tau_v`` complements the edge set inside the neighbourhood of ``v``
(Van den Nest, Dehaene & De Moor 2004; Hein et al. 2006).  Because the unitary
is a tensor product of single-qubit Cliffords, generating an LC-equivalent
graph only costs extra single-qubit gates — the cheapest resource in the
emitter-photon setting — which the paper exploits to reduce both the overall
edge count and the number of inter-subgraph ("stem") edges.

Finding the optimal LC sequence is #P-complete (Dahlberg, Helsen & Wehner
2020), so this module also provides bounded greedy searches used by the
partitioner (:mod:`repro.core.partition`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, Sequence

from repro.graphs.graph_state import GraphState
from repro.utils.backend import DENSE, resolve_backend
from repro.utils.misc import iter_bits

__all__ = [
    "LCOperation",
    "local_complement",
    "apply_lc_sequence",
    "lc_correction_gates",
    "lc_toggle_deltas",
    "minimize_edges_by_lc",
    "greedy_lc_for_objective",
]

Vertex = Hashable


@dataclass(frozen=True)
class LCOperation:
    """A single local complementation applied at ``vertex``.

    ``neighborhood`` records the open neighbourhood *at the time the operation
    was applied*; it is needed to reconstruct the exact local-Clifford
    correction gates later (the neighbourhood changes as further LC operations
    are applied).
    """

    vertex: Vertex
    neighborhood: tuple[Vertex, ...]

    def __repr__(self) -> str:
        return f"LC({self.vertex!r}; N={list(self.neighborhood)!r})"


def local_complement(graph: GraphState, vertex: Vertex) -> tuple[GraphState, LCOperation]:
    """Return ``(tau_vertex(graph), operation_record)`` without mutating input."""
    new_graph = graph.copy()
    neighborhood = tuple(sorted(new_graph.neighbors(vertex), key=repr))
    new_graph.local_complement(vertex)
    return new_graph, LCOperation(vertex=vertex, neighborhood=neighborhood)


def apply_lc_sequence(
    graph: GraphState, vertices: Sequence[Vertex]
) -> tuple[GraphState, list[LCOperation]]:
    """Apply LC at each vertex of ``vertices`` in order.

    Returns the transformed graph together with the operation records (with
    per-step neighbourhoods) needed to build the correction unitaries.
    """
    current = graph.copy()
    operations: list[LCOperation] = []
    for vertex in vertices:
        current, op = local_complement(current, vertex)
        operations.append(op)
    return current, operations


def lc_correction_gates(
    operations: Iterable[LCOperation], inverse: bool = False
) -> list[tuple[str, Vertex]]:
    """Single-qubit gates realising an LC sequence (or its inverse).

    Applying LC at ``v`` maps ``|G>`` to ``|tau_v(G)>`` via
    ``sqrt_x_dag`` ... — concretely the gate list returned here uses the
    package-wide convention (validated in ``tests/test_local_complementation.py``
    against the stabilizer simulator):

    * forward (``inverse=False``): gates that map ``|G>`` onto ``|tau_v(G)>``,
      i.e. ``SQRT_X`` on ``v`` and ``SDG`` on each recorded neighbour (gate
      names follow :mod:`repro.circuit.gates`).
    * inverse (``inverse=True``): gates that map ``|tau_v(G)>`` back onto
      ``|G>``; the sequence order is reversed and each gate inverted.

    The inverse direction is what the compiler appends to a generation circuit
    for an LC-optimised graph so that the *original* target graph state is
    produced exactly.
    """
    forward: list[list[tuple[str, Vertex]]] = []
    for op in operations:
        step = [("SQRT_X", op.vertex)]
        step.extend(("SDG", b) for b in op.neighborhood)
        forward.append(step)
    if not inverse:
        return [gate for step in forward for gate in step]
    inverted: list[tuple[str, Vertex]] = []
    inverse_name = {"SQRT_X": "SQRT_X_DAG", "SDG": "S", "S": "SDG", "SQRT_X_DAG": "SQRT_X"}
    for step in reversed(forward):
        for name, vertex in reversed(step):
            inverted.append((inverse_name[name], vertex))
    return inverted


def lc_toggle_deltas(
    graph: GraphState, block_of: Mapping[Vertex, int] | None = None
) -> dict[Vertex, tuple[int, int]]:
    """Exact per-vertex ``(edge delta, cut delta)`` of one LC, from packed rows.

    For every vertex ``v`` with degree >= 2 the returned dict holds how the
    total edge count — and, when ``block_of`` maps vertices to partition
    blocks, the inter-block cut size — would change if ``tau_v`` were
    applied.  LC toggles exactly the pairs inside ``N(v)``, so with
    ``d = deg(v)`` and ``m`` edges currently inside the neighbourhood the
    edge delta is ``C(d, 2) - 2m``; the cut delta is the same expression
    restricted to cross-block pairs.  Everything is computed from the cached
    :meth:`~repro.graphs.graph_state.GraphState.packed_adjacency` rows with
    popcounts — no graph copies, no trial mutations — which is what lets the
    partitioner's LC search score every candidate vertex in
    ``O(E * n / 64)`` total.

    Vertices missing from ``block_of`` are treated as singleton blocks,
    matching :meth:`GraphState.cut_edges`.
    """
    packed = graph.packed_adjacency()
    index = packed.index
    rows = packed.rows

    masks: dict[tuple[str, int], int] = {}
    block_mask: list[int] | None = None
    if block_of is not None:
        next_singleton = -1
        for v, i in index.items():
            if v in block_of:
                key = ("b", block_of[v])
            else:
                key = ("s", next_singleton)
                next_singleton -= 1
            masks[key] = masks.get(key, 0) | (1 << i)
        block_mask = [0] * len(index)
        for mask in masks.values():
            for i in iter_bits(mask):
                block_mask[i] = mask

    deltas: dict[Vertex, tuple[int, int]] = {}
    for v, iv in index.items():
        neighbourhood = rows[iv]
        degree = neighbourhood.bit_count()
        if degree < 2:
            continue
        pairs = degree * (degree - 1) // 2
        twice_inside = 0
        twice_same_block = 0
        for iu in iter_bits(neighbourhood):
            inside = rows[iu] & neighbourhood
            twice_inside += inside.bit_count()
            if block_mask is not None:
                twice_same_block += (inside & block_mask[iu]).bit_count()
        edges_inside = twice_inside // 2
        edge_delta = pairs - 2 * edges_inside
        if block_mask is None:
            deltas[v] = (edge_delta, 0)
            continue
        same_pairs = 0
        for mask in masks.values():
            in_block = (neighbourhood & mask).bit_count()
            same_pairs += in_block * (in_block - 1) // 2
        cross_pairs = pairs - same_pairs
        cross_edges = edges_inside - twice_same_block // 2
        deltas[v] = (edge_delta, cross_pairs - 2 * cross_edges)
    return deltas


def minimize_edges_by_lc(
    graph: GraphState, max_operations: int
) -> tuple[GraphState, list[LCOperation]]:
    """Greedy depth-limited LC search minimising the total edge count.

    At each step the vertex whose local complementation removes the most edges
    is applied; the search stops after ``max_operations`` steps or when no
    vertex strictly improves the edge count.  This is the polynomial-time
    stand-in for the (#P-complete) optimal LC search.

    On the ``packed`` backend each step scores every vertex via
    :func:`lc_toggle_deltas` (popcounts over the cached packed rows) instead
    of copying the graph per candidate; the chosen vertex is identical to
    the dense path's because the deltas are exact.
    """
    if max_operations < 0:
        raise ValueError(f"max_operations must be >= 0, got {max_operations}")
    if resolve_backend(None) == DENSE:
        return greedy_lc_for_objective(
            graph, max_operations, objective=lambda g: g.num_edges
        )
    current = graph.copy()
    operations: list[LCOperation] = []
    current_score = current.num_edges
    for _ in range(max_operations):
        deltas = lc_toggle_deltas(current)
        best_vertex = None
        best_score = current_score
        for vertex in current.vertices():
            delta = deltas.get(vertex)
            if delta is None:  # degree < 2: LC is a no-op
                continue
            score = current_score + delta[0]
            if score < best_score:
                best_score = score
                best_vertex = vertex
        if best_vertex is None:
            break
        current, op = local_complement(current, best_vertex)
        operations.append(op)
        current_score = best_score
    return current, operations


def greedy_lc_for_objective(
    graph: GraphState,
    max_operations: int,
    objective,
) -> tuple[GraphState, list[LCOperation]]:
    """Greedy depth-limited LC search minimising an arbitrary ``objective``.

    Args:
        graph: starting graph (not mutated).
        max_operations: maximum number of LC operations (the paper's ``l``).
        objective: callable ``GraphState -> float``; lower is better.

    Returns:
        The best graph found and the LC operations that produce it (in
        application order).
    """
    if max_operations < 0:
        raise ValueError(f"max_operations must be >= 0, got {max_operations}")
    current = graph.copy()
    operations: list[LCOperation] = []
    current_score = objective(current)
    for _ in range(max_operations):
        best_vertex = None
        best_score = current_score
        for vertex in current.vertices():
            if current.degree(vertex) < 2:
                # LC at a vertex with fewer than two neighbours is a no-op.
                continue
            candidate = current.copy()
            candidate.local_complement(vertex)
            score = objective(candidate)
            if score < best_score:
                best_score = score
                best_vertex = vertex
        if best_vertex is None:
            break
        current, op = local_complement(current, best_vertex)
        operations.append(op)
        current_score = best_score
    return current, operations
