"""Local complementation (LC) of graph states.

Applying the local Clifford unitary

``U_v = exp(-i pi/4 X_v)  *  prod_{b in N(v)} exp(+i pi/4 Z_b)``

to a graph state ``|G>`` produces the graph state ``|tau_v(G)>`` where
``tau_v`` complements the edge set inside the neighbourhood of ``v``
(Van den Nest, Dehaene & De Moor 2004; Hein et al. 2006).  Because the unitary
is a tensor product of single-qubit Cliffords, generating an LC-equivalent
graph only costs extra single-qubit gates — the cheapest resource in the
emitter-photon setting — which the paper exploits to reduce both the overall
edge count and the number of inter-subgraph ("stem") edges.

Finding the optimal LC sequence is #P-complete (Dahlberg, Helsen & Wehner
2020), so this module also provides bounded greedy searches used by the
partitioner (:mod:`repro.core.partition`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from repro.graphs.graph_state import GraphState

__all__ = [
    "LCOperation",
    "local_complement",
    "apply_lc_sequence",
    "lc_correction_gates",
    "minimize_edges_by_lc",
    "greedy_lc_for_objective",
]

Vertex = Hashable


@dataclass(frozen=True)
class LCOperation:
    """A single local complementation applied at ``vertex``.

    ``neighborhood`` records the open neighbourhood *at the time the operation
    was applied*; it is needed to reconstruct the exact local-Clifford
    correction gates later (the neighbourhood changes as further LC operations
    are applied).
    """

    vertex: Vertex
    neighborhood: tuple[Vertex, ...]

    def __repr__(self) -> str:
        return f"LC({self.vertex!r}; N={list(self.neighborhood)!r})"


def local_complement(graph: GraphState, vertex: Vertex) -> tuple[GraphState, LCOperation]:
    """Return ``(tau_vertex(graph), operation_record)`` without mutating input."""
    new_graph = graph.copy()
    neighborhood = tuple(sorted(new_graph.neighbors(vertex), key=repr))
    new_graph.local_complement(vertex)
    return new_graph, LCOperation(vertex=vertex, neighborhood=neighborhood)


def apply_lc_sequence(
    graph: GraphState, vertices: Sequence[Vertex]
) -> tuple[GraphState, list[LCOperation]]:
    """Apply LC at each vertex of ``vertices`` in order.

    Returns the transformed graph together with the operation records (with
    per-step neighbourhoods) needed to build the correction unitaries.
    """
    current = graph.copy()
    operations: list[LCOperation] = []
    for vertex in vertices:
        current, op = local_complement(current, vertex)
        operations.append(op)
    return current, operations


def lc_correction_gates(
    operations: Iterable[LCOperation], inverse: bool = False
) -> list[tuple[str, Vertex]]:
    """Single-qubit gates realising an LC sequence (or its inverse).

    Applying LC at ``v`` maps ``|G>`` to ``|tau_v(G)>`` via
    ``sqrt_x_dag`` ... — concretely the gate list returned here uses the
    package-wide convention (validated in ``tests/test_local_complementation.py``
    against the stabilizer simulator):

    * forward (``inverse=False``): gates that map ``|G>`` onto ``|tau_v(G)>``,
      i.e. ``SQRT_X`` on ``v`` and ``SDG`` on each recorded neighbour (gate
      names follow :mod:`repro.circuit.gates`).
    * inverse (``inverse=True``): gates that map ``|tau_v(G)>`` back onto
      ``|G>``; the sequence order is reversed and each gate inverted.

    The inverse direction is what the compiler appends to a generation circuit
    for an LC-optimised graph so that the *original* target graph state is
    produced exactly.
    """
    forward: list[list[tuple[str, Vertex]]] = []
    for op in operations:
        step = [("SQRT_X", op.vertex)]
        step.extend(("SDG", b) for b in op.neighborhood)
        forward.append(step)
    if not inverse:
        return [gate for step in forward for gate in step]
    inverted: list[tuple[str, Vertex]] = []
    inverse_name = {"SQRT_X": "SQRT_X_DAG", "SDG": "S", "S": "SDG", "SQRT_X_DAG": "SQRT_X"}
    for step in reversed(forward):
        for name, vertex in reversed(step):
            inverted.append((inverse_name[name], vertex))
    return inverted


def minimize_edges_by_lc(
    graph: GraphState, max_operations: int
) -> tuple[GraphState, list[LCOperation]]:
    """Greedy depth-limited LC search minimising the total edge count.

    At each step the vertex whose local complementation removes the most edges
    is applied; the search stops after ``max_operations`` steps or when no
    vertex strictly improves the edge count.  This is the polynomial-time
    stand-in for the (#P-complete) optimal LC search.
    """
    if max_operations < 0:
        raise ValueError(f"max_operations must be >= 0, got {max_operations}")
    return greedy_lc_for_objective(
        graph, max_operations, objective=lambda g: g.num_edges
    )


def greedy_lc_for_objective(
    graph: GraphState,
    max_operations: int,
    objective,
) -> tuple[GraphState, list[LCOperation]]:
    """Greedy depth-limited LC search minimising an arbitrary ``objective``.

    Args:
        graph: starting graph (not mutated).
        max_operations: maximum number of LC operations (the paper's ``l``).
        objective: callable ``GraphState -> float``; lower is better.

    Returns:
        The best graph found and the LC operations that produce it (in
        application order).
    """
    if max_operations < 0:
        raise ValueError(f"max_operations must be >= 0, got {max_operations}")
    current = graph.copy()
    operations: list[LCOperation] = []
    current_score = objective(current)
    for _ in range(max_operations):
        best_vertex = None
        best_score = current_score
        for vertex in current.vertices():
            if current.degree(vertex) < 2:
                # LC at a vertex with fewer than two neighbours is a no-op.
                continue
            candidate = current.copy()
            candidate.local_complement(vertex)
            score = objective(candidate)
            if score < best_score:
                best_score = score
                best_vertex = vertex
        if best_vertex is None:
            break
        current, op = local_complement(current, best_vertex)
        operations.append(op)
        current_score = best_score
    return current, operations
