"""Graph-state representation, benchmark generators and graph transformations.

Modules
-------

* :mod:`repro.graphs.graph_state` — the :class:`GraphState` container used by
  the whole compiler (thin, validated wrapper around ``networkx.Graph``).
* :mod:`repro.graphs.generators` — the benchmark families of the paper
  (2-D lattice, tree, Waxman random graph), common extras (linear cluster,
  ring, star/GHZ, complete, repeater graph state) and the scenario zoo
  (random regular, Watts–Strogatz small world, Erdős–Rényi, percolated
  lattice, GHZ/Steane/rotated-surface-code graph states).
* :mod:`repro.graphs.local_complementation` — local complementation (LC)
  rewrites, LC sequences and the single-qubit Clifford corrections they imply.
* :mod:`repro.graphs.entanglement` — cut rank / height function and the
  minimal-emitter bound of Li, Economou & Barnes (2022).
* :mod:`repro.graphs.incremental` — the incremental cut-rank engine: one
  online GF(2) echelon sweep per ordering, with prefix checkpoints for
  ordering searches.
* :mod:`repro.graphs.canonical_form` — exact canonical labeling for small
  graphs (the leaf regime), the key of the isomorphism-memoized subgraph
  compile cache.
"""

from repro.graphs.canonical_form import (
    CanonicalForm,
    CanonicalizationBudgetError,
    canonical_form,
)
from repro.graphs.graph_state import GraphState, PackedAdjacency
from repro.graphs.incremental import CutRankEngine, incremental_height_function
from repro.graphs.generators import (
    complete_graph,
    erdos_renyi_graph,
    ghz_graph,
    lattice_graph,
    linear_cluster,
    percolated_lattice,
    random_regular_graph,
    random_tree,
    repeater_graph_state,
    ring_graph,
    rotated_surface_code_graph,
    star_graph,
    steane_code_graph,
    tree_graph,
    watts_strogatz_graph,
    waxman_graph,
)
from repro.graphs.local_complementation import (
    LCOperation,
    apply_lc_sequence,
    lc_correction_gates,
    local_complement,
    minimize_edges_by_lc,
)
from repro.graphs.entanglement import (
    cut_rank,
    height_function,
    minimum_emitters,
)

__all__ = [
    "CanonicalForm",
    "CanonicalizationBudgetError",
    "canonical_form",
    "GraphState",
    "PackedAdjacency",
    "CutRankEngine",
    "incremental_height_function",
    "complete_graph",
    "erdos_renyi_graph",
    "ghz_graph",
    "lattice_graph",
    "linear_cluster",
    "percolated_lattice",
    "random_regular_graph",
    "random_tree",
    "repeater_graph_state",
    "ring_graph",
    "rotated_surface_code_graph",
    "star_graph",
    "steane_code_graph",
    "tree_graph",
    "watts_strogatz_graph",
    "waxman_graph",
    "LCOperation",
    "apply_lc_sequence",
    "lc_correction_gates",
    "local_complement",
    "minimize_edges_by_lc",
    "cut_rank",
    "height_function",
    "minimum_emitters",
]
