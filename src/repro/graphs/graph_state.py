"""The :class:`GraphState` container.

A graph state ``|G>`` is fully described by its underlying simple undirected
graph ``G = (V, E)``: prepare ``|+>`` on every vertex and apply a CZ for every
edge.  The compiler therefore manipulates plain graphs; this class wraps
:class:`networkx.Graph` with the small amount of validation and the helper
operations (edge toggling, local complementation, induced subgraphs,
conversion to a stabilizer tableau) that the rest of the package relies on.

Vertex labels may be arbitrary hashable objects; the compilation pipeline
normalises them to ``0..n-1`` integers via :meth:`GraphState.relabeled`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator

import networkx as nx

from repro.stabilizer.tableau import StabilizerState
from repro.utils.misc import normalize_edge

__all__ = ["GraphState", "PackedAdjacency"]

Vertex = Hashable


@dataclass(frozen=True)
class PackedAdjacency:
    """Word-packed adjacency snapshot of a :class:`GraphState`.

    Each adjacency row is one arbitrary-precision Python integer whose bit
    ``index[w]`` is set iff the row's vertex is adjacent to ``w``.  Rows in
    this form XOR/AND as whole machine-word runs (CPython big-int ops), which
    is what the cut-rank kernels of :mod:`repro.graphs.entanglement` and
    :mod:`repro.graphs.incremental` eliminate on.

    The snapshot is immutable; :meth:`GraphState.packed_adjacency` caches one
    per graph and invalidates it on any mutation.
    """

    index: dict[Vertex, int]
    rows: tuple[int, ...]
    full_mask: int

    @property
    def num_vertices(self) -> int:
        return len(self.rows)


class GraphState:
    """A photonic graph state described by its underlying simple graph."""

    def __init__(
        self,
        vertices: Iterable[Vertex] | None = None,
        edges: Iterable[tuple[Vertex, Vertex]] | None = None,
    ):
        self._graph = nx.Graph()
        self._packed_adjacency: PackedAdjacency | None = None
        if vertices is not None:
            self._graph.add_nodes_from(vertices)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_networkx(cls, graph: nx.Graph) -> "GraphState":
        """Build a :class:`GraphState` from an existing ``networkx`` graph.

        Self-loops are rejected (they have no meaning for graph states);
        parallel edges cannot occur because ``nx.Graph`` is simple.
        """
        state = cls()
        state._graph.add_nodes_from(graph.nodes)
        for u, v in graph.edges:
            if u == v:
                raise ValueError(f"graph states cannot contain self-loops ({u!r})")
            state._graph.add_edge(u, v)
        return state

    def copy(self) -> "GraphState":
        """Return a deep copy (vertex labels are shared, structure is not).

        The packed-adjacency snapshot is carried over: it is an immutable
        value of the same structure, so sharing it is safe and keeps the
        copy-then-mutate loops (the partitioner's LC search) on the cheap
        row-XOR update path instead of rebuilding the rows per copy.
        """
        clone = GraphState()
        clone._graph = self._graph.copy()
        clone._packed_adjacency = self._packed_adjacency
        return clone

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #

    @property
    def graph(self) -> nx.Graph:
        """The underlying ``networkx`` graph.

        Mutating it directly bypasses validation *and* the packed-adjacency
        cache invalidation; prefer the :class:`GraphState` mutators.
        """
        return self._graph

    @property
    def num_vertices(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        return self._graph.number_of_edges()

    def vertices(self) -> list[Vertex]:
        """Vertices in insertion order."""
        return list(self._graph.nodes)

    def edges(self) -> list[tuple[Vertex, Vertex]]:
        """Edges with canonically ordered endpoints."""
        return [normalize_edge(u, v) for u, v in self._graph.edges]

    def has_vertex(self, v: Vertex) -> bool:
        return self._graph.has_node(v)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return self._graph.has_edge(u, v)

    def neighbors(self, v: Vertex) -> set[Vertex]:
        """The open neighbourhood of ``v``."""
        if not self._graph.has_node(v):
            raise KeyError(f"vertex {v!r} not in graph")
        return set(self._graph.neighbors(v))

    def degree(self, v: Vertex) -> int:
        if not self._graph.has_node(v):
            raise KeyError(f"vertex {v!r} not in graph")
        return int(self._graph.degree[v])

    def is_connected(self) -> bool:
        """True when the graph has a single connected component (or is empty)."""
        if self.num_vertices == 0:
            return True
        return nx.is_connected(self._graph)

    def connected_components(self) -> list[set[Vertex]]:
        return [set(c) for c in nx.connected_components(self._graph)]

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._graph.nodes)

    def __len__(self) -> int:
        return self.num_vertices

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphState):
            return NotImplemented
        return set(self._graph.nodes) == set(other._graph.nodes) and set(
            self.edges()
        ) == set(other.edges())

    def __hash__(self) -> int:  # GraphState is mutable; keep identity hash off.
        raise TypeError("GraphState is mutable and therefore unhashable")

    def __repr__(self) -> str:
        return (
            f"GraphState(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )

    # ------------------------------------------------------------------ #
    # Packed adjacency cache
    # ------------------------------------------------------------------ #

    def _invalidate_packed_adjacency(self) -> None:
        self._packed_adjacency = None

    def packed_adjacency(self) -> PackedAdjacency:
        """Cached :class:`PackedAdjacency` of the current graph.

        Built once in ``O(V + E)`` and reused by every cut-rank query until
        the graph mutates (any :class:`GraphState` mutator invalidates it).
        Repeated :func:`repro.graphs.entanglement.cut_rank` calls therefore
        stop paying the per-call quadratic matrix-rebuild cost.
        """
        cached = self._packed_adjacency
        if cached is not None:
            return cached
        index = {v: i for i, v in enumerate(self._graph.nodes)}
        rows = [0] * len(index)
        for u, v in self._graph.edges:
            i, j = index[u], index[v]
            rows[i] |= 1 << j
            rows[j] |= 1 << i
        packed = PackedAdjacency(
            index=index,
            rows=tuple(rows),
            full_mask=(1 << len(index)) - 1,
        )
        self._packed_adjacency = packed
        return packed

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add_vertex(self, v: Vertex) -> None:
        self._invalidate_packed_adjacency()
        self._graph.add_node(v)

    def remove_vertex(self, v: Vertex) -> None:
        """Remove ``v`` and all incident edges."""
        if not self._graph.has_node(v):
            raise KeyError(f"vertex {v!r} not in graph")
        self._invalidate_packed_adjacency()
        self._graph.remove_node(v)

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        if u == v:
            raise ValueError(f"graph states cannot contain self-loops ({u!r})")
        self._invalidate_packed_adjacency()
        self._graph.add_edge(u, v)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        if not self._graph.has_edge(u, v):
            raise KeyError(f"edge ({u!r}, {v!r}) not in graph")
        self._invalidate_packed_adjacency()
        self._graph.remove_edge(u, v)

    def toggle_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the edge when absent, remove it when present (CZ semantics)."""
        if u == v:
            raise ValueError(f"graph states cannot contain self-loops ({u!r})")
        self._invalidate_packed_adjacency()
        if self._graph.has_edge(u, v):
            self._graph.remove_edge(u, v)
        else:
            self._graph.add_edge(u, v)

    def local_complement(self, v: Vertex) -> None:
        """Apply local complementation at ``v`` in place.

        Every pair of neighbours of ``v`` has its edge toggled; edges incident
        to ``v`` itself are untouched.  See
        :mod:`repro.graphs.local_complementation` for the unitary this
        corresponds to on the quantum state.

        When a :class:`PackedAdjacency` snapshot is cached it is *updated* by
        row XOR (``row_u ^= row_v & ~bit_u`` for every neighbour ``u``)
        rather than invalidated, so LC-heavy loops (the partitioner's search,
        cut-rank evaluation after LC) keep their packed rows warm.
        """
        neighbours = list(self.neighbors(v))
        graph = self._graph
        for i in range(len(neighbours)):
            for j in range(i + 1, len(neighbours)):
                u, w = neighbours[i], neighbours[j]
                if graph.has_edge(u, w):
                    graph.remove_edge(u, w)
                else:
                    graph.add_edge(u, w)
        cached = self._packed_adjacency
        if cached is not None:
            mask = cached.rows[cached.index[v]]
            rows = list(cached.rows)
            for u in neighbours:
                iu = cached.index[u]
                rows[iu] ^= mask & ~(1 << iu)
            self._packed_adjacency = PackedAdjacency(
                index=cached.index, rows=tuple(rows), full_mask=cached.full_mask
            )

    # ------------------------------------------------------------------ #
    # Derived structures
    # ------------------------------------------------------------------ #

    def induced_subgraph(self, vertices: Iterable[Vertex]) -> "GraphState":
        """The subgraph induced by ``vertices`` (edges with both ends inside)."""
        vertex_set = set(vertices)
        missing = vertex_set - set(self._graph.nodes)
        if missing:
            raise KeyError(f"vertices not in graph: {sorted(map(repr, missing))}")
        sub = GraphState(vertices=vertex_set)
        for u, v in self._graph.edges:
            if u in vertex_set and v in vertex_set:
                sub.add_edge(u, v)
        return sub

    def cut_edges(self, partition: Iterable[Iterable[Vertex]]) -> list[tuple[Vertex, Vertex]]:
        """Edges whose endpoints lie in different blocks of ``partition``.

        Vertices not covered by the partition are treated as singleton blocks.
        """
        block_of: dict[Vertex, int] = {}
        for index, block in enumerate(partition):
            for v in block:
                if v in block_of:
                    raise ValueError(f"vertex {v!r} appears in more than one block")
                block_of[v] = index
        next_block = len(set(block_of.values())) if block_of else 0
        for v in self._graph.nodes:
            if v not in block_of:
                block_of[v] = next_block
                next_block += 1
        return [
            normalize_edge(u, v)
            for u, v in self._graph.edges
            if block_of[u] != block_of[v]
        ]

    def relabeled(self) -> tuple["GraphState", dict[Vertex, int]]:
        """Return a copy with vertices relabelled to ``0..n-1`` plus the mapping.

        The mapping is ``original_label -> integer`` and follows the current
        vertex insertion order, so it is deterministic.
        """
        mapping = {v: i for i, v in enumerate(self._graph.nodes)}
        relabelled = GraphState(vertices=range(self.num_vertices))
        for u, v in self._graph.edges:
            relabelled.add_edge(mapping[u], mapping[v])
        return relabelled, mapping

    def adjacency_matrix(self, order: list[Vertex] | None = None):
        """Dense 0/1 adjacency matrix following ``order`` (default: node order)."""
        import numpy as np

        if order is None:
            order = list(self._graph.nodes)
        index = {v: i for i, v in enumerate(order)}
        if len(index) != len(order):
            raise ValueError("order contains duplicate vertices")
        matrix = np.zeros((len(order), len(order)), dtype=np.uint8)
        for u, v in self._graph.edges:
            if u in index and v in index:
                matrix[index[u], index[v]] = 1
                matrix[index[v], index[u]] = 1
        return matrix

    def to_stabilizer_state(self, order: list[Vertex] | None = None) -> StabilizerState:
        """Exact stabilizer tableau of ``|G>`` with qubits following ``order``."""
        if order is None:
            order = list(self._graph.nodes)
        index = {v: i for i, v in enumerate(order)}
        edges = [(index[u], index[v]) for u, v in self._graph.edges]
        if len(order) == 0:
            raise ValueError("cannot build the stabilizer state of an empty graph")
        return StabilizerState.from_graph_edges(len(order), edges)
