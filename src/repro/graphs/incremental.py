"""Incremental cut-rank evaluation (:class:`CutRankEngine`).

The dense path of :mod:`repro.graphs.entanglement` evaluates the height
function of an emission ordering by solving one from-scratch GF(2) rank per
prefix: ``O(n)`` rank solves, ``O(n^4 / w)`` per ordering.  This module
maintains the rank *online* so the whole height function falls out of a
single ``O(n^3 / w)`` sweep, and an ordering search that mutates a suffix
pays only for the changed positions.

The trick is to evaluate the cut rank through the stabilizer picture instead
of the bipartite adjacency block.  For a graph state ``|G>`` on vertices
``V`` the stabilizer generator of vertex ``v`` is ``g_v = X_v prod_{w in
N(v)} Z_w``.  The entanglement entropy of a region ``B`` is ``|B| - dim
S_B`` where ``S_B`` is the subgroup of the stabilizer group supported inside
``B``; restriction to the complement qubits is linear with kernel ``S_B``,
so for the suffix region ``B = V \\ A_i`` of a prefix ``A_i = {p_1..p_i}``:

``dim S_B = n - rank(G[:, columns of qubits in A_i])``

and, using entropy symmetry of pure states (``S(A_i) = S(B)``),

``h(i) = cut_rank(A_i) = rank(G[:, columns of A_i qubits]) - i``.

The X column of qubit ``q`` is the indicator vector ``e_q`` (only ``g_q``
has X on ``q``) and the Z column is ``q``'s adjacency row (``g_v`` has Z on
``q`` iff ``v in N(q)``).  Appending photon ``q`` to the prefix therefore
just inserts the two vectors ``e_q`` and ``adj(q)`` into a growing GF(2)
echelon basis — ``O(n^2 / w)`` with integer-packed rows — and the engine
state after ``i`` appends depends only on the prefix, which is what makes
per-position checkpoints (and thus suffix re-evaluation in ordering
searches) possible.

Rows are Python integers in the :class:`repro.graphs.graph_state.
PackedAdjacency` convention; the elimination kernel is shared with
:mod:`repro.utils.gf2_packed`.  On the ``arena`` backend the basis instead
lives in ``np.uint64`` word rows and each insertion is a run of vectorised
XORs — same pivots, same ranks, no big-int allocation per step.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.graphs.graph_state import GraphState, PackedAdjacency
from repro.utils.backend import ARENA, resolve_backend
from repro.utils.gf2_arena import highest_bit_of_words
from repro.utils.gf2_packed import words_per_row

__all__ = ["CutRankEngine", "incremental_height_function"]

Vertex = Hashable


class CutRankEngine:
    """Online cut-rank / height-function evaluator for one graph.

    The engine packs the graph's adjacency once (reusing the
    :meth:`~repro.graphs.graph_state.GraphState.packed_adjacency` cache) and
    then supports:

    * :meth:`append` — extend the current prefix by one photon and get the
      new cut rank in ``O(n^2 / w)``;
    * :meth:`truncate` — roll the prefix back to an earlier checkpoint, so a
      search can mutate an ordering suffix and re-evaluate only from the
      first changed position;
    * :meth:`heights` / :meth:`peak` — evaluate a full ordering, reusing the
      longest common prefix with the previously evaluated one.

    The engine snapshots the graph at construction time: mutate the graph
    and you must build a new engine (``GraphState`` mutators invalidate the
    shared adjacency cache, so a stale engine cannot silently alias fresh
    queries).

    Parameters
    ----------
    graph : GraphState
        The graph state whose cut ranks are queried.
    checkpoint : bool, optional
        Keep per-position snapshots of the echelon basis (default).  Disable
        for one-shot sweeps where :meth:`truncate` is never needed; the
        engine then only supports truncating to the current length or 0.
    backend : str | None, optional
        GF(2) backend override.  ``None`` resolves the process default; the
        ``arena`` basis runs only when selected explicitly (the online insert
        is a single-row operation with nothing to batch, so the packed
        big-int basis stays the faster default).  Heights are identical on
        every backend.
    """

    def __init__(
        self, graph: GraphState, checkpoint: bool = True, backend: str | None = None
    ):
        adjacency: PackedAdjacency = graph.packed_adjacency()
        self._index = adjacency.index
        self._rows = adjacency.rows
        self._num_vertices = adjacency.num_vertices
        self._checkpoint = checkpoint
        self._vertex_set = frozenset(self._index)
        self._arena_mode = resolve_backend(backend) == ARENA
        if self._arena_mode:
            n_words = words_per_row(max(1, self._num_vertices))
            stride = n_words * 8
            raw = b"".join(row.to_bytes(stride, "little") for row in self._rows)
            self._word_rows = np.frombuffer(raw, dtype="<u8").reshape(
                max(1, len(self._rows)), n_words
            ).astype(np.uint64, copy=False)
            self._n_words = n_words
        self.reset()

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #

    @property
    def num_vertices(self) -> int:
        """Number of vertices of the underlying graph."""
        return self._num_vertices

    @property
    def checkpointing(self) -> bool:
        """Whether per-position snapshots (and thus :meth:`truncate`) exist."""
        return self._checkpoint

    @property
    def position(self) -> int:
        """Length of the current prefix."""
        return len(self._prefix)

    @property
    def prefix(self) -> list[Vertex]:
        """The photons appended so far, in order."""
        return list(self._prefix)

    @property
    def heights_so_far(self) -> list[int]:
        """``[h(0), ..., h(position)]`` for the current prefix."""
        return list(self._heights)

    def reset(self) -> None:
        """Clear the prefix (the echelon basis becomes empty)."""
        self._basis: dict[int, int] | dict[int, np.ndarray] = {}
        self._rank = 0
        self._prefix: list[Vertex] = []
        self._used: set[Vertex] = set()
        self._heights: list[int] = [0]
        self._snapshots: list[tuple[int, dict[int, int]]] = [(0, {})]

    # ------------------------------------------------------------------ #
    # Incremental updates
    # ------------------------------------------------------------------ #

    def _insert(self, row: int) -> None:
        """Insert one packed vector into the echelon basis."""
        basis = self._basis
        while row:
            high = row.bit_length() - 1
            pivot = basis.get(high)
            if pivot is None:
                basis[high] = row
                self._rank += 1
                return
            row ^= pivot

    def _insert_words(self, row: np.ndarray) -> None:
        """Arena-mode :meth:`_insert`: the vector is a ``np.uint64`` word row.

        ``row`` must be freshly owned by the caller — it is XOR-mutated in
        place during elimination and stored in the basis on success.  Stored
        basis rows are never mutated afterwards, so snapshots can share them.
        """
        basis = self._basis
        high = highest_bit_of_words(row)
        while high >= 0:
            pivot = basis.get(high)
            if pivot is None:
                basis[high] = row
                self._rank += 1
                return
            row ^= pivot
            high = highest_bit_of_words(row)

    def _append_vectors(self, index: int) -> None:
        """Insert ``e_index`` and ``adj(index)`` into the echelon basis."""
        if self._arena_mode:
            unit = np.zeros(self._n_words, dtype=np.uint64)
            unit[index // 64] = np.uint64(1 << (index % 64))
            self._insert_words(unit)
            self._insert_words(self._word_rows[index].copy())
        else:
            self._insert(1 << index)
            self._insert(self._rows[index])

    def append(self, vertex: Vertex) -> int:
        """Append ``vertex`` to the prefix; return the new cut rank ``h(i)``.

        Raises
        ------
        KeyError
            If ``vertex`` is not in the graph.
        ValueError
            If ``vertex`` is already part of the prefix.
        """
        index = self._index.get(vertex)
        if index is None:
            raise KeyError(f"vertex {vertex!r} not in graph")
        if vertex in self._used:
            raise ValueError(f"vertex {vertex!r} already in the prefix")
        self._append_vectors(index)
        self._prefix.append(vertex)
        self._used.add(vertex)
        height = self._rank - len(self._prefix)
        self._heights.append(height)
        if self._checkpoint:
            self._snapshots.append((self._rank, dict(self._basis)))
        return height

    def truncate(self, length: int) -> None:
        """Roll the prefix back to ``length`` photons (a stored checkpoint).

        With ``checkpoint=False`` only ``length == position`` (no-op) and
        ``length == 0`` (reset) are supported.
        """
        if not 0 <= length <= len(self._prefix):
            raise ValueError(
                f"cannot truncate to length {length} (prefix has "
                f"{len(self._prefix)} photons)"
            )
        if length == len(self._prefix):
            return
        if length == 0:
            self.reset()
            return
        if not self._checkpoint:
            raise ValueError(
                "this engine was built with checkpoint=False; only full reset "
                "is supported"
            )
        for vertex in self._prefix[length:]:
            self._used.discard(vertex)
        del self._prefix[length:]
        del self._heights[length + 1 :]
        del self._snapshots[length + 1 :]
        rank, basis = self._snapshots[length]
        self._rank = rank
        self._basis = dict(basis)

    # ------------------------------------------------------------------ #
    # Whole-ordering evaluation
    # ------------------------------------------------------------------ #

    def _common_prefix_length(self, ordering: Sequence[Vertex]) -> int:
        limit = min(len(self._prefix), len(ordering))
        for i in range(limit):
            if self._prefix[i] != ordering[i]:
                return i
        return limit

    def heights(self, ordering: Sequence[Vertex]) -> list[int]:
        """The full height function of ``ordering`` (length ``n + 1``).

        ``ordering`` must be a permutation of the graph's vertices.  When the
        engine was built with checkpoints, evaluation restarts from the
        longest common prefix with the previously evaluated ordering, so an
        ordering search that mutates a suffix pays only for the tail.
        """
        ordering = list(ordering)
        if len(ordering) != self._num_vertices or set(ordering) != self._vertex_set:
            raise ValueError("ordering must be a permutation of the graph's vertices")
        start = self._common_prefix_length(ordering) if self._checkpoint else 0
        self.truncate(start)
        for vertex in ordering[start:]:
            self.append(vertex)
        return list(self._heights)

    def peak(self, ordering: Sequence[Vertex]) -> int:
        """Maximum of the height function over ``ordering``."""
        return max(self.heights(ordering))


def incremental_height_function(
    graph: GraphState,
    ordering: Sequence[Vertex] | None = None,
    backend: str | None = None,
) -> list[int]:
    """Height function of ``ordering`` via a one-shot :class:`CutRankEngine`.

    Convenience wrapper used by the engine-backed fast path of
    :func:`repro.graphs.entanglement.height_function`; snapshots are disabled
    because the sweep is evaluated exactly once.
    """
    if ordering is None:
        ordering = graph.vertices()
    return CutRankEngine(graph, checkpoint=False, backend=backend).heights(ordering)
