"""Entanglement measures of graph states used for emitter counting.

For a graph state ``|G>`` the bipartite entanglement entropy across a cut
``(A, V \\ A)`` equals the GF(2) rank of the adjacency submatrix between the
two sides (the *cut rank* of ``A``).  Li, Economou & Barnes (npj QI 2022)
showed that for a fixed photon emission order ``p_1, ..., p_n`` the minimal
number of emitters required by any deterministic emission protocol is

``N_e^min = max_i  cut_rank({p_1, ..., p_i})``

— the emitters must at every step hold the entanglement between the photons
already emitted and the rest of the state.  The paper uses this bound both to
size the emitter pool of each subgraph and to define the global resource
settings ``N_e^limit = 1.5 N_e^min`` and ``2 N_e^min``.

Two implementations back these functions (see :mod:`repro.utils.backend`):
the ``"dense"`` backend keeps the original from-scratch construction — one
bipartite matrix and one rank solve per query — as the bit-exact oracle,
while the default ``"packed"`` backend ranks the graph's cached integer-row
adjacency (:meth:`repro.graphs.graph_state.GraphState.packed_adjacency`)
and evaluates whole height functions through the incremental
:class:`repro.graphs.incremental.CutRankEngine` in a single sweep.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

import numpy as np

from repro.graphs.graph_state import GraphState
from repro.utils.backend import ARENA, PACKED, resolve_backend
from repro.utils.gf2 import gf2_rank
from repro.utils.gf2_arena import rank_of_word_rows
from repro.utils.gf2_packed import rank_of_row_ints, words_per_row

__all__ = ["cut_rank", "height_function", "minimum_emitters"]

Vertex = Hashable


def cut_rank(
    graph: GraphState, subset: Iterable[Vertex], backend: str | None = None
) -> int:
    """GF(2) rank of the bipartite adjacency matrix between ``subset`` and the rest.

    Equals the entanglement entropy (in bits) of the graph state across the
    cut.  Vertices in ``subset`` must belong to the graph.  ``backend``
    selects the GF(2) kernel implementation (``None`` = process default; see
    :mod:`repro.utils.backend`): the packed backend ranks the graph's cached
    integer adjacency rows directly, the dense backend rebuilds the bipartite
    matrix from scratch and serves as the oracle.
    """
    subset_list = list(dict.fromkeys(subset))
    subset_set = set(subset_list)
    missing = subset_set - set(graph.vertices())
    if missing:
        raise KeyError(f"vertices not in graph: {sorted(map(repr, missing))}")
    if not subset_list or len(subset_set) == graph.num_vertices:
        return 0
    chosen = resolve_backend(backend)
    if chosen in (PACKED, ARENA):
        packed = graph.packed_adjacency()
        subset_mask = 0
        for u in subset_list:
            subset_mask |= 1 << packed.index[u]
        complement_mask = packed.full_mask ^ subset_mask
        rows = packed.rows
        index = packed.index
        masked = (rows[index[u]] & complement_mask for u in subset_list)
        if chosen == ARENA:
            stride = words_per_row(max(1, graph.num_vertices)) * 8
            raw = b"".join(row.to_bytes(stride, "little") for row in masked)
            words = np.frombuffer(raw, dtype="<u8").reshape(
                len(subset_list), stride // 8
            ).astype(np.uint64, copy=False)
            return rank_of_word_rows(words)
        return rank_of_row_ints(masked)
    complement = [v for v in graph.vertices() if v not in subset_set]
    matrix = np.zeros((len(subset_list), len(complement)), dtype=np.uint8)
    complement_index = {v: j for j, v in enumerate(complement)}
    for i, u in enumerate(subset_list):
        for w in graph.neighbors(u):
            j = complement_index.get(w)
            if j is not None:
                matrix[i, j] = 1
    return gf2_rank(matrix, backend=backend)


def height_function(
    graph: GraphState,
    ordering: Sequence[Vertex] | None = None,
    backend: str | None = None,
) -> list[int]:
    """The height function ``h(i)`` of the graph for an emission ordering.

    ``h(i)`` is the cut rank of the first ``i`` photons of ``ordering``
    (``h(0) = h(n) = 0`` for a state that starts and ends unentangled with the
    emitters).  The returned list has length ``n + 1``.

    On the packed backend the whole function is computed by one incremental
    :class:`repro.graphs.incremental.CutRankEngine` sweep (``O(n^3 / w)``);
    the dense backend keeps the historical one-rank-per-prefix evaluation as
    the oracle (``O(n^4 / w)``).
    """
    if ordering is None:
        ordering = graph.vertices()
    ordering = list(ordering)
    if set(ordering) != set(graph.vertices()) or len(ordering) != graph.num_vertices:
        raise ValueError("ordering must be a permutation of the graph's vertices")
    chosen = resolve_backend(backend)
    if chosen in (PACKED, ARENA):
        from repro.graphs.incremental import incremental_height_function

        return incremental_height_function(graph, ordering, backend=chosen)
    heights = [0]
    for i in range(1, len(ordering) + 1):
        heights.append(cut_rank(graph, ordering[:i], backend=backend))
    return heights


def minimum_emitters(
    graph: GraphState,
    ordering: Sequence[Vertex] | None = None,
    backend: str | None = None,
) -> int:
    """Minimal number of emitters for a deterministic emission protocol.

    This is the maximum of the height function over the given emission
    ordering (natural vertex order by default, matching the baseline
    behaviour of GraphiQ / Li et al.).  A graph with no edges still needs one
    emitter to emit the photons, hence the ``max(..., 1)`` for non-empty
    graphs.
    """
    if graph.num_vertices == 0:
        return 0
    peak = max(height_function(graph, ordering, backend=backend))
    return max(peak, 1)
